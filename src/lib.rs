//! Umbrella crate for the UStore reproduction workspace.
//!
//! Hosts the workspace-level integration tests (`tests/`) and runnable
//! examples (`examples/`). See the member crates for the actual library:
//! [`ustore`] (core system), `ustore-sim`, `ustore-usb`, `ustore-disk`,
//! `ustore-net`, `ustore-consensus`, `ustore-fabric`, `ustore-workload`,
//! `ustore-cost`, `ustore-bench`.
