//! The interconnect fabric's static topology.
//!
//! A UStore deploy unit's fabric is built from two primitives (§III): *hubs*
//! (aggregate up to `fanin` downstream flows into one upstream) and
//! *switches* (2:1 multiplexers whose control signal selects one of two
//! upstream paths). [`Topology`] captures the wiring; a
//! [`SwitchConfig`] assigns each switch a position, which partitions the
//! fabric into non-overlapping trees rooted at host ports — the property
//! the paper relies on for fault tolerance.
//!
//! Two builders reproduce Figure 2: [`Topology::leaf_switched`] (left —
//! two full hub trees, one switch per disk) and
//! [`Topology::upper_switched`] (right / the prototype — switches placed
//! above leaf hubs, fewer components).

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// A host root port of the deploy unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// A hub in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HubId(pub u32);

/// A 2:1 switch in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

/// A disk slot (disk + its SATA↔USB bridge; one failure unit, §IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}
impl fmt::Display for HubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hub{}", self.0)
    }
}
impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// A switch's selected upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPos {
    /// First upstream.
    A,
    /// Second upstream.
    B,
}

impl SwitchPos {
    /// The other position.
    pub fn flip(self) -> SwitchPos {
        match self {
            SwitchPos::A => SwitchPos::B,
            SwitchPos::B => SwitchPos::A,
        }
    }
}

/// An upstream attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UpRef {
    /// Directly into a host's root port.
    Host(HostId),
    /// Into a downstream port of a hub.
    Hub(HubId),
    /// Into the downstream side of a switch.
    Switch(SwitchId),
}

/// Per-switch position assignment.
pub type SwitchConfig = BTreeMap<SwitchId, SwitchPos>;

/// Errors from topology validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced component does not exist.
    Dangling(String),
    /// A hub has more downstream connections than its fan-in.
    HubOverSubscribed(HubId),
    /// A switch has zero or more than one downstream child.
    SwitchChildCount(SwitchId, usize),
    /// The graph has a cycle.
    Cycle(String),
    /// A switch's two upstreams are identical.
    SwitchSameUpstreams(SwitchId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Dangling(w) => write!(f, "dangling reference: {w}"),
            TopologyError::HubOverSubscribed(h) => write!(f, "{h} exceeds its fan-in"),
            TopologyError::SwitchChildCount(s, n) => {
                write!(f, "{s} has {n} downstream children (expected 1)")
            }
            TopologyError::Cycle(w) => write!(f, "topology contains a cycle at {w}"),
            TopologyError::SwitchSameUpstreams(s) => {
                write!(f, "{s} has identical upstreams")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Component counts (feeds the Table I cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentCounts {
    /// Host root ports used.
    pub hosts: usize,
    /// Hubs.
    pub hubs: usize,
    /// 2:1 switches.
    pub switches: usize,
    /// Disk slots (each has a SATA↔USB bridge).
    pub disks: usize,
    /// Cable segments (every upstream edge, switches counted twice).
    pub cables: usize,
}

/// The static wiring of one deploy unit's fabric.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    fanin: usize,
    hosts: BTreeSet<HostId>,
    hubs: BTreeMap<HubId, UpRef>,
    switches: BTreeMap<SwitchId, (UpRef, UpRef)>,
    disks: BTreeMap<DiskId, UpRef>,
}

impl Topology {
    /// Creates an empty fabric with hub fan-in `fanin`.
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is zero.
    pub fn new(fanin: usize) -> Self {
        assert!(fanin > 0, "fan-in must be positive");
        Topology {
            fanin,
            ..Default::default()
        }
    }

    /// Hub fan-in factor.
    pub fn fanin(&self) -> usize {
        self.fanin
    }

    /// Adds a host root port.
    pub fn add_host(&mut self, h: HostId) {
        self.hosts.insert(h);
    }

    /// Adds a hub whose uplink plugs into `up`.
    pub fn add_hub(&mut self, h: HubId, up: UpRef) {
        self.hubs.insert(h, up);
    }

    /// Adds a switch whose two uplinks plug into `a` and `b`.
    pub fn add_switch(&mut self, s: SwitchId, a: UpRef, b: UpRef) {
        self.switches.insert(s, (a, b));
    }

    /// Adds a disk slot whose bridge plugs into `up`.
    pub fn add_disk(&mut self, d: DiskId, up: UpRef) {
        self.disks.insert(d, up);
    }

    /// Host, hub, switch and disk id iterators.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts.iter().copied()
    }
    /// All hub ids.
    pub fn hubs(&self) -> impl Iterator<Item = HubId> + '_ {
        self.hubs.keys().copied()
    }
    /// All switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switches.keys().copied()
    }
    /// All disk ids.
    pub fn disks(&self) -> impl Iterator<Item = DiskId> + '_ {
        self.disks.keys().copied()
    }

    /// A switch's two upstreams.
    pub fn switch_upstreams(&self, s: SwitchId) -> Option<(UpRef, UpRef)> {
        self.switches.get(&s).copied()
    }

    /// A hub's upstream.
    pub fn hub_upstream(&self, h: HubId) -> Option<UpRef> {
        self.hubs.get(&h).copied()
    }

    /// A disk's upstream.
    pub fn disk_upstream(&self, d: DiskId) -> Option<UpRef> {
        self.disks.get(&d).copied()
    }

    fn upref_exists(&self, up: UpRef) -> bool {
        match up {
            UpRef::Host(h) => self.hosts.contains(&h),
            UpRef::Hub(h) => self.hubs.contains_key(&h),
            UpRef::Switch(s) => self.switches.contains_key(&s),
        }
    }

    /// Downstream children plugged into a hub.
    fn hub_load(&self, h: HubId) -> usize {
        let up = UpRef::Hub(h);
        self.hubs.values().filter(|&&u| u == up).count()
            + self.disks.values().filter(|&&u| u == up).count()
            + self
                .switches
                .values()
                .flat_map(|&(a, b)| [a, b])
                .filter(|&u| u == up)
                .count()
    }

    /// Nodes plugged into a switch's downstream side.
    fn switch_children(&self, s: SwitchId) -> usize {
        let up = UpRef::Switch(s);
        self.hubs.values().filter(|&&u| u == up).count()
            + self.disks.values().filter(|&&u| u == up).count()
            + self
                .switches
                .values()
                .flat_map(|&(a, b)| [a, b])
                .filter(|&u| u == up)
                .count()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling references, hub
    /// oversubscription, switch child counts, identical switch upstreams,
    /// or cycles.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for (h, up) in &self.hubs {
            if !self.upref_exists(*up) {
                return Err(TopologyError::Dangling(format!("{h} upstream")));
            }
        }
        for (d, up) in &self.disks {
            if !self.upref_exists(*up) {
                return Err(TopologyError::Dangling(format!("{d} upstream")));
            }
        }
        for (s, (a, b)) in &self.switches {
            if !self.upref_exists(*a) || !self.upref_exists(*b) {
                return Err(TopologyError::Dangling(format!("{s} upstream")));
            }
            if a == b {
                return Err(TopologyError::SwitchSameUpstreams(*s));
            }
            let n = self.switch_children(*s);
            if n != 1 {
                return Err(TopologyError::SwitchChildCount(*s, n));
            }
        }
        for h in self.hubs.keys() {
            if self.hub_load(*h) > self.fanin {
                return Err(TopologyError::HubOverSubscribed(*h));
            }
        }
        // Cycle check: walk up from every node with a visited set.
        for start in self
            .hubs
            .keys()
            .map(|h| UpRef::Hub(*h))
            .chain(self.switches.keys().map(|s| UpRef::Switch(*s)))
        {
            let mut seen = HashSet::new();
            let mut frontier = vec![start];
            while let Some(node) = frontier.pop() {
                if !seen.insert(node) {
                    return Err(TopologyError::Cycle(format!("{node:?}")));
                }
                match node {
                    UpRef::Host(_) => {}
                    UpRef::Hub(h) => frontier.push(self.hubs[&h]),
                    UpRef::Switch(s) => {
                        let (a, b) = self.switches[&s];
                        frontier.push(a);
                        frontier.push(b);
                    }
                }
            }
        }
        Ok(())
    }

    /// Component counts for the cost model.
    pub fn component_counts(&self) -> ComponentCounts {
        let cables = self.hubs.len() + self.disks.len() + 2 * self.switches.len();
        ComponentCounts {
            hosts: self.hosts.len(),
            hubs: self.hubs.len(),
            switches: self.switches.len(),
            disks: self.disks.len(),
            cables,
        }
    }

    /// A default switch configuration (everything at position A).
    pub fn default_config(&self) -> SwitchConfig {
        self.switches.keys().map(|s| (*s, SwitchPos::A)).collect()
    }

    // ---- Builders --------------------------------------------------------

    /// Figure 2 (left): two full hub trees, one per host; each disk hangs
    /// off its own 2:1 switch that selects between the corresponding leaf
    /// ports of the two trees.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    pub fn leaf_switched(disks: u32, fanin: usize) -> (Topology, SwitchConfig) {
        assert!(disks > 0, "need at least one disk");
        let mut t = Topology::new(fanin);
        let hosts = [HostId(0), HostId(1)];
        for h in hosts {
            t.add_host(h);
        }
        let mut next_hub = 0u32;
        // Build one full tree per host with `disks` leaf positions; returns
        // the leaf hub list in order.
        let mut leaf_hubs: Vec<Vec<HubId>> = Vec::new();
        for host in hosts {
            let mut leaves = Vec::new();
            let n_leaf_hubs = (disks as usize).div_ceil(fanin);
            // Aggregation layers from the leaf hubs up to the host port.
            let mut layer: Vec<HubId> = (0..n_leaf_hubs)
                .map(|_| {
                    let id = HubId(next_hub);
                    next_hub += 1;
                    id
                })
                .collect();
            leaves.extend(layer.iter().copied());
            // Stack upper layers until one uplink remains.
            while layer.len() > 1 {
                let upper_count = layer.len().div_ceil(fanin);
                let upper: Vec<HubId> = (0..upper_count)
                    .map(|_| {
                        let id = HubId(next_hub);
                        next_hub += 1;
                        id
                    })
                    .collect();
                for (i, hub) in layer.iter().enumerate() {
                    t.add_hub(*hub, UpRef::Hub(upper[i / fanin]));
                }
                layer = upper;
            }
            t.add_hub(layer[0], UpRef::Host(host));
            leaf_hubs.push(leaves);
        }
        // One switch per disk choosing between tree 0 and tree 1.
        let mut config = SwitchConfig::new();
        for d in 0..disks {
            let sw = SwitchId(d);
            let leaf0 = leaf_hubs[0][d as usize / fanin];
            let leaf1 = leaf_hubs[1][d as usize / fanin];
            t.add_switch(sw, UpRef::Hub(leaf0), UpRef::Hub(leaf1));
            t.add_disk(DiskId(d), UpRef::Switch(sw));
            // Spread disks across both hosts initially.
            config.insert(
                sw,
                if d % 2 == 0 {
                    SwitchPos::A
                } else {
                    SwitchPos::B
                },
            );
        }
        (t, config)
    }

    /// Figure 2 (right) / the prototype (§V-B): disks group under leaf
    /// hubs of `fanin` disks; each leaf hub's uplink climbs a binary tree
    /// of switches that can steer the whole group to any of `hosts` host
    /// ports. 16 disks × 4 hosts × fan-in 4 reproduces the prototype.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is not a power of two or `disks`/`hosts` is zero.
    pub fn upper_switched(hosts: u32, disks: u32, fanin: usize) -> (Topology, SwitchConfig) {
        assert!(hosts > 0 && disks > 0, "need hosts and disks");
        assert!(hosts.is_power_of_two(), "hosts must be a power of two");
        let mut t = Topology::new(fanin);
        for h in 0..hosts {
            t.add_host(HostId(h));
        }
        // Per-host aggregation tree with one port per disk group, so in the
        // extreme every group can be steered to the same host.
        let n_groups = (disks as usize).div_ceil(fanin);
        let mut next_hub = 0u32;
        let mut host_ports: Vec<Vec<UpRef>> = Vec::new();
        for h in 0..hosts {
            host_ports.push(Self::build_host_tree(
                &mut t,
                &mut next_hub,
                HostId(h),
                n_groups,
                fanin,
            ));
        }
        let mut next_switch = 0u32;
        let mut config = SwitchConfig::new();
        for g in 0..n_groups {
            let leaf = HubId(next_hub);
            next_hub += 1;
            // Binary switch tree: the leaf hub's uplink enters the root of
            // a selection tree whose leaves are this group's ports on each
            // host's aggregation tree.
            let leaves: Vec<UpRef> = host_ports.iter().map(|ports| ports[g]).collect();
            let hub_up = Self::build_switch_tree(
                &mut t,
                &mut next_switch,
                &mut config,
                &leaves,
                0,
                hosts as usize,
                g,
            );
            t.add_hub(leaf, hub_up);
            for i in 0..fanin {
                let d = g * fanin + i;
                if d < disks as usize {
                    t.add_disk(DiskId(d as u32), UpRef::Hub(leaf));
                }
            }
        }
        (t, config)
    }

    /// Builds a hub tree under `host` exposing `n_ports` downstream ports;
    /// returns one attachment point per port.
    fn build_host_tree(
        t: &mut Topology,
        next_hub: &mut u32,
        host: HostId,
        n_ports: usize,
        fanin: usize,
    ) -> Vec<UpRef> {
        assert!(fanin >= 2, "host aggregation tree needs fan-in >= 2");
        Self::build_hub_subtree(t, next_hub, UpRef::Host(host), n_ports, fanin)
    }

    /// Creates one hub under `up` and recursively enough hubs below it to
    /// expose exactly `n_ports` attachment points, never exceeding the
    /// fan-in on any hub.
    fn build_hub_subtree(
        t: &mut Topology,
        next_hub: &mut u32,
        up: UpRef,
        n_ports: usize,
        fanin: usize,
    ) -> Vec<UpRef> {
        let hub = HubId(*next_hub);
        *next_hub += 1;
        t.add_hub(hub, up);
        if n_ports <= fanin {
            return vec![UpRef::Hub(hub); n_ports];
        }
        // Split the demand across at most `fanin` downstream slots; a slot
        // either is a direct port (share == 1) or feeds a child subtree.
        let mut ports = Vec::with_capacity(n_ports);
        let mut remaining = n_ports;
        for slot in 0..fanin {
            if remaining == 0 {
                break;
            }
            let share = remaining.div_ceil(fanin - slot);
            if share == 1 {
                ports.push(UpRef::Hub(hub));
            } else {
                ports.extend(Self::build_hub_subtree(
                    t,
                    next_hub,
                    UpRef::Hub(hub),
                    share,
                    fanin,
                ));
            }
            remaining -= share;
        }
        ports
    }

    /// Recursively builds the binary switch tree selecting among
    /// `leaves[lo..lo+n]` (one attachment point per host); returns the
    /// [`UpRef`] the subtree's child should plug into. Initial positions
    /// steer group `g` to host `g % hosts`.
    fn build_switch_tree(
        t: &mut Topology,
        next_switch: &mut u32,
        config: &mut SwitchConfig,
        leaves: &[UpRef],
        lo: usize,
        n: usize,
        group: usize,
    ) -> UpRef {
        if n == 1 {
            return leaves[lo];
        }
        let sw = SwitchId(*next_switch);
        *next_switch += 1;
        let half = n / 2;
        let a = Self::build_switch_tree(t, next_switch, config, leaves, lo, half, group);
        let b = Self::build_switch_tree(t, next_switch, config, leaves, lo + half, half, group);
        t.add_switch(sw, a, b);
        // Choose the position that routes toward host (group % hosts).
        let target = group % leaves.len();
        let pos = if target < lo + half {
            SwitchPos::A
        } else {
            SwitchPos::B
        };
        config.insert(sw, pos);
        sw_upref(sw)
    }
}

fn sw_upref(s: SwitchId) -> UpRef {
    UpRef::Switch(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_switched_structure() {
        let (t, cfg) = Topology::leaf_switched(16, 4);
        t.validate().expect("valid");
        let c = t.component_counts();
        assert_eq!(c.hosts, 2);
        assert_eq!(c.disks, 16);
        assert_eq!(c.switches, 16, "one switch per disk");
        // Two trees x (4 leaf hubs + 1 root hub) = 10 hubs.
        assert_eq!(c.hubs, 10);
        assert_eq!(cfg.len(), 16);
    }

    #[test]
    fn upper_switched_prototype_structure() {
        // The paper's prototype: 16 disks, 4 hosts, fan-in 4.
        let (t, cfg) = Topology::upper_switched(4, 16, 4);
        t.validate().expect("valid");
        let c = t.component_counts();
        assert_eq!(c.hosts, 4);
        assert_eq!(c.disks, 16);
        // 4 groups x 3 switches (binary tree over 4 hosts) = 12 switches.
        assert_eq!(c.switches, 12);
        // 4 root hubs + 4 leaf hubs = 8 hubs.
        assert_eq!(c.hubs, 8);
        assert_eq!(cfg.len(), 12);
        // Upper switching uses fewer components than leaf switching for
        // the same fault tolerance goal — the paper's cost argument.
        let (t2, _) = Topology::leaf_switched(16, 4);
        let c2 = t2.component_counts();
        assert!(c.switches + c.hubs < c2.switches + c2.hubs);
    }

    #[test]
    fn big_unit_64_disks() {
        let (t, _) = Topology::upper_switched(4, 64, 4);
        t.validate().expect("valid");
        let c = t.component_counts();
        assert_eq!(c.disks, 64);
        // Host side: root + 4 children per host (16 group ports); disk
        // side: 16 leaf hubs.
        assert_eq!(c.hubs, 4 * 5 + 16);
        assert_eq!(c.switches, 16 * 3);
    }

    #[test]
    fn validation_catches_dangling() {
        let mut t = Topology::new(4);
        t.add_disk(DiskId(0), UpRef::Hub(HubId(9)));
        assert!(matches!(t.validate(), Err(TopologyError::Dangling(_))));
    }

    #[test]
    fn validation_catches_oversubscription() {
        let mut t = Topology::new(2);
        t.add_host(HostId(0));
        t.add_hub(HubId(0), UpRef::Host(HostId(0)));
        for d in 0..3 {
            t.add_disk(DiskId(d), UpRef::Hub(HubId(0)));
        }
        assert_eq!(
            t.validate(),
            Err(TopologyError::HubOverSubscribed(HubId(0)))
        );
    }

    #[test]
    fn validation_catches_switch_child_count() {
        let mut t = Topology::new(4);
        t.add_host(HostId(0));
        t.add_host(HostId(1));
        t.add_switch(SwitchId(0), UpRef::Host(HostId(0)), UpRef::Host(HostId(1)));
        assert_eq!(
            t.validate(),
            Err(TopologyError::SwitchChildCount(SwitchId(0), 0))
        );
        t.add_disk(DiskId(0), UpRef::Switch(SwitchId(0)));
        t.add_disk(DiskId(1), UpRef::Switch(SwitchId(0)));
        assert_eq!(
            t.validate(),
            Err(TopologyError::SwitchChildCount(SwitchId(0), 2))
        );
    }

    #[test]
    fn validation_catches_same_upstreams() {
        let mut t = Topology::new(4);
        t.add_host(HostId(0));
        t.add_switch(SwitchId(0), UpRef::Host(HostId(0)), UpRef::Host(HostId(0)));
        t.add_disk(DiskId(0), UpRef::Switch(SwitchId(0)));
        assert_eq!(
            t.validate(),
            Err(TopologyError::SwitchSameUpstreams(SwitchId(0)))
        );
    }

    #[test]
    fn validation_catches_cycles() {
        let mut t = Topology::new(4);
        t.add_hub(HubId(0), UpRef::Hub(HubId(1)));
        t.add_hub(HubId(1), UpRef::Hub(HubId(0)));
        assert!(matches!(t.validate(), Err(TopologyError::Cycle(_))));
    }

    #[test]
    fn switch_pos_flip() {
        assert_eq!(SwitchPos::A.flip(), SwitchPos::B);
        assert_eq!(SwitchPos::B.flip(), SwitchPos::A);
    }

    #[test]
    fn display_impls() {
        assert_eq!(HostId(1).to_string(), "host1");
        assert_eq!(HubId(2).to_string(), "hub2");
        assert_eq!(SwitchId(3).to_string(), "sw3");
        assert_eq!(DiskId(4).to_string(), "disk4");
    }
}
