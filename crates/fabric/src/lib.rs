//! # ustore-fabric — the USB 3.0 fat-tree interconnect fabric
//!
//! The paper's primary hardware contribution (§III): a reconfigurable
//! interconnect built from USB hubs and 2:1 switches that attaches every
//! disk of a deploy unit to one of several hosts, with no single point of
//! failure and per-disk cost measured in cents.
//!
//! - [`topology`]: the static wiring, validation, and the two Figure 2
//!   designs ([`Topology::leaf_switched`], [`Topology::upper_switched`]).
//! - [`routing`]: attachments, candidate paths, Algorithm 1
//!   ([`FabricState::switches_to_turn`]) and failure analysis.
//! - [`control`]: the control plane — dual XOR-combined microcontrollers
//!   (§III-B), power relays, rolling spin-up, and command execution with
//!   verification and rollback (§IV-C).
//! - [`runtime`]: binds the fabric to simulated [`ustore_usb::UsbHost`]s
//!   and [`ustore_disk::Disk`]s, performing the actual hot-plug moves and
//!   serving fabric-attached IO.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod routing;
pub mod runtime;
pub mod topology;

pub use control::{ControlError, ControlPlane, Microcontroller, RelayBank};
pub use routing::{Component, FabricState, ScheduleError};
pub use runtime::{FabricDisk, FabricError, FabricIoError, FabricRuntime, RuntimeConfig};
pub use topology::{
    ComponentCounts, DiskId, HostId, HubId, SwitchConfig, SwitchId, SwitchPos, Topology,
    TopologyError, UpRef,
};
