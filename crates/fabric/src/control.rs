//! The fabric's control plane (§III-B).
//!
//! Switches are driven by a side channel: a microcontroller (the paper
//! uses Arduino Mega boards) connected over USB to one of the hosts. To
//! survive that host's failure, a second microcontroller on a different
//! host is wired in, and *"the signals of the two microcontrollers are
//! XOR-ed together to form the final controlling signal"*. During normal
//! operation only one is powered; when control over it is lost the backup
//! powers on and can still set every switch to any position by choosing
//! its own bits relative to the stuck primary's output.
//!
//! The control plane also drives power relays on the 12 V rails of disks
//! and hubs, enabling rolling spin-up (§III-B) and interconnect power-down
//! (§IV-F).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::topology::{DiskId, HubId, SwitchId, SwitchPos};

/// Control-plane failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// Neither microcontroller is both powered and reachable.
    ControlLost,
    /// The switch is not wired to the control plane.
    UnknownSwitch(SwitchId),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::ControlLost => write!(f, "no reachable microcontroller"),
            ControlError::UnknownSwitch(s) => write!(f, "switch {s} not wired"),
        }
    }
}

impl std::error::Error for ControlError {}

/// One microcontroller: a bank of output bits, one per switch.
#[derive(Debug, Clone)]
pub struct Microcontroller {
    bits: BTreeMap<SwitchId, bool>,
    /// Whether the board has power (an unpowered board outputs zeros).
    powered: bool,
    /// Whether its controlling host can still send it commands.
    reachable: bool,
}

impl Microcontroller {
    /// Creates a board wired to `switches`, powered or not.
    pub fn new(switches: impl IntoIterator<Item = SwitchId>, powered: bool) -> Self {
        Microcontroller {
            bits: switches.into_iter().map(|s| (s, false)).collect(),
            powered,
            reachable: true,
        }
    }

    /// The board's effective output for a switch (zero when unpowered).
    pub fn output(&self, s: SwitchId) -> bool {
        self.powered && self.bits.get(&s).copied().unwrap_or(false)
    }

    /// Whether commands can currently be executed on this board.
    pub fn controllable(&self) -> bool {
        self.powered && self.reachable
    }

    /// Powers the board on or off.
    pub fn set_powered(&mut self, on: bool) {
        self.powered = on;
    }

    /// Marks the board's controlling host alive or dead.
    pub fn set_reachable(&mut self, ok: bool) {
        self.reachable = ok;
    }
}

/// Relay bank for the 12 V rails of disks and hubs.
#[derive(Debug, Clone, Default)]
pub struct RelayBank {
    disks: BTreeMap<DiskId, bool>,
    hubs: BTreeMap<HubId, bool>,
}

impl RelayBank {
    /// Creates a bank with every listed relay closed (powered).
    pub fn new(
        disks: impl IntoIterator<Item = DiskId>,
        hubs: impl IntoIterator<Item = HubId>,
    ) -> Self {
        RelayBank {
            disks: disks.into_iter().map(|d| (d, true)).collect(),
            hubs: hubs.into_iter().map(|h| (h, true)).collect(),
        }
    }

    /// Sets a disk's 12 V relay.
    pub fn set_disk(&mut self, d: DiskId, on: bool) {
        self.disks.insert(d, on);
    }

    /// Sets a hub's relay.
    pub fn set_hub(&mut self, h: HubId, on: bool) {
        self.hubs.insert(h, on);
    }

    /// Whether a disk's rail is powered.
    pub fn disk_on(&self, d: DiskId) -> bool {
        self.disks.get(&d).copied().unwrap_or(false)
    }

    /// Whether a hub is powered.
    pub fn hub_on(&self, h: HubId) -> bool {
        self.hubs.get(&h).copied().unwrap_or(false)
    }

    /// Number of powered hubs.
    pub fn hubs_on(&self) -> usize {
        self.hubs.values().filter(|&&v| v).count()
    }
}

/// The dual-microcontroller control plane.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    mc: [Microcontroller; 2],
    active: usize,
    /// Hardware latency of one switch actuation.
    switch_latency: Duration,
}

impl ControlPlane {
    /// Default per-switch actuation latency (relay settle + firmware).
    pub const DEFAULT_SWITCH_LATENCY: Duration = Duration::from_millis(5);

    /// Creates the control plane for `switches`, with microcontroller 0
    /// active and powered, 1 as the cold standby.
    pub fn new(switches: impl IntoIterator<Item = SwitchId> + Clone) -> Self {
        ControlPlane {
            mc: [
                Microcontroller::new(switches.clone(), true),
                Microcontroller::new(switches, false),
            ],
            active: 0,
            switch_latency: Self::DEFAULT_SWITCH_LATENCY,
        }
    }

    /// Actuation latency for one switch turn.
    pub fn switch_latency(&self) -> Duration {
        self.switch_latency
    }

    /// The XOR-combined signal currently applied to a switch.
    pub fn signal(&self, s: SwitchId) -> SwitchPos {
        if self.mc[0].output(s) ^ self.mc[1].output(s) {
            SwitchPos::B
        } else {
            SwitchPos::A
        }
    }

    /// Which microcontroller is currently commanded.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Marks a microcontroller's controlling host dead or alive.
    pub fn set_host_alive(&mut self, mc_index: usize, alive: bool) {
        self.mc[mc_index].set_reachable(alive);
    }

    /// Cuts or restores a microcontroller's own power. Cutting the power
    /// of a board that had bits set flips those switches (its contribution
    /// to the XOR becomes zero) — callers must re-command afterwards.
    pub fn set_mc_powered(&mut self, mc_index: usize, on: bool) {
        self.mc[mc_index].set_powered(on);
    }

    /// Fails over to the other microcontroller: powers it on and makes it
    /// the command target. The old board's outputs keep contributing to
    /// the XOR, so current switch positions are preserved.
    pub fn activate_backup(&mut self) {
        self.active = 1 - self.active;
        self.mc[self.active].set_powered(true);
    }

    /// Commands the active microcontroller to drive switch `s` to `pos`.
    ///
    /// # Errors
    ///
    /// [`ControlError::ControlLost`] if the active board is unreachable or
    /// unpowered; [`ControlError::UnknownSwitch`] if `s` is not wired.
    pub fn turn_switch(&mut self, s: SwitchId, pos: SwitchPos) -> Result<(), ControlError> {
        let other = 1 - self.active;
        let other_out = self.mc[other].output(s);
        let mc = &mut self.mc[self.active];
        if !mc.controllable() {
            return Err(ControlError::ControlLost);
        }
        if !mc.bits.contains_key(&s) {
            return Err(ControlError::UnknownSwitch(s));
        }
        let want = matches!(pos, SwitchPos::B);
        // Choose our bit so that (ours XOR other's) == desired signal.
        let bit = want ^ other_out;
        mc.bits.insert(s, bit);
        Ok(())
    }

    /// Whether any board can currently execute commands.
    pub fn controllable(&self) -> bool {
        self.mc[self.active].controllable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switches() -> Vec<SwitchId> {
        (0..4).map(SwitchId).collect()
    }

    #[test]
    fn turn_and_read_back() {
        let mut cp = ControlPlane::new(switches());
        assert_eq!(cp.signal(SwitchId(0)), SwitchPos::A);
        cp.turn_switch(SwitchId(0), SwitchPos::B).expect("turn");
        assert_eq!(cp.signal(SwitchId(0)), SwitchPos::B);
        cp.turn_switch(SwitchId(0), SwitchPos::A)
            .expect("turn back");
        assert_eq!(cp.signal(SwitchId(0)), SwitchPos::A);
    }

    #[test]
    fn unknown_switch_rejected() {
        let mut cp = ControlPlane::new(switches());
        assert_eq!(
            cp.turn_switch(SwitchId(99), SwitchPos::B),
            Err(ControlError::UnknownSwitch(SwitchId(99)))
        );
    }

    #[test]
    fn failover_preserves_positions_and_restores_control() {
        let mut cp = ControlPlane::new(switches());
        cp.turn_switch(SwitchId(1), SwitchPos::B).expect("turn");
        cp.turn_switch(SwitchId(2), SwitchPos::B).expect("turn");
        // Primary's host dies: control lost, but signals persist.
        cp.set_host_alive(0, false);
        assert!(!cp.controllable());
        assert_eq!(
            cp.turn_switch(SwitchId(3), SwitchPos::B),
            Err(ControlError::ControlLost)
        );
        assert_eq!(cp.signal(SwitchId(1)), SwitchPos::B);
        // Backup takes over: positions unchanged, control restored.
        cp.activate_backup();
        assert!(cp.controllable());
        assert_eq!(cp.signal(SwitchId(1)), SwitchPos::B);
        assert_eq!(cp.signal(SwitchId(2)), SwitchPos::B);
        // The backup can turn any switch to any position via XOR.
        cp.turn_switch(SwitchId(1), SwitchPos::A)
            .expect("xor override");
        assert_eq!(cp.signal(SwitchId(1)), SwitchPos::A);
        cp.turn_switch(SwitchId(3), SwitchPos::B)
            .expect("fresh turn");
        assert_eq!(cp.signal(SwitchId(3)), SwitchPos::B);
    }

    #[test]
    fn primary_power_loss_flips_its_contribution() {
        let mut cp = ControlPlane::new(switches());
        cp.turn_switch(SwitchId(0), SwitchPos::B).expect("turn");
        // The primary board loses its own power: its XOR contribution
        // drops to zero and the switch reverts.
        cp.set_mc_powered(0, false);
        assert_eq!(cp.signal(SwitchId(0)), SwitchPos::A);
        // Backup can restore the desired position.
        cp.activate_backup();
        cp.turn_switch(SwitchId(0), SwitchPos::B).expect("restore");
        assert_eq!(cp.signal(SwitchId(0)), SwitchPos::B);
    }

    #[test]
    fn relay_bank_controls() {
        let mut rb = RelayBank::new((0..3).map(DiskId), (0..2).map(HubId));
        assert!(rb.disk_on(DiskId(0)));
        rb.set_disk(DiskId(0), false);
        assert!(!rb.disk_on(DiskId(0)));
        assert_eq!(rb.hubs_on(), 2);
        rb.set_hub(HubId(1), false);
        assert_eq!(rb.hubs_on(), 1);
        assert!(!rb.disk_on(DiskId(9)), "unknown relay reads off");
    }
}
