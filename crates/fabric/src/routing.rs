//! Routing over the fabric: current attachments, candidate paths, and the
//! paper's Algorithm 1 (`SwitchesToTurn`).
//!
//! A [`FabricState`] combines the static [`Topology`] with the current
//! [`SwitchConfig`] and the set of failed components. From it one can ask
//! where a disk is currently attached, which hosts it *could* reach, which
//! switch positions a reattachment requires, and — via
//! [`FabricState::switches_to_turn`] — the minimal, conflict-checked set of
//! switches to flip for a batch of `(disk, host)` scheduling commands.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::topology::{DiskId, HostId, HubId, SwitchConfig, SwitchId, SwitchPos, Topology, UpRef};

/// A failed component (one failure unit, §IV-E: a switch or bridge is
/// lumped with the hub/disk it serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// A host root port (host crash).
    Host(HostId),
    /// A hub (and the switch feeding it, if any).
    Hub(HubId),
    /// A disk slot (disk + bridge + leaf switch).
    Disk(DiskId),
}

/// Why a scheduling command cannot be executed — the "ErrInfo" of
/// Algorithm 1, detailed enough for the Master to decide (§IV-C: e.g.
/// "connecting A to H1 will force disk E to be disconnected from host H3").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No path exists between the disk and the requested host.
    NoPath(DiskId, HostId),
    /// Turning `switch` would disconnect `victim` from its current host.
    Conflict {
        /// The switch that would have to be turned.
        switch: SwitchId,
        /// The disk requesting the turn.
        requester: DiskId,
        /// A disk whose current path occupies the switch.
        victim: DiskId,
        /// The host the victim would lose.
        victim_host: HostId,
    },
    /// Two commands in the same batch need the same switch in different
    /// positions.
    BatchConflict {
        /// The contested switch.
        switch: SwitchId,
        /// The two disks whose requirements clash.
        disks: (DiskId, DiskId),
    },
    /// The disk or host does not exist or has failed.
    Unavailable(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoPath(d, h) => write!(f, "no fabric path from {d} to {h}"),
            ScheduleError::Conflict {
                switch,
                requester,
                victim,
                victim_host,
            } => write!(
                f,
                "turning {switch} for {requester} would disconnect {victim} from {victim_host}"
            ),
            ScheduleError::BatchConflict { switch, disks } => write!(
                f,
                "{} and {} need {switch} in different positions",
                disks.0, disks.1
            ),
            ScheduleError::Unavailable(w) => write!(f, "unavailable: {w}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Topology + switch configuration + failure set.
#[derive(Debug, Clone)]
pub struct FabricState {
    topology: Topology,
    config: SwitchConfig,
    failed: BTreeSet<Component>,
}

impl FabricState {
    /// Creates a state over `topology` with the given initial switch
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails validation or `config` is missing a
    /// switch.
    pub fn new(topology: Topology, config: SwitchConfig) -> Self {
        topology.validate().expect("valid topology");
        for s in topology.switches() {
            assert!(config.contains_key(&s), "config missing {s}");
        }
        FabricState {
            topology,
            config,
            failed: BTreeSet::new(),
        }
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Marks a component failed.
    pub fn fail(&mut self, c: Component) {
        self.failed.insert(c);
    }

    /// Clears a component failure (after repair).
    pub fn repair(&mut self, c: Component) {
        self.failed.remove(&c);
    }

    /// Whether a component is marked failed.
    pub fn is_failed(&self, c: Component) -> bool {
        self.failed.contains(&c)
    }

    /// Sets one switch's position.
    ///
    /// # Panics
    ///
    /// Panics if the switch does not exist.
    pub fn set_switch(&mut self, s: SwitchId, pos: SwitchPos) {
        assert!(self.config.contains_key(&s), "unknown switch {s}");
        self.config.insert(s, pos);
    }

    /// One switch's current position.
    pub fn switch_pos(&self, s: SwitchId) -> Option<SwitchPos> {
        self.config.get(&s).copied()
    }

    fn up_ok(&self, up: UpRef) -> bool {
        match up {
            UpRef::Host(h) => !self.failed.contains(&Component::Host(h)),
            UpRef::Hub(h) => !self.failed.contains(&Component::Hub(h)),
            UpRef::Switch(_) => true, // switch failures fold into hubs/disks
        }
    }

    /// The host a disk is currently attached to, following the active
    /// switch positions; `None` if a component on the path failed.
    pub fn attached_host(&self, d: DiskId) -> Option<HostId> {
        if self.failed.contains(&Component::Disk(d)) {
            return None;
        }
        let mut cur = self.topology.disk_upstream(d)?;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                return None; // defensive: malformed topology
            }
            if !self.up_ok(cur) {
                return None;
            }
            cur = match cur {
                UpRef::Host(h) => return Some(h),
                UpRef::Hub(h) => self.topology.hub_upstream(h)?,
                UpRef::Switch(s) => {
                    let (a, b) = self.topology.switch_upstreams(s)?;
                    match self.config.get(&s)? {
                        SwitchPos::A => a,
                        SwitchPos::B => b,
                    }
                }
            };
        }
    }

    /// The host a hub is currently visible to, following active switch
    /// positions (host-side hubs are always visible to their host).
    pub fn hub_host(&self, h: HubId) -> Option<HostId> {
        if self.failed.contains(&Component::Hub(h)) {
            return None;
        }
        self.host_of(self.topology.hub_upstream(h)?)
    }

    /// Walks up from an attachment point to the host it currently leads to.
    pub fn host_of(&self, mut cur: UpRef) -> Option<HostId> {
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 || !self.up_ok(cur) {
                return None;
            }
            cur = match cur {
                UpRef::Host(h) => return Some(h),
                UpRef::Hub(h) => self.topology.hub_upstream(h)?,
                UpRef::Switch(s) => {
                    let (a, b) = self.topology.switch_upstreams(s)?;
                    match self.config.get(&s)? {
                        SwitchPos::A => a,
                        SwitchPos::B => b,
                    }
                }
            };
        }
    }

    /// The USB-visible parent of an attachment point: the first hub or
    /// host reached going upward (switches are invisible to USB, §IV-E).
    pub fn usb_parent(&self, mut cur: UpRef) -> Option<UpRef> {
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                return None;
            }
            match cur {
                UpRef::Host(_) | UpRef::Hub(_) => return Some(cur),
                UpRef::Switch(s) => {
                    let (a, b) = self.topology.switch_upstreams(s)?;
                    cur = match self.config.get(&s)? {
                        SwitchPos::A => a,
                        SwitchPos::B => b,
                    };
                }
            }
        }
    }

    /// Number of hops (hubs) between a node and its host, for attach
    /// ordering (parents first).
    pub fn depth_of(&self, mut cur: UpRef) -> usize {
        let mut depth = 0;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                return depth;
            }
            match cur {
                UpRef::Host(_) => return depth,
                UpRef::Hub(h) => {
                    depth += 1;
                    match self.topology.hub_upstream(h) {
                        Some(up) => cur = up,
                        None => return depth,
                    }
                }
                UpRef::Switch(s) => {
                    let Some((a, b)) = self.topology.switch_upstreams(s) else {
                        return depth;
                    };
                    cur = match self.config.get(&s) {
                        Some(SwitchPos::A) => a,
                        Some(SwitchPos::B) => b,
                        None => return depth,
                    };
                }
            }
        }
    }

    /// Current attachment map of every reachable disk.
    pub fn attachment_map(&self) -> BTreeMap<DiskId, HostId> {
        self.topology
            .disks()
            .filter_map(|d| self.attached_host(d).map(|h| (d, h)))
            .collect()
    }

    /// Switch settings required on the (unique) path from `d` to `host`,
    /// ignoring current positions — the paper's `GETSWITCH()`.
    ///
    /// Returns `None` when no path exists or a component on it failed.
    pub fn path_switches(&self, d: DiskId, host: HostId) -> Option<Vec<(SwitchId, SwitchPos)>> {
        if self.failed.contains(&Component::Disk(d)) || self.failed.contains(&Component::Host(host))
        {
            return None;
        }
        let start = self.topology.disk_upstream(d)?;
        let mut out = Vec::new();
        if self.search_up(start, host, &mut out, 0) {
            out.reverse();
            Some(out)
        } else {
            None
        }
    }

    fn search_up(
        &self,
        cur: UpRef,
        target: HostId,
        path: &mut Vec<(SwitchId, SwitchPos)>,
        depth: usize,
    ) -> bool {
        if depth > 64 || !self.up_ok(cur) {
            return false;
        }
        match cur {
            UpRef::Host(h) => h == target,
            UpRef::Hub(h) => match self.topology.hub_upstream(h) {
                Some(up) => self.search_up(up, target, path, depth + 1),
                None => false,
            },
            UpRef::Switch(s) => {
                let Some((a, b)) = self.topology.switch_upstreams(s) else {
                    return false;
                };
                path.push((s, SwitchPos::A));
                if self.search_up(a, target, path, depth + 1) {
                    return true;
                }
                path.pop();
                path.push((s, SwitchPos::B));
                if self.search_up(b, target, path, depth + 1) {
                    return true;
                }
                path.pop();
                false
            }
        }
    }

    /// Hosts this disk could reach through some switch configuration.
    pub fn reachable_hosts(&self, d: DiskId) -> Vec<HostId> {
        self.topology
            .hosts()
            .filter(|h| self.path_switches(d, *h).is_some())
            .collect()
    }

    /// The switches on a disk's *current* active path (with positions).
    pub fn current_path_switches(&self, d: DiskId) -> Vec<(SwitchId, SwitchPos)> {
        let mut out = Vec::new();
        let Some(mut cur) = self.topology.disk_upstream(d) else {
            return out;
        };
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                break;
            }
            cur = match cur {
                UpRef::Host(_) => break,
                UpRef::Hub(h) => match self.topology.hub_upstream(h) {
                    Some(up) => up,
                    None => break,
                },
                UpRef::Switch(s) => {
                    let Some((a, b)) = self.topology.switch_upstreams(s) else {
                        break;
                    };
                    let Some(pos) = self.config.get(&s).copied() else {
                        break;
                    };
                    out.push((s, pos));
                    match pos {
                        SwitchPos::A => a,
                        SwitchPos::B => b,
                    }
                }
            };
        }
        out
    }

    /// Algorithm 1: determines which switches must be turned to satisfy a
    /// batch of `(disk, host)` commands, refusing turns that would steal a
    /// switch from a disk not named in the batch.
    ///
    /// # Errors
    ///
    /// [`ScheduleError`] mirrors the paper's `ErrInfo`: missing paths,
    /// conflicts with unrelated disks, or contradictory batch demands.
    pub fn switches_to_turn(
        &self,
        pairs: &[(DiskId, HostId)],
    ) -> Result<Vec<(SwitchId, SwitchPos)>, ScheduleError> {
        let moving: BTreeSet<DiskId> = pairs.iter().map(|(d, _)| *d).collect();
        // OccupiedSwitches: positions pinned by disks that must not move.
        let mut occupied: HashMap<SwitchId, (SwitchPos, DiskId)> = HashMap::new();
        for d in self.topology.disks() {
            if moving.contains(&d) {
                continue;
            }
            if self.attached_host(d).is_none() {
                continue; // already disconnected; nothing to preserve
            }
            for (s, pos) in self.current_path_switches(d) {
                occupied.entry(s).or_insert((pos, d));
            }
        }
        let mut to_turn: Vec<(SwitchId, SwitchPos)> = Vec::new();
        let mut batch_pins: HashMap<SwitchId, (SwitchPos, DiskId)> = HashMap::new();
        for (d, h) in pairs {
            let path = self
                .path_switches(*d, *h)
                .ok_or(ScheduleError::NoPath(*d, *h))?;
            for (s, desired) in path {
                if let Some((pinned, other)) = batch_pins.get(&s) {
                    if *pinned != desired {
                        return Err(ScheduleError::BatchConflict {
                            switch: s,
                            disks: (*other, *d),
                        });
                    }
                    continue;
                }
                if let Some((pos, victim)) = occupied.get(&s) {
                    if *pos != desired {
                        let victim_host = self
                            .attached_host(*victim)
                            .expect("victim was attached when pinned");
                        return Err(ScheduleError::Conflict {
                            switch: s,
                            requester: *d,
                            victim: *victim,
                            victim_host,
                        });
                    }
                    // Already in the right position and shared: fine.
                    batch_pins.insert(s, (desired, *d));
                    continue;
                }
                batch_pins.insert(s, (desired, *d));
                if self.config.get(&s).copied() != Some(desired) {
                    to_turn.push((s, desired));
                }
            }
        }
        Ok(to_turn)
    }

    /// Disks whose current attachment would change if `switches` were
    /// turned — the victims named in the Controller's error reports.
    pub fn displaced_by(&self, switches: &[(SwitchId, SwitchPos)]) -> Vec<DiskId> {
        let mut hypothetical = self.clone();
        for (s, pos) in switches {
            hypothetical.set_switch(*s, *pos);
        }
        self.topology
            .disks()
            .filter(|d| {
                let before = self.attached_host(*d);
                let after = hypothetical.attached_host(*d);
                before.is_some() && before != after
            })
            .collect()
    }

    /// Applies a turn list (after the control plane has executed it).
    pub fn apply_turns(&mut self, switches: &[(SwitchId, SwitchPos)]) {
        for (s, pos) in switches {
            self.set_switch(*s, *pos);
        }
    }

    /// Plans the evacuation of `disks` (typically a dead host's) onto
    /// `targets`, assigning whole switch cohorts together and balancing
    /// target load.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NoPath`] if some disk cannot reach any target
    /// without stealing a switch from a disk outside the evacuation set.
    pub fn plan_evacuation(
        &self,
        disks: &[DiskId],
        targets: &[HostId],
    ) -> Result<Vec<(DiskId, HostId)>, ScheduleError> {
        self.plan(disks, targets, false)
    }

    /// Like [`plan_evacuation`](Self::plan_evacuation), but disks still
    /// live on a host may be pulled along as cohort: turning a shared
    /// switch moves every disk behind it, so relocating one *degraded but
    /// still attached* disk necessarily carries its hub-mates to the new
    /// host. Evacuation of a dead host refuses that (it would silently
    /// steal disks from healthy hosts); a proactive single-disk move
    /// requires it.
    pub fn plan_move(
        &self,
        disks: &[DiskId],
        targets: &[HostId],
    ) -> Result<Vec<(DiskId, HostId)>, ScheduleError> {
        self.plan(disks, targets, true)
    }

    fn plan(
        &self,
        disks: &[DiskId],
        targets: &[HostId],
        pull_live_cohort: bool,
    ) -> Result<Vec<(DiskId, HostId)>, ScheduleError> {
        let moving: BTreeSet<DiskId> = disks.iter().copied().collect();
        let mut loads: BTreeMap<HostId, usize> = targets.iter().map(|h| (*h, 0)).collect();
        for (d, h) in self.attachment_map() {
            if !moving.contains(&d) {
                if let Some(l) = loads.get_mut(&h) {
                    *l += 1;
                }
            }
        }
        let mut assigned: BTreeMap<DiskId, HostId> = BTreeMap::new();
        for d in disks {
            if assigned.contains_key(d) {
                continue;
            }
            // Try targets from least to most loaded.
            let mut order: Vec<HostId> = targets.to_vec();
            // Least-loaded first; on ties prefer higher-numbered hosts so
            // the controlling hosts (low ids) stay available as backups.
            order.sort_by_key(|h| (loads[h], u32::MAX - h.0));
            let mut placed = false;
            'target: for t in order {
                let Some(path) = self.path_switches(*d, t) else {
                    continue;
                };
                let turned: Vec<SwitchId> = path
                    .iter()
                    .filter(|(s, p)| self.config.get(s) != Some(p))
                    .map(|(s, _)| *s)
                    .collect();
                // Cohort: every disk whose current path crosses a turned
                // switch moves together.
                let mut cohort = vec![*d];
                for other in self.topology.disks() {
                    if other == *d {
                        continue;
                    }
                    let crosses = self
                        .current_path_switches(other)
                        .iter()
                        .any(|(s, _)| turned.contains(s));
                    if crosses {
                        if !moving.contains(&other)
                            && self.attached_host(other).is_some()
                            && !pull_live_cohort
                        {
                            continue 'target; // would steal a live disk
                        }
                        cohort.push(other);
                    }
                }
                for c in &cohort {
                    assigned.insert(*c, t);
                }
                *loads.get_mut(&t).expect("known target") += cohort.len();
                placed = true;
                break;
            }
            if !placed {
                return Err(ScheduleError::NoPath(
                    *d,
                    targets.first().copied().unwrap_or(HostId(u32::MAX)),
                ));
            }
        }
        Ok(assigned.into_iter().collect())
    }

    /// Disks that currently have no live path to any host (blast-radius
    /// analysis for failure reporting).
    pub fn orphaned_disks(&self) -> Vec<DiskId> {
        self.topology
            .disks()
            .filter(|d| self.attached_host(*d).is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prototype() -> FabricState {
        let (t, cfg) = Topology::upper_switched(4, 16, 4);
        FabricState::new(t, cfg)
    }

    fn two_tree() -> FabricState {
        let (t, cfg) = Topology::leaf_switched(16, 4);
        FabricState::new(t, cfg)
    }

    #[test]
    fn initial_attachment_spreads_groups() {
        let f = prototype();
        let map = f.attachment_map();
        assert_eq!(map.len(), 16);
        // Group g of 4 disks lands on host g.
        for d in 0..16u32 {
            assert_eq!(map[&DiskId(d)], HostId(d / 4), "disk {d}");
        }
    }

    #[test]
    fn every_disk_reaches_every_host_in_prototype() {
        let f = prototype();
        for d in 0..16u32 {
            let hosts = f.reachable_hosts(DiskId(d));
            assert_eq!(hosts.len(), 4, "disk {d} reaches all hosts");
        }
    }

    #[test]
    fn leaf_switched_reaches_both_hosts() {
        let f = two_tree();
        for d in 0..16u32 {
            assert_eq!(f.reachable_hosts(DiskId(d)).len(), 2);
        }
    }

    #[test]
    fn path_switches_roundtrip() {
        let mut f = prototype();
        let d = DiskId(0);
        let target = HostId(3);
        let path = f.path_switches(d, target).expect("path exists");
        assert!(!path.is_empty());
        for (s, pos) in &path {
            f.set_switch(*s, *pos);
        }
        assert_eq!(f.attached_host(d), Some(target));
    }

    #[test]
    fn switches_to_turn_moves_whole_group() {
        let f = prototype();
        // Moving disk 0 to host 1 turns its group's switch tree; disks 1-3
        // (same leaf hub) are also moved, so naming only disk 0 conflicts
        // with its groupmates... unless they are named too.
        let err = f.switches_to_turn(&[(DiskId(0), HostId(1))]).unwrap_err();
        match err {
            ScheduleError::Conflict {
                victim,
                victim_host,
                ..
            } => {
                assert!(victim.0 < 4, "victim is a groupmate");
                assert_eq!(victim_host, HostId(0));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Naming the whole group succeeds.
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(1))).collect();
        let turns = f.switches_to_turn(&pairs).expect("no conflict");
        assert!(!turns.is_empty());
        let mut f2 = f.clone();
        f2.apply_turns(&turns);
        for d in 0..4u32 {
            assert_eq!(f2.attached_host(DiskId(d)), Some(HostId(1)));
        }
        // Other groups untouched.
        assert_eq!(f2.attached_host(DiskId(5)), Some(HostId(1)));
        assert_eq!(f2.attached_host(DiskId(9)), Some(HostId(2)));
    }

    #[test]
    fn leaf_switched_moves_single_disk_without_conflict() {
        let f = two_tree();
        // Disk 0 starts on host 0 (pos A); move it alone to host 1.
        assert_eq!(f.attached_host(DiskId(0)), Some(HostId(0)));
        let turns = f
            .switches_to_turn(&[(DiskId(0), HostId(1))])
            .expect("independent switch per disk");
        assert_eq!(turns.len(), 1);
        let mut f2 = f.clone();
        f2.apply_turns(&turns);
        assert_eq!(f2.attached_host(DiskId(0)), Some(HostId(1)));
        // No other disk moved.
        for d in 1..16u32 {
            assert_eq!(f2.attached_host(DiskId(d)), f.attached_host(DiskId(d)));
        }
    }

    #[test]
    fn noop_command_returns_empty_turn_list() {
        let f = prototype();
        let turns = f
            .switches_to_turn(&[(DiskId(0), HostId(0))])
            .expect("already attached");
        assert!(turns.is_empty());
    }

    #[test]
    fn batch_conflict_detected() {
        let f = prototype();
        // Disks 0 and 1 share a leaf hub: steering them to different hosts
        // needs the same switch tree in two positions at once.
        let mut pairs: Vec<(DiskId, HostId)> = vec![(DiskId(0), HostId(1)), (DiskId(1), HostId(2))];
        pairs.extend((2..4).map(|d| (DiskId(d), HostId(1))));
        let err = f.switches_to_turn(&pairs).unwrap_err();
        assert!(
            matches!(err, ScheduleError::BatchConflict { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn host_failure_orphans_until_reconfigured() {
        let mut f = prototype();
        f.fail(Component::Host(HostId(0)));
        assert_eq!(f.attached_host(DiskId(0)), None);
        assert_eq!(f.orphaned_disks().len(), 4);
        // Algorithm 1 can move the orphaned group to a live host.
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(2))).collect();
        let turns = f.switches_to_turn(&pairs).expect("reroute");
        f.apply_turns(&turns);
        assert_eq!(f.orphaned_disks(), Vec::<DiskId>::new());
        assert_eq!(f.attached_host(DiskId(0)), Some(HostId(2)));
    }

    #[test]
    fn hub_failure_detected_and_no_path_through_it() {
        let mut f = prototype();
        // Fail host 1's root hub: host 1 becomes unreachable.
        // Root hubs are HubId(0..4) in build order.
        f.fail(Component::Hub(crate::topology::HubId(1)));
        assert_eq!(f.attached_host(DiskId(4)), None, "group 1 orphaned");
        assert!(f.path_switches(DiskId(0), HostId(1)).is_none());
        assert_eq!(f.reachable_hosts(DiskId(0)).len(), 3);
    }

    #[test]
    fn disk_failure_is_isolated() {
        let mut f = prototype();
        f.fail(Component::Disk(DiskId(7)));
        assert_eq!(f.attached_host(DiskId(7)), None);
        assert_eq!(
            f.attached_host(DiskId(6)),
            Some(HostId(1)),
            "neighbour fine"
        );
        f.repair(Component::Disk(DiskId(7)));
        assert_eq!(f.attached_host(DiskId(7)), Some(HostId(1)));
    }

    #[test]
    fn displaced_by_reports_victims() {
        let f = prototype();
        let path = f.path_switches(DiskId(0), HostId(1)).expect("path");
        let turns: Vec<_> = path
            .into_iter()
            .filter(|(s, p)| f.switch_pos(*s) != Some(*p))
            .collect();
        let displaced = f.displaced_by(&turns);
        // The whole group 0 moves.
        assert_eq!(displaced, vec![DiskId(0), DiskId(1), DiskId(2), DiskId(3)]);
    }

    #[test]
    fn plan_evacuation_balances_groups() {
        let mut f = prototype();
        f.fail(Component::Host(HostId(0)));
        let dead_disks: Vec<DiskId> = (0..4).map(DiskId).collect();
        let live: Vec<HostId> = (1..4).map(HostId).collect();
        let plan = f.plan_evacuation(&dead_disks, &live).expect("plan");
        assert_eq!(plan.len(), 4, "whole group planned");
        let target = plan[0].1;
        assert!(
            plan.iter().all(|(_, h)| *h == target),
            "group moves together"
        );
        assert_ne!(target, HostId(0));
        // The plan is executable.
        let turns = f.switches_to_turn(&plan).expect("valid plan");
        f.apply_turns(&turns);
        assert!(f.orphaned_disks().is_empty());
    }

    #[test]
    fn plan_evacuation_spreads_multiple_groups() {
        // Kill two hosts worth of disks in the leaf-switched design: each
        // disk is independent, so planning balances them across survivors.
        let f = two_tree();
        // Move all 8 disks currently on host 0 to host 1.
        let disks: Vec<DiskId> = (0..16u32)
            .map(DiskId)
            .filter(|d| f.attached_host(*d) == Some(HostId(0)))
            .collect();
        assert_eq!(disks.len(), 8);
        let plan = f.plan_evacuation(&disks, &[HostId(1)]).expect("plan");
        assert_eq!(plan.len(), 8);
        assert!(plan.iter().all(|(_, h)| *h == HostId(1)));
    }

    #[test]
    fn plan_move_pulls_live_hub_mates() {
        // disk0 is alive on host0; its three hub-mates share the leaf
        // hub. Evacuation-style planning must refuse (stealing live
        // disks), a proactive move must carry the whole group.
        let f = prototype();
        let targets: Vec<HostId> = (1..4).map(HostId).collect();
        let err = f.plan_evacuation(&[DiskId(0)], &targets).unwrap_err();
        assert!(matches!(err, ScheduleError::NoPath(_, _)));
        let plan = f.plan_move(&[DiskId(0)], &targets).expect("plan");
        assert_eq!(plan.len(), 4, "whole hub group moves");
        let hosts: BTreeSet<HostId> = plan.iter().map(|(_, h)| *h).collect();
        assert_eq!(hosts.len(), 1, "group stays together");
        assert!(!hosts.contains(&HostId(0)), "moved away from host0");
        // The plan is executable.
        let mut f = f;
        let turns = f.switches_to_turn(&plan).expect("valid plan");
        f.apply_turns(&turns);
        for (d, h) in &plan {
            assert_eq!(f.attached_host(*d), Some(*h));
        }
    }

    #[test]
    fn plan_evacuation_fails_without_targets() {
        let f = prototype();
        let err = f.plan_evacuation(&[DiskId(0)], &[]).unwrap_err();
        assert!(matches!(err, ScheduleError::NoPath(_, _)));
    }

    #[test]
    fn any_config_partitions_into_trees() {
        // Property sampled deterministically: random switch settings always
        // leave each disk attached to at most one host, and disks sharing a
        // leaf hub agree on the host.
        let (t, cfg) = Topology::upper_switched(4, 16, 4);
        let mut f = FabricState::new(t, cfg);
        let switches: Vec<SwitchId> = f.topology().switches().collect();
        let mut x = 0xDEADBEEFu64;
        for _ in 0..50 {
            for s in &switches {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pos = if x & 1 == 0 {
                    SwitchPos::A
                } else {
                    SwitchPos::B
                };
                f.set_switch(*s, pos);
            }
            for g in 0..4u32 {
                let hosts: BTreeSet<Option<HostId>> =
                    (0..4).map(|i| f.attached_host(DiskId(g * 4 + i))).collect();
                assert_eq!(hosts.len(), 1, "group {g} splits across hosts");
            }
        }
    }
}
