//! Binds the fabric to simulated hardware and executes reconfigurations.
//!
//! [`FabricRuntime`] owns the deploy unit's moving parts: the
//! [`FabricState`] (wiring + switch positions), the [`ControlPlane`], the
//! per-host [`UsbHost`] controllers, the [`Disk`] models and the power
//! relays. It implements the Controller's §IV-C command execution: lock
//! the fabric, compute the switches to turn (Algorithm 1), drive them
//! through the microcontroller, let the moved devices re-enumerate on
//! their new host, verify within a deadline, and roll back on failure.
//!
//! It also serves fabric-attached IO: a disk command's completion is the
//! later of the drive's own service time and its share of the USB tree
//! (they overlap, so an uncontended bus adds nothing — Table II).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use ustore_disk::{Disk, DiskError, DiskProfile};
use ustore_sim::{Sim, SimTime, SpanId, TraceLevel};
use ustore_usb::{BusDir, DeviceDesc, DeviceId, DeviceKind, DeviceState, UsbHost, UsbProfile};

use crate::control::{ControlError, ControlPlane, RelayBank};
use crate::routing::{Component, FabricState, ScheduleError};
use crate::topology::{DiskId, HostId, HubId, SwitchConfig, SwitchId, SwitchPos, Topology, UpRef};

/// Errors from fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Another command holds the fabric lock (§IV-C step 1).
    Busy,
    /// Algorithm 1 refused the command.
    Schedule(ScheduleError),
    /// The control plane cannot reach a microcontroller.
    Control(ControlError),
    /// Moved disks did not re-enumerate before the deadline; the command
    /// was rolled back (§IV-C step 3).
    VerifyTimeout {
        /// Disks that never became ready.
        missing: Vec<DiskId>,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Busy => write!(f, "fabric is locked by another command"),
            FabricError::Schedule(e) => write!(f, "schedule: {e}"),
            FabricError::Control(e) => write!(f, "control plane: {e}"),
            FabricError::VerifyTimeout { missing } => {
                write!(
                    f,
                    "verification timed out; rolled back ({} disks)",
                    missing.len()
                )
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Errors from fabric-attached IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricIoError {
    /// The disk currently has no live path to any host.
    NotAttached,
    /// The disk's USB device has not (re-)enumerated yet.
    NotReady,
    /// The drive itself failed the command.
    Disk(DiskError),
}

impl fmt::Display for FabricIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricIoError::NotAttached => write!(f, "disk not attached to any host"),
            FabricIoError::NotReady => write!(f, "disk not enumerated yet"),
            FabricIoError::Disk(e) => write!(f, "disk: {e}"),
        }
    }
}

impl std::error::Error for FabricIoError {}

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Disk model (defaults to the prototype drive behind a USB bridge).
    pub disk_profile: DiskProfile,
    /// USB controller model.
    pub usb_profile: UsbProfile,
    /// Whether disks retain written payloads.
    pub store_data: bool,
    /// Verification deadline for reconfigurations (paper: 30 s).
    pub verify_timeout: Duration,
    /// Poll interval while verifying.
    pub verify_poll: Duration,
    /// Hosts whose failure takes down microcontroller 0 / 1.
    pub mc_hosts: [HostId; 2],
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            disk_profile: DiskProfile::usb_bridge(),
            usb_profile: UsbProfile::prototype(),
            store_data: true,
            verify_timeout: Duration::from_secs(30),
            verify_poll: Duration::from_millis(200),
            mc_hosts: [HostId(0), HostId(1)],
        }
    }
}

struct RT {
    state: FabricState,
    control: ControlPlane,
    relays: RelayBank,
    hosts: BTreeMap<HostId, UsbHost>,
    disks: BTreeMap<DiskId, Disk>,
    config: RuntimeConfig,
    locked: bool,
    glitched: std::collections::BTreeSet<DiskId>,
}

fn hub_dev(h: HubId) -> DeviceId {
    DeviceId(100_000 + h.0)
}
fn disk_dev(d: DiskId) -> DeviceId {
    DeviceId(d.0)
}

/// The live deploy unit: fabric + control plane + simulated hardware.
#[derive(Clone)]
pub struct FabricRuntime {
    inner: Rc<RefCell<RT>>,
}

impl fmt::Debug for FabricRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rt = self.inner.borrow();
        f.debug_struct("FabricRuntime")
            .field("hosts", &rt.hosts.len())
            .field("disks", &rt.disks.len())
            .field("locked", &rt.locked)
            .finish()
    }
}

impl FabricRuntime {
    /// Brings up a deploy unit: creates host controllers and disks, applies
    /// the initial switch configuration and enumerates everything.
    pub fn new(
        sim: &Sim,
        topology: Topology,
        switch_config: SwitchConfig,
        config: RuntimeConfig,
    ) -> Self {
        let switches: Vec<SwitchId> = topology.switches().collect();
        let disks_ids: Vec<DiskId> = topology.disks().collect();
        let hubs_ids: Vec<HubId> = topology.hubs().collect();
        let mut control = ControlPlane::new(switches.clone());
        // Drive the control plane to the requested initial configuration.
        for (s, pos) in &switch_config {
            control.turn_switch(*s, *pos).expect("fresh control plane");
        }
        let state = FabricState::new(topology.clone(), switch_config);
        let hosts: BTreeMap<HostId, UsbHost> = topology
            .hosts()
            .map(|h| (h, UsbHost::new(format!("{h}"), config.usb_profile.clone())))
            .collect();
        let disks: BTreeMap<DiskId, Disk> = disks_ids
            .iter()
            .map(|d| {
                (
                    *d,
                    Disk::new(
                        sim,
                        format!("{d}"),
                        config.disk_profile.clone(),
                        config.store_data,
                    ),
                )
            })
            .collect();
        let rt = FabricRuntime {
            inner: Rc::new(RefCell::new(RT {
                state,
                control,
                relays: RelayBank::new(disks_ids, hubs_ids),
                hosts,
                disks,
                config,
                locked: false,
                glitched: std::collections::BTreeSet::new(),
            })),
        };
        rt.mount_all(sim);
        // Hot-plug listeners capture their subscribers (an EndPoint on
        // each host holds this runtime back) — a cycle the event-queue
        // teardown cannot reach. Register a weak breaker so one
        // `Sim::teardown` releases the whole unit.
        let weak = Rc::downgrade(&rt.inner);
        sim.on_teardown(move || {
            if let Some(inner) = weak.upgrade() {
                let hosts: Vec<UsbHost> = inner.borrow().hosts.values().cloned().collect();
                for h in hosts {
                    h.clear_listeners();
                }
            }
        });
        rt
    }

    /// Convenience constructor for the paper's prototype (16 disks, 4
    /// hosts, fan-in 4, upper-level switching).
    pub fn prototype(sim: &Sim) -> Self {
        let (t, cfg) = Topology::upper_switched(4, 16, 4);
        FabricRuntime::new(sim, t, cfg, RuntimeConfig::default())
    }

    fn mount_all(&self, sim: &Sim) {
        let plan = {
            let rt = self.inner.borrow();
            self.attach_plan(&rt)
        };
        for (host, desc) in plan {
            let h = self.inner.borrow().hosts[&host].clone();
            h.attach(sim, desc);
        }
    }

    /// Computes `(host, DeviceDesc)` attach commands for all currently
    /// visible hubs/disks, parents before children.
    fn attach_plan(&self, rt: &RT) -> Vec<(HostId, DeviceDesc)> {
        let mut rows: Vec<(usize, HostId, DeviceDesc)> = Vec::new();
        let topo = rt.state.topology().clone();
        for hub in topo.hubs() {
            if !rt.relays.hub_on(hub) {
                continue;
            }
            if let Some(host) = rt.state.hub_host(hub) {
                let up = topo.hub_upstream(hub).expect("hub exists");
                let parent = match rt.state.usb_parent(up) {
                    Some(UpRef::Hub(p)) => Some(hub_dev(p)),
                    _ => None,
                };
                let depth = rt.state.depth_of(up);
                rows.push((
                    depth,
                    host,
                    DeviceDesc {
                        id: hub_dev(hub),
                        kind: DeviceKind::Hub,
                        parent,
                    },
                ));
            }
        }
        for d in topo.disks() {
            if !rt.relays.disk_on(d) || rt.glitched.contains(&d) {
                continue;
            }
            if let Some(host) = rt.state.attached_host(d) {
                let up = topo.disk_upstream(d).expect("disk exists");
                let parent = match rt.state.usb_parent(up) {
                    Some(UpRef::Hub(p)) => Some(hub_dev(p)),
                    _ => None,
                };
                let depth = rt.state.depth_of(up);
                rows.push((
                    depth,
                    host,
                    DeviceDesc {
                        id: disk_dev(d),
                        kind: DeviceKind::Storage,
                        parent,
                    },
                ));
            }
        }
        rows.sort_by_key(|(depth, host, desc)| (*depth, host.0, desc.id));
        rows.into_iter().map(|(_, h, d)| (h, d)).collect()
    }

    // ---- Accessors ---------------------------------------------------------

    /// Runs `f` against the fabric state.
    pub fn with_state<R>(&self, f: impl FnOnce(&FabricState) -> R) -> R {
        f(&self.inner.borrow().state)
    }

    /// Mutates the fabric state directly — the failure-injection hook used
    /// by tests and experiments (e.g. marking a hub failed).
    pub fn with_state_mut<R>(&self, f: impl FnOnce(&mut FabricState) -> R) -> R {
        f(&mut self.inner.borrow_mut().state)
    }

    /// The USB controller of one host.
    pub fn usb_host(&self, h: HostId) -> UsbHost {
        self.inner.borrow().hosts[&h].clone()
    }

    /// The disk model behind one slot.
    pub fn disk(&self, d: DiskId) -> Disk {
        self.inner.borrow().disks[&d].clone()
    }

    /// All disk ids.
    pub fn disk_ids(&self) -> Vec<DiskId> {
        self.inner.borrow().state.topology().disks().collect()
    }

    /// All host ids.
    pub fn host_ids(&self) -> Vec<HostId> {
        self.inner.borrow().state.topology().hosts().collect()
    }

    /// The host a disk is currently attached to.
    pub fn attached_host(&self, d: DiskId) -> Option<HostId> {
        self.inner.borrow().state.attached_host(d)
    }

    /// Whether the disk's USB device is enumerated and usable.
    pub fn disk_ready(&self, d: DiskId) -> bool {
        let rt = self.inner.borrow();
        let Some(host) = rt.state.attached_host(d) else {
            return false;
        };
        matches!(
            rt.hosts[&host].device_state(disk_dev(d)),
            Some(DeviceState::Ready)
        )
    }

    // ---- Reconfiguration (§IV-C) ------------------------------------------

    /// Executes a scheduling command: connect each `(disk, host)` pair.
    ///
    /// Follows the paper's three steps — lock, Algorithm 1, actuate +
    /// verify (rolling back on timeout). `cb` receives the outcome.
    pub fn execute(
        &self,
        sim: &Sim,
        pairs: Vec<(DiskId, HostId)>,
        cb: impl FnOnce(&Sim, Result<(), FabricError>) + 'static,
    ) {
        // Step 1: lock the fabric.
        {
            let mut rt = self.inner.borrow_mut();
            if rt.locked {
                sim.count("fabric", "fabric.busy_rejections", 1);
                sim.schedule_now(move |sim| cb(sim, Err(FabricError::Busy)));
                return;
            }
            rt.locked = true;
        }
        sim.count("fabric", "fabric.commands", 1);
        // If a failover's reconfiguration phase is in flight, our span tree
        // hangs under it; otherwise this command is its own root.
        let exec = match sim.find_open_span("failover.reconfiguration") {
            Some(parent) => sim.span_child(parent, "fabric", "fabric.execute"),
            None => sim.span_start("fabric", "fabric.execute"),
        };
        sim.span_attr(exec, "pairs", pairs.len().to_string());
        let lock = sim.span_child(exec, "fabric", "fabric.lock");
        sim.span_end(lock);
        // Step 2: Algorithm 1.
        let turns = match self.with_state(|s| s.switches_to_turn(&pairs)) {
            Ok(t) => t,
            Err(e) => {
                self.inner.borrow_mut().locked = false;
                sim.span_attr(exec, "error", "schedule");
                sim.span_end(exec);
                sim.schedule_now(move |sim| cb(sim, Err(FabricError::Schedule(e))));
                return;
            }
        };
        if turns.is_empty() {
            self.inner.borrow_mut().locked = false;
            sim.span_attr(exec, "switches", "0");
            sim.span_end(exec);
            sim.schedule_now(move |sim| cb(sim, Ok(())));
            return;
        }
        // Step 3: actuate through the microcontroller, one switch at a time.
        let (actuation, prev): (Duration, Vec<(SwitchId, SwitchPos)>) = {
            let mut rt = self.inner.borrow_mut();
            let prev: Vec<(SwitchId, SwitchPos)> = turns
                .iter()
                .map(|(s, _)| (*s, rt.state.switch_pos(*s).expect("switch exists")))
                .collect();
            for (s, pos) in &turns {
                if let Err(e) = rt.control.turn_switch(*s, *pos) {
                    rt.locked = false;
                    drop(rt);
                    sim.span_attr(exec, "error", "control");
                    sim.span_end(exec);
                    sim.schedule_now(move |sim| cb(sim, Err(FabricError::Control(e))));
                    return;
                }
            }
            (rt.control.switch_latency() * turns.len() as u32, prev)
        };
        sim.count("fabric", "fabric.switch_flips", turns.len() as u64);
        let actuate = sim.span_child(exec, "fabric", "fabric.actuate");
        sim.span_attr(actuate, "switches", turns.len().to_string());
        sim.trace(
            TraceLevel::Info,
            "fabric",
            format!("turning {} switches for {} pairs", turns.len(), pairs.len()),
        );
        let this = self.clone();
        let moved_expect: Vec<DiskId> = self.with_state(|s| s.displaced_by(&turns));
        sim.schedule_in(actuation, move |sim| {
            sim.span_end(actuate);
            this.apply_physical(sim, &turns);
            // Verify: all moved disks must re-enumerate before the deadline.
            let verify = sim.span_child(exec, "fabric", "fabric.verify");
            let deadline = sim.now() + this.inner.borrow().config.verify_timeout;
            this.verify_loop(sim, moved_expect, turns, prev, deadline, (exec, verify), cb);
        });
    }

    /// Applies turned switches to the fabric state and performs the USB
    /// detach/attach of every moved subtree.
    fn apply_physical(&self, sim: &Sim, turns: &[(SwitchId, SwitchPos)]) {
        // Visibility before.
        let (before_hubs, before_disks) = self.visibility();
        self.inner.borrow_mut().state.apply_turns(turns);
        let (after_hubs, after_disks) = self.visibility();
        // Detach moved/vanished devices from their old hosts.
        for (hub, old_host) in &before_hubs {
            if after_hubs.get(hub) != Some(old_host) {
                let h = self.inner.borrow().hosts[old_host].clone();
                h.detach(sim, hub_dev(*hub));
            }
        }
        for (d, old_host) in &before_disks {
            if after_disks.get(d) != Some(old_host) {
                let h = self.inner.borrow().hosts[old_host].clone();
                h.detach(sim, disk_dev(*d));
            }
        }
        // Attach appeared devices on their new hosts, parents first.
        let plan = {
            let rt = self.inner.borrow();
            self.attach_plan(&rt)
        };
        for (host, desc) in plan {
            let moved = match desc.kind {
                DeviceKind::Hub => {
                    let hub = HubId(desc.id.0 - 100_000);
                    before_hubs.get(&hub).copied() != after_hubs.get(&hub).copied()
                }
                DeviceKind::Storage => {
                    let d = DiskId(desc.id.0);
                    before_disks.get(&d).copied() != after_disks.get(&d).copied()
                }
            };
            if moved {
                let h = self.inner.borrow().hosts[&host].clone();
                h.attach(sim, desc);
            }
        }
    }

    fn visibility(&self) -> (BTreeMap<HubId, HostId>, BTreeMap<DiskId, HostId>) {
        let rt = self.inner.borrow();
        let topo = rt.state.topology();
        let hubs = topo
            .hubs()
            .filter(|h| rt.relays.hub_on(*h))
            .filter_map(|h| rt.state.hub_host(h).map(|host| (h, host)))
            .collect();
        let disks = topo
            .disks()
            .filter(|d| rt.relays.disk_on(*d) && !rt.glitched.contains(d))
            .filter_map(|d| rt.state.attached_host(d).map(|host| (d, host)))
            .collect();
        (hubs, disks)
    }

    fn verify_loop(
        &self,
        sim: &Sim,
        moved: Vec<DiskId>,
        turns: Vec<(SwitchId, SwitchPos)>,
        prev: Vec<(SwitchId, SwitchPos)>,
        deadline: SimTime,
        spans: (SpanId, SpanId),
        cb: impl FnOnce(&Sim, Result<(), FabricError>) + 'static,
    ) {
        let (exec, verify) = spans;
        let missing: Vec<DiskId> = moved
            .iter()
            .copied()
            .filter(|d| {
                // Only disks that should be attached need to verify.
                self.attached_host(*d).is_some() && !self.disk_ready(*d)
            })
            .collect();
        if missing.is_empty() {
            self.inner.borrow_mut().locked = false;
            sim.span_end(verify);
            sim.span_end(exec);
            if let Some(d) = sim.with_spans(|t| t.get(exec).and_then(|s| s.duration())) {
                sim.observe_duration("fabric", "fabric.reconfig_latency_ns", d);
            }
            sim.trace(TraceLevel::Info, "fabric", "reconfiguration verified");
            cb(sim, Ok(()));
            return;
        }
        if sim.now() >= deadline {
            // Roll back: turn the switches to their original state.
            sim.trace(
                TraceLevel::Error,
                "fabric",
                format!(
                    "verification timed out; rolling back ({} missing)",
                    missing.len()
                ),
            );
            {
                let mut rt = self.inner.borrow_mut();
                for (s, pos) in &prev {
                    // Best effort; control-plane loss here leaves the
                    // fabric for the operator, as in the paper.
                    let _ = rt.control.turn_switch(*s, *pos);
                }
            }
            sim.count("fabric", "fabric.rollbacks", 1);
            sim.count("fabric", "fabric.switch_flips", prev.len() as u64);
            self.apply_physical(sim, &prev);
            let _ = turns;
            self.inner.borrow_mut().locked = false;
            sim.span_attr(verify, "outcome", "timeout");
            sim.span_attr(exec, "error", "verify_timeout");
            sim.span_end(verify);
            sim.span_end(exec);
            cb(sim, Err(FabricError::VerifyTimeout { missing }));
            return;
        }
        let poll = self.inner.borrow().config.verify_poll;
        let this = self.clone();
        sim.schedule_in(poll, move |sim| {
            this.verify_loop(sim, moved, turns, prev, deadline, spans, cb);
        });
    }

    // ---- Failures ------------------------------------------------------------

    /// Marks a host dead: its USB trees go away and, if it hosted the
    /// active microcontroller, the control plane fails over to the backup.
    pub fn host_failed(&self, sim: &Sim, h: HostId) {
        let mut rt = self.inner.borrow_mut();
        rt.state.fail(Component::Host(h));
        let mc_hosts = rt.config.mc_hosts;
        for (i, mh) in mc_hosts.iter().enumerate() {
            if *mh == h {
                rt.control.set_host_alive(i, false);
            }
        }
        if !rt.control.controllable() {
            rt.control.activate_backup();
            sim.count("fabric", "fabric.control_failovers", 1);
            sim.trace(
                TraceLevel::Warn,
                "fabric",
                "control plane failed over to backup",
            );
        }
        drop(rt);
        sim.trace(TraceLevel::Warn, "fabric", format!("{h} marked failed"));
    }

    /// Marks a hub dead (§IV-E: the hub and the switch feeding it are one
    /// failure unit): its whole USB subtree disappears from whichever host
    /// it was visible on. Disks behind a failed host-side hub can be
    /// rerouted by Algorithm 1; disks behind their own leaf hub cannot and
    /// await repair.
    pub fn hub_failed(&self, sim: &Sim, hub: HubId) {
        let host = {
            let mut rt = self.inner.borrow_mut();
            let host = rt.state.hub_host(hub);
            rt.state.fail(Component::Hub(hub));
            host
        };
        if let Some(host) = host {
            let h = self.inner.borrow().hosts[&host].clone();
            h.detach(sim, hub_dev(hub));
        }
        sim.trace(TraceLevel::Warn, "fabric", format!("{hub} marked failed"));
    }

    /// Repairs a hub; anything now routed through it re-enumerates.
    pub fn hub_repaired(&self, sim: &Sim, hub: HubId) {
        self.inner.borrow_mut().state.repair(Component::Hub(hub));
        self.mount_all(sim);
        sim.trace(TraceLevel::Info, "fabric", format!("{hub} repaired"));
    }

    /// Restores a repaired host.
    pub fn host_repaired(&self, sim: &Sim, h: HostId) {
        let mut rt = self.inner.borrow_mut();
        rt.state.repair(Component::Host(h));
        let mc_hosts = rt.config.mc_hosts;
        for (i, mh) in mc_hosts.iter().enumerate() {
            if *mh == h {
                rt.control.set_host_alive(i, true);
            }
        }
        drop(rt);
        // Re-enumerate anything now visible on the repaired host.
        self.mount_all(sim);
    }

    /// Injects the paper's §V-B "wrinkle": the next time this disk is
    /// switched it fails to re-enumerate until power cycled.
    pub fn inject_switch_glitch(&self, d: DiskId) {
        self.inner.borrow_mut().glitched.insert(d);
    }

    /// Power cycles a disk (the paper's workaround for stuck switching):
    /// clears a glitch, cuts and restores the rail, re-enumerates.
    pub fn power_cycle_disk(&self, sim: &Sim, d: DiskId) {
        {
            let mut rt = self.inner.borrow_mut();
            rt.glitched.remove(&d);
        }
        self.set_disk_power(sim, d, false);
        let this = self.clone();
        sim.schedule_in(Duration::from_millis(500), move |sim| {
            this.set_disk_power(sim, d, true);
        });
    }

    // ---- Power -----------------------------------------------------------------

    /// Sets a disk's 12 V relay; powering off detaches it from USB.
    pub fn set_disk_power(&self, sim: &Sim, d: DiskId, on: bool) {
        let (host, disk) = {
            let mut rt = self.inner.borrow_mut();
            rt.relays.set_disk(d, on);
            (rt.state.attached_host(d), rt.disks[&d].clone())
        };
        if on {
            disk.power_on(sim);
            if let Some(host) = host {
                let rt = self.inner.borrow();
                let topo = rt.state.topology();
                let up = topo.disk_upstream(d).expect("disk exists");
                let parent = match rt.state.usb_parent(up) {
                    Some(UpRef::Hub(p)) => Some(hub_dev(p)),
                    _ => None,
                };
                let h = rt.hosts[&host].clone();
                drop(rt);
                h.attach(
                    sim,
                    DeviceDesc {
                        id: disk_dev(d),
                        kind: DeviceKind::Storage,
                        parent,
                    },
                );
            }
        } else {
            disk.power_off(sim);
            if let Some(host) = host {
                let h = self.inner.borrow().hosts[&host].clone();
                h.detach(sim, disk_dev(d));
            }
        }
    }

    /// Sets a hub's relay; powering off detaches its whole subtree.
    pub fn set_hub_power(&self, sim: &Sim, hub: HubId, on: bool) {
        let host = {
            let mut rt = self.inner.borrow_mut();
            rt.relays.set_hub(hub, on);
            rt.state.hub_host(hub)
        };
        let Some(host) = host else { return };
        let h = self.inner.borrow().hosts[&host].clone();
        if on {
            // Re-attach the hub and everything below it.
            let plan = {
                let rt = self.inner.borrow();
                self.attach_plan(&rt)
            };
            for (ph, desc) in plan {
                if h.device_state(desc.id).is_none() && ph == host {
                    self.inner.borrow().hosts[&ph].clone().attach(sim, desc);
                }
            }
        } else {
            h.detach(sim, hub_dev(hub));
        }
    }

    /// Spins every disk's rail up with `stagger` between starts — the
    /// rolling spin-up of §III-B.
    pub fn rolling_spin_up(&self, sim: &Sim, stagger: Duration) {
        let ids = self.disk_ids();
        for (i, d) in ids.into_iter().enumerate() {
            let this = self.clone();
            sim.schedule_in(stagger * i as u32, move |sim| {
                this.set_disk_power(sim, d, true);
            });
        }
    }

    /// Cuts power to every disk.
    pub fn power_off_all_disks(&self, sim: &Sim) {
        for d in self.disk_ids() {
            self.set_disk_power(sim, d, false);
        }
    }

    /// Interconnect power draw: powered hubs (Table IV model, port count =
    /// powered devices below) plus the always-tiny switches.
    pub fn fabric_power_w(&self) -> f64 {
        let rt = self.inner.borrow();
        let topo = rt.state.topology();
        let profile = &rt.config.usb_profile;
        let mut total = topo.switches().count() as f64 * profile.switch_power;
        for hub in topo.hubs() {
            if !rt.relays.hub_on(hub) {
                continue;
            }
            // Count powered devices whose USB parent is this hub.
            let mut ports = 0;
            for d in topo.disks() {
                if rt.relays.disk_on(d) {
                    let up = topo.disk_upstream(d).expect("disk exists");
                    if rt.state.usb_parent(up) == Some(UpRef::Hub(hub)) {
                        ports += 1;
                    }
                }
            }
            for other in topo.hubs() {
                if other != hub && rt.relays.hub_on(other) {
                    let up = topo.hub_upstream(other).expect("hub exists");
                    if rt.state.usb_parent(up) == Some(UpRef::Hub(hub)) {
                        ports += 1;
                    }
                }
            }
            total += profile.hub_power(ports);
        }
        total
    }

    /// Total unit power: interconnect + every disk (drive + bridge).
    pub fn unit_power_w(&self) -> f64 {
        let fabric = self.fabric_power_w();
        let rt = self.inner.borrow();
        fabric + rt.disks.values().map(Disk::watts_now).sum::<f64>()
    }

    /// Publishes every disk's power-state residency and energy gauges into
    /// the metrics registry (one set per disk, under the disk's name).
    pub fn publish_residency(&self, sim: &Sim) {
        let disks: Vec<Disk> = self.inner.borrow().disks.values().cloned().collect();
        for d in disks {
            d.publish_residency(sim);
        }
    }

    // ---- IO ---------------------------------------------------------------------

    /// Reads from a fabric-attached disk: the drive's service and the USB
    /// transfer overlap; completion is the later of the two.
    pub fn read(
        &self,
        sim: &Sim,
        d: DiskId,
        offset: u64,
        len: u64,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, FabricIoError>) + 'static,
    ) {
        let (host, disk) = match self.io_route(d) {
            Ok(r) => r,
            Err(e) => {
                sim.schedule_now(move |sim| cb(sim, Err(e)));
                return;
            }
        };
        let join = Join::new(cb);
        let j1 = join.clone();
        disk.read(sim, offset, len, move |sim, r| {
            j1.disk_done(sim, r.map_err(FabricIoError::Disk));
        });
        let j2 = join.clone();
        host.transfer(sim, disk_dev(d), BusDir::In, len, move |sim, r| {
            j2.bus_done(sim, r.is_ok());
        });
    }

    /// Writes to a fabric-attached disk.
    pub fn write(
        &self,
        sim: &Sim,
        d: DiskId,
        offset: u64,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, FabricIoError>) + 'static,
    ) {
        let (host, disk) = match self.io_route(d) {
            Ok(r) => r,
            Err(e) => {
                sim.schedule_now(move |sim| cb(sim, Err(e)));
                return;
            }
        };
        let len = data.len() as u64;
        let join = Join::new(cb);
        let j1 = join.clone();
        disk.write(sim, offset, data, move |sim, r| {
            j1.disk_done(sim, r.map(|()| Vec::new()).map_err(FabricIoError::Disk));
        });
        let j2 = join.clone();
        host.transfer(sim, disk_dev(d), BusDir::Out, len, move |sim, r| {
            j2.bus_done(sim, r.is_ok());
        });
    }

    fn io_route(&self, d: DiskId) -> Result<(UsbHost, Disk), FabricIoError> {
        let rt = self.inner.borrow();
        let host = rt
            .state
            .attached_host(d)
            .ok_or(FabricIoError::NotAttached)?;
        let usb = rt.hosts[&host].clone();
        if !matches!(usb.device_state(disk_dev(d)), Some(DeviceState::Ready)) {
            return Err(FabricIoError::NotReady);
        }
        let disk = rt.disks[&d].clone();
        Ok((usb, disk))
    }
}

/// A handle to one fabric-attached disk: the view upper layers (the
/// EndPoint's iSCSI targets) get of UStore storage.
#[derive(Clone)]
pub struct FabricDisk {
    runtime: FabricRuntime,
    id: DiskId,
}

impl fmt::Debug for FabricDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FabricDisk").field("id", &self.id).finish()
    }
}

impl FabricDisk {
    /// Creates a handle to `id` on `runtime`.
    pub fn new(runtime: FabricRuntime, id: DiskId) -> Self {
        FabricDisk { runtime, id }
    }

    /// The fabric disk id.
    pub fn id(&self) -> DiskId {
        self.id
    }

    /// The drive's capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.runtime.disk(self.id).capacity()
    }

    /// The host currently serving this disk, if any.
    pub fn attached_host(&self) -> Option<HostId> {
        self.runtime.attached_host(self.id)
    }

    /// Reads `len` bytes at `offset` through the fabric.
    pub fn read(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, FabricIoError>) + 'static,
    ) {
        self.runtime.read(sim, self.id, offset, len, cb);
    }

    /// Writes `data` at `offset` through the fabric.
    pub fn write(
        &self,
        sim: &Sim,
        offset: u64,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, Result<(), FabricIoError>) + 'static,
    ) {
        self.runtime
            .write(sim, self.id, offset, data, move |sim, r| {
                cb(sim, r.map(|_| ()))
            });
    }
}

/// Joins a disk completion with a bus completion, calling the user
/// callback once both finished (with the disk's result).
struct JoinInner {
    remaining: u8,
    result: Option<Result<Vec<u8>, FabricIoError>>,
    cb: Option<Box<dyn FnOnce(&Sim, Result<Vec<u8>, FabricIoError>)>>,
}

#[derive(Clone)]
struct Join {
    inner: Rc<RefCell<JoinInner>>,
}

impl Join {
    fn new(cb: impl FnOnce(&Sim, Result<Vec<u8>, FabricIoError>) + 'static) -> Self {
        Join {
            inner: Rc::new(RefCell::new(JoinInner {
                remaining: 2,
                result: None,
                cb: Some(Box::new(cb)),
            })),
        }
    }

    fn disk_done(&self, sim: &Sim, r: Result<Vec<u8>, FabricIoError>) {
        {
            let mut j = self.inner.borrow_mut();
            j.result = Some(r);
            j.remaining -= 1;
        }
        self.maybe_finish(sim);
    }

    fn bus_done(&self, sim: &Sim, ok: bool) {
        {
            let mut j = self.inner.borrow_mut();
            j.remaining -= 1;
            if !ok && j.result.is_none() {
                j.result = Some(Err(FabricIoError::NotReady));
            }
        }
        self.maybe_finish(sim);
    }

    fn maybe_finish(&self, sim: &Sim) {
        let ready = {
            let j = self.inner.borrow();
            j.remaining == 0 && j.result.is_some() && j.cb.is_some()
        };
        if ready {
            let (cb, r) = {
                let mut j = self.inner.borrow_mut();
                (
                    j.cb.take().expect("cb present"),
                    j.result.take().expect("result present"),
                )
            };
            cb(sim, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn settled(sim: &Sim, rt: &FabricRuntime) {
        // Initial enumeration: 4-5 devices per host, serialized.
        sim.run_until(sim.now() + Duration::from_secs(10));
        for d in rt.disk_ids() {
            assert!(rt.disk_ready(d), "{d} ready after bring-up");
        }
    }

    #[test]
    fn bring_up_enumerates_everything() {
        let sim = Sim::new(31);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        // Each host sees 2 hubs (host tree root + leaf) + 4 disks.
        for h in rt.host_ids() {
            let snap = rt.usb_host(h).snapshot();
            let disks = snap
                .iter()
                .filter(|n| n.kind == DeviceKind::Storage)
                .count();
            assert_eq!(disks, 4, "host {h}");
        }
    }

    #[test]
    fn io_roundtrip_through_fabric() {
        let sim = Sim::new(32);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let fd = FabricDisk::new(rt.clone(), DiskId(3));
        let fd2 = fd.clone();
        fd.write(&sim, 4096, b"cold archive".to_vec(), move |sim, r| {
            r.expect("write");
            fd2.read(sim, 4096, 12, move |_, r| {
                assert_eq!(r.expect("read"), b"cold archive".to_vec());
                d.set(true);
            });
        });
        sim.run_until(sim.now() + Duration::from_secs(2));
        assert!(done.get());
        assert!(fd.capacity() > 2_000_000_000_000);
    }

    #[test]
    fn execute_moves_group_and_verifies() {
        let sim = Sim::new(33);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let t0 = sim.now();
        let outcome = Rc::new(Cell::new(None));
        let o = outcome.clone();
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(1))).collect();
        rt.execute(&sim, pairs, move |sim, r| {
            r.expect("reconfiguration");
            o.set(Some(sim.now()));
        });
        sim.run_until(sim.now() + Duration::from_secs(20));
        let done_at = outcome.get().expect("executed");
        for d in 0..4u32 {
            assert_eq!(rt.attached_host(DiskId(d)), Some(HostId(1)));
            assert!(rt.disk_ready(DiskId(d)));
        }
        // Part-1 switching time: debounce + 4 serialized enumerations +
        // driver probe, plus actuation and verify polling.
        let elapsed = done_at - t0;
        assert!(
            elapsed > Duration::from_secs(2) && elapsed < Duration::from_secs(5),
            "switch time {elapsed:?}"
        );
        // Host 1 now serves 8 disks.
        let snap = rt.usb_host(HostId(1)).snapshot();
        assert_eq!(
            snap.iter()
                .filter(|n| n.kind == DeviceKind::Storage)
                .count(),
            8
        );
        // Host 0 serves none.
        let snap0 = rt.usb_host(HostId(0)).snapshot();
        assert_eq!(
            snap0
                .iter()
                .filter(|n| n.kind == DeviceKind::Storage)
                .count(),
            0
        );
    }

    #[test]
    fn execute_emits_span_tree_and_metrics() {
        let sim = Sim::new(41);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(1))).collect();
        rt.execute(&sim, pairs, |_, r| r.expect("reconfiguration"));
        sim.run_until(sim.now() + Duration::from_secs(20));
        sim.with_spans(|t| {
            let exec = t.by_name("fabric.execute").next().expect("execute span").id;
            let kids: Vec<&str> = t.children(exec).map(|s| &*s.name).collect();
            assert_eq!(kids, ["fabric.lock", "fabric.actuate", "fabric.verify"]);
            // The §IV-C ordering, asserted causally: the fabric is locked
            // before any switch turns, and turning precedes verification.
            assert!(t.all_before("fabric.lock", "fabric.actuate"));
            assert!(t.all_before("fabric.actuate", "fabric.verify"));
            for s in t.spans() {
                assert!(!s.is_open(), "span {} left open", s.name);
            }
        });
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("fabric", "fabric.commands"), 1);
        assert!(m.counter("fabric", "fabric.switch_flips") >= 1);
        let h = m
            .histogram("fabric", "fabric.reconfig_latency_ns")
            .expect("latency histogram");
        assert_eq!(h.count(), 1);
        rt.publish_residency(&sim);
        let m = sim.metrics_snapshot();
        assert!(
            m.gauge("disk0", "power.residency.idle_s").is_some(),
            "residency gauges published"
        );
    }

    #[test]
    fn conflicting_command_is_rejected() {
        let sim = Sim::new(34);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        rt.execute(&sim, vec![(DiskId(0), HostId(1))], move |_, r| {
            assert!(matches!(r.unwrap_err(), FabricError::Schedule(_)));
            g.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(1));
        assert!(got.get());
    }

    #[test]
    fn fabric_lock_rejects_concurrent_commands() {
        let sim = Sim::new(35);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(1))).collect();
        rt.execute(&sim, pairs.clone(), |_, r| r.expect("first command"));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        let pairs2: Vec<(DiskId, HostId)> = (4..8).map(|d| (DiskId(d), HostId(2))).collect();
        rt.execute(&sim, pairs2, move |_, r| {
            assert_eq!(r.unwrap_err(), FabricError::Busy);
            g.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(20));
        assert!(got.get());
    }

    #[test]
    fn host_failure_then_reconfigure_through_backup_mc() {
        let sim = Sim::new(36);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        // Host 0 hosts the active microcontroller; kill it.
        rt.host_failed(&sim, HostId(0));
        assert_eq!(rt.attached_host(DiskId(0)), None);
        // Move its disks to host 2 via the backup microcontroller.
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(2))).collect();
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        rt.execute(&sim, pairs, move |_, r| {
            r.expect("failover reconfiguration");
            o.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(20));
        assert!(ok.get());
        for d in 0..4u32 {
            assert_eq!(rt.attached_host(DiskId(d)), Some(HostId(2)));
            assert!(rt.disk_ready(DiskId(d)));
        }
    }

    #[test]
    fn glitched_switch_rolls_back_then_power_cycle_recovers() {
        let sim = Sim::new(37);
        let (t, cfg) = Topology::upper_switched(4, 16, 4);
        let config = RuntimeConfig {
            verify_timeout: Duration::from_secs(8),
            ..RuntimeConfig::default()
        };
        let rt = FabricRuntime::new(&sim, t, cfg, config);
        settled(&sim, &rt);
        rt.inject_switch_glitch(DiskId(2));
        let pairs: Vec<(DiskId, HostId)> = (0..4).map(|d| (DiskId(d), HostId(1))).collect();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        rt.execute(&sim, pairs, move |_, r| {
            match r.unwrap_err() {
                FabricError::VerifyTimeout { missing } => assert_eq!(missing, vec![DiskId(2)]),
                other => panic!("expected verify timeout, got {other:?}"),
            }
            g.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(30));
        assert!(got.get(), "rollback happened");
        // Rolled back: disks 0,1,3 back on host 0 and ready; 2 still dark.
        for d in [0u32, 1, 3] {
            assert_eq!(rt.attached_host(DiskId(d)), Some(HostId(0)));
        }
        assert!(!rt.disk_ready(DiskId(2)));
        // The paper's workaround: power cycle the device.
        rt.power_cycle_disk(&sim, DiskId(2));
        sim.run_until(sim.now() + Duration::from_secs(15));
        assert!(rt.disk_ready(DiskId(2)), "recovered after power cycle");
    }

    #[test]
    fn power_accounting_tracks_states() {
        let sim = Sim::new(38);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        let all_on = rt.unit_power_w();
        // 16 idle disks at 5.76 W (Table III) plus fabric.
        assert!(
            all_on > 16.0 * 5.76 && all_on < 16.0 * 5.76 + 20.0,
            "{all_on}"
        );
        rt.power_off_all_disks(&sim);
        sim.run_until(sim.now() + Duration::from_secs(1));
        let all_off = rt.unit_power_w();
        assert!(
            all_off < 8.0,
            "disks off leaves only hubs+switches: {all_off}"
        );
        // Hubs can be cut too (§IV-F).
        for h in rt.with_state(|s| s.topology().hubs().collect::<Vec<_>>()) {
            rt.set_hub_power(&sim, h, false);
        }
        let dark = rt.unit_power_w();
        assert!(dark < 1.0, "only switches remain: {dark}");
    }

    #[test]
    fn rolling_spin_up_limits_peak_power() {
        let sim = Sim::new(39);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        rt.power_off_all_disks(&sim);
        sim.run_until(sim.now() + Duration::from_secs(5));
        // Simultaneous spin-up peak: sample while all 16 draw spin-up power.
        let peak = Rc::new(Cell::new(0.0f64));
        let p = peak.clone();
        let rt2 = rt.clone();
        sim.every(
            Duration::from_millis(100),
            Duration::from_millis(100),
            move |_| {
                p.set(p.get().max(rt2.unit_power_w()));
            },
        );
        rt.rolling_spin_up(&sim, Duration::from_secs(2));
        sim.run_until(sim.now() + Duration::from_secs(60));
        // With 2 s stagger and 7 s spin-up, at most 4 disks spin at once:
        // well under the 16 * 24 W = 384 W simultaneous worst case.
        assert!(peak.get() < 230.0, "peak {}", peak.get());
        for d in rt.disk_ids() {
            assert!(rt.disk_ready(d), "{d} ready after rolling spin-up");
        }
    }

    #[test]
    fn io_on_detached_disk_errors() {
        let sim = Sim::new(40);
        let rt = FabricRuntime::prototype(&sim);
        settled(&sim, &rt);
        rt.host_failed(&sim, HostId(3));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        rt.read(&sim, DiskId(12), 0, 512, move |_, r| {
            assert_eq!(r.unwrap_err(), FabricIoError::NotAttached);
            g.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(1));
        assert!(got.get());
    }
}
