//! Per-device energy accounting.
//!
//! [`EnergyMeter`] integrates a device's power draw over virtual time as it
//! moves between coarse power states. It is the measurement backend for the
//! paper's power experiments (Tables III–V): the experiment harness reads
//! average watts over a window exactly like the authors' wattmeter.

use std::time::Duration;

use ustore_sim::SimTime;

use crate::profile::PowerStateKind;

const STATES: [PowerStateKind; 5] = [
    PowerStateKind::PoweredOff,
    PowerStateKind::Standby,
    PowerStateKind::Idle,
    PowerStateKind::Active,
    PowerStateKind::SpinningUp,
];

fn idx(s: PowerStateKind) -> usize {
    STATES.iter().position(|&x| x == s).expect("known state")
}

/// Integrates energy across power-state transitions.
///
/// # Examples
///
/// ```
/// use ustore_sim::SimTime;
/// use ustore_disk::{EnergyMeter, PowerStateKind};
///
/// let mut m = EnergyMeter::new(SimTime::ZERO, PowerStateKind::Idle, |s| match s {
///     PowerStateKind::Idle => 5.0,
///     PowerStateKind::Active => 7.0,
///     _ => 0.0,
/// });
/// m.transition(SimTime::from_secs(10), PowerStateKind::Active);
/// m.sync(SimTime::from_secs(20));
/// assert!((m.total_joules() - (5.0 * 10.0 + 7.0 * 10.0)).abs() < 1e-9);
/// assert!((m.average_watts(SimTime::ZERO, SimTime::from_secs(20)) - 6.0).abs() < 1e-9);
/// ```
pub struct EnergyMeter {
    state: PowerStateKind,
    since: SimTime,
    joules: [f64; 5],
    time_in: [Duration; 5],
    power_of: Box<dyn Fn(PowerStateKind) -> f64>,
}

impl std::fmt::Debug for EnergyMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergyMeter")
            .field("state", &self.state)
            .field("since", &self.since)
            .field("total_joules", &self.total_joules())
            .finish()
    }
}

impl EnergyMeter {
    /// Creates a meter in `initial` state at `now`, with `power_of` mapping
    /// states to watts.
    pub fn new(
        now: SimTime,
        initial: PowerStateKind,
        power_of: impl Fn(PowerStateKind) -> f64 + 'static,
    ) -> Self {
        EnergyMeter {
            state: initial,
            since: now,
            joules: [0.0; 5],
            time_in: [Duration::ZERO; 5],
            power_of: Box::new(power_of),
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerStateKind {
        self.state
    }

    /// Instantaneous power draw, watts.
    pub fn watts_now(&self) -> f64 {
        (self.power_of)(self.state)
    }

    /// Accumulates energy up to `now` without changing state.
    pub fn sync(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.since);
        let i = idx(self.state);
        self.joules[i] += (self.power_of)(self.state) * dt.as_secs_f64();
        self.time_in[i] += dt;
        self.since = now;
    }

    /// Moves to `state` at `now`, accumulating energy for the elapsed span.
    pub fn transition(&mut self, now: SimTime, state: PowerStateKind) {
        self.sync(now);
        self.state = state;
    }

    /// Total energy consumed so far, joules.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Energy consumed in one state, joules.
    pub fn joules_in(&self, state: PowerStateKind) -> f64 {
        self.joules[idx(state)]
    }

    /// Time spent in one state.
    pub fn time_in(&self, state: PowerStateKind) -> Duration {
        self.time_in[idx(state)]
    }

    /// Average power over `[from, to]`, assuming the meter was synced at or
    /// after `to` and `from` is the instant the meter started (or any
    /// instant if only totals matter).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn average_watts(&self, from: SimTime, to: SimTime) -> f64 {
        let w = to.duration_since(from);
        assert!(w > Duration::ZERO, "average_watts: empty window");
        self.total_joules() / w.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(SimTime::ZERO, PowerStateKind::PoweredOff, |s| match s {
            PowerStateKind::PoweredOff => 0.0,
            PowerStateKind::Standby => 1.0,
            PowerStateKind::Idle => 5.0,
            PowerStateKind::Active => 7.0,
            PowerStateKind::SpinningUp => 24.0,
        })
    }

    #[test]
    fn integrates_across_states() {
        let mut m = meter();
        m.transition(SimTime::from_secs(10), PowerStateKind::SpinningUp); // 10s off = 0 J
        m.transition(SimTime::from_secs(17), PowerStateKind::Idle); // 7s spinup = 168 J
        m.transition(SimTime::from_secs(27), PowerStateKind::Active); // 10s idle = 50 J
        m.sync(SimTime::from_secs(37)); // 10s active = 70 J
        assert!((m.total_joules() - 288.0).abs() < 1e-9);
        assert!((m.joules_in(PowerStateKind::SpinningUp) - 168.0).abs() < 1e-9);
        assert_eq!(m.time_in(PowerStateKind::Idle), Duration::from_secs(10));
        assert_eq!(m.state(), PowerStateKind::Active);
        assert_eq!(m.watts_now(), 7.0);
    }

    #[test]
    fn sync_is_idempotent_at_same_instant() {
        let mut m = meter();
        m.transition(SimTime::from_secs(1), PowerStateKind::Idle);
        m.sync(SimTime::from_secs(2));
        let j = m.total_joules();
        m.sync(SimTime::from_secs(2));
        assert_eq!(m.total_joules(), j);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        meter().average_watts(SimTime::ZERO, SimTime::ZERO);
    }
}
