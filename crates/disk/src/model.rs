//! Pure service-time model of one disk.
//!
//! [`IoModel::service_time`] maps an IO command to the time the drive (plus
//! its attachment) takes to complete it, given the stream history. It is a
//! pure, engine-independent function so that the calibration against the
//! paper's Table II can be unit-tested directly; the DES wrapper in
//! [`crate::disk`] layers queueing, power states and data storage on top.
//!
//! The model distinguishes two regimes, as the measurements do:
//!
//! - **Sequential** commands (starting exactly where the previous command
//!   ended) are absorbed by the drive's read-ahead / write-back cache: cost
//!   = per-command overhead + media streaming time, plus a turnaround
//!   penalty when the stream flips direction (drained write-back cache).
//! - **Random** commands pay mechanical positioning: a short-stroke seek
//!   (distance-dependent), half a rotation, a write-settle penalty for
//!   writes, and an attachment-dependent per-byte streaming surcharge.

use std::time::Duration;

use crate::profile::{Direction, DiskProfile};

/// Per-stream history the model needs to classify and price a command.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    /// Byte offset one past the end of the previous command, if any.
    next_offset: Option<u64>,
    /// Byte offset where the previous command started (for seek distance).
    last_offset: u64,
    /// Direction of the previous command, if any.
    last_dir: Option<Direction>,
    /// Media time of the most recent write (for the destage penalty).
    last_write_media: Duration,
}

/// Cost breakdown of one serviced command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Host + link + controller per-command overhead.
    pub overhead: Duration,
    /// Seek + rotation + settle + streaming surcharge (zero when cached).
    pub positioning: Duration,
    /// Time streaming payload off/onto the platters.
    pub media: Duration,
    /// Direction-change turnaround penalty.
    pub turnaround: Duration,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total(&self) -> Duration {
        self.overhead + self.positioning + self.media + self.turnaround
    }
}

/// The service-time model for one disk.
#[derive(Debug, Clone)]
pub struct IoModel {
    profile: DiskProfile,
    state: StreamState,
}

impl IoModel {
    /// Creates a model for the given profile with no stream history.
    pub fn new(profile: DiskProfile) -> Self {
        IoModel {
            profile,
            state: StreamState::default(),
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Media rate (bytes/s) at a byte offset, accounting for zoning: outer
    /// tracks stream faster than inner tracks.
    pub fn media_rate(&self, offset: u64, dir: Direction) -> f64 {
        let m = &self.profile.mech;
        let outer = match dir {
            Direction::Read => m.media_rate_read_outer,
            Direction::Write => m.media_rate_write_outer,
        };
        let frac = (offset as f64 / m.capacity_bytes as f64).clamp(0.0, 1.0);
        outer * (1.0 - (1.0 - m.inner_rate_frac) * frac)
    }

    /// Seek time for a head movement across `dist` bytes of LBA span.
    pub fn seek_time(&self, dist: u64) -> Duration {
        let m = &self.profile.mech;
        if dist == 0 {
            return Duration::ZERO;
        }
        let frac = (dist as f64 / m.capacity_bytes as f64).clamp(0.0, 1.0);
        m.seek_base + Duration::from_secs_f64(m.seek_full_extra.as_secs_f64() * frac.sqrt())
    }

    /// Average rotational wait: half a revolution.
    pub fn rotation_half(&self) -> Duration {
        Duration::from_secs_f64(60.0 / f64::from(self.profile.mech.rpm) / 2.0)
    }

    /// Prices one command and updates the stream history.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the command exceeds the disk capacity.
    pub fn service(&mut self, offset: u64, len: u64, dir: Direction) -> ServiceBreakdown {
        assert!(len > 0, "service: zero-length command");
        assert!(
            offset.saturating_add(len) <= self.profile.mech.capacity_bytes,
            "service: command beyond capacity"
        );
        let a = &self.profile.attach;
        let sequential = self.state.next_offset == Some(offset);
        let dir_changed = self.state.last_dir.is_some_and(|d| d != dir);
        let media = Duration::from_secs_f64(len as f64 / self.media_rate(offset, dir));

        let overhead = match dir {
            Direction::Read => a.overhead_read,
            Direction::Write => a.overhead_write,
        };

        let (positioning, turnaround) = if sequential {
            // Cache-absorbed: only a turnaround penalty when the stream
            // flips, dominated by draining the write-back cache on W->R.
            let turn = if dir_changed && dir == Direction::Read {
                a.seq_turnaround
                    + Duration::from_secs_f64(
                        a.seq_destage_factor * self.state.last_write_media.as_secs_f64(),
                    )
            } else {
                Duration::ZERO
            };
            (Duration::ZERO, turn)
        } else {
            let dist = offset.abs_diff(self.state.last_offset);
            let per_byte_ns = match dir {
                Direction::Read => a.stream_cost_read_ns_per_byte,
                Direction::Write => a.stream_cost_write_ns_per_byte,
            };
            let mut pos = self.seek_time(dist)
                + self.rotation_half()
                + Duration::from_nanos((per_byte_ns * len as f64) as u64);
            if dir == Direction::Write {
                pos += self.profile.mech.write_settle;
            }
            let turn = if dir_changed {
                a.rand_turnaround
            } else {
                Duration::ZERO
            };
            (pos, turn)
        };

        self.state.next_offset = Some(offset + len);
        self.state.last_offset = offset;
        self.state.last_dir = Some(dir);
        if dir == Direction::Write {
            self.state.last_write_media = media;
        }

        ServiceBreakdown {
            overhead,
            positioning,
            media,
            turnaround,
        }
    }

    /// Forgets stream history (e.g. after a power cycle).
    pub fn reset_stream(&mut self) {
        self.state = StreamState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Direction::{Read, Write};

    const KIB4: u64 = 4 * 1024;
    const MIB4: u64 = 4 * 1024 * 1024;
    /// Iometer-style 8 GiB test region at the start of the disk.
    const REGION: u64 = 8 * 1024 * 1024 * 1024;

    /// Runs `n` ops through the model and reports (IO/s, MB/s) like Iometer.
    fn run(
        model: &mut IoModel,
        n: usize,
        len: u64,
        random: bool,
        dir_of: impl Fn(usize) -> Direction,
    ) -> (f64, f64) {
        // Deterministic low-discrepancy offsets for the random pattern.
        let mut total = Duration::ZERO;
        let mut seq_off = 0u64;
        let mut x = 0x9E37_79B9u64;
        for i in 0..n {
            let off = if random {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (x % (REGION / len)) * len
            } else {
                let o = seq_off;
                seq_off += len;
                o
            };
            total += model.service(off, len, dir_of(i)).total();
        }
        let secs = total.as_secs_f64();
        (n as f64 / secs, n as f64 * len as f64 / 1e6 / secs)
    }

    fn all_read(_: usize) -> Direction {
        Read
    }
    fn all_write(_: usize) -> Direction {
        Write
    }
    /// 50% mix with W->R transition frequency 0.25 (random-mix statistics).
    fn rrww(i: usize) -> Direction {
        if i % 4 < 2 {
            Read
        } else {
            Write
        }
    }

    fn assert_close(measured: f64, paper: f64, tol_frac: f64, what: &str) {
        let err = (measured - paper).abs() / paper;
        assert!(
            err <= tol_frac,
            "{what}: model {measured:.1} vs paper {paper:.1} ({:+.1}%)",
            100.0 * (measured - paper) / paper
        );
    }

    // ---- Table II, SATA row -------------------------------------------

    #[test]
    fn table2_sata_4k_seq() {
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 4000, KIB4, false, all_read);
        assert_close(iops, 13378.0, 0.03, "SATA 4K seq 100% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 4000, KIB4, false, all_write);
        assert_close(iops, 11211.0, 0.03, "SATA 4K seq 0% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 4000, KIB4, false, rrww);
        assert_close(iops, 8066.0, 0.05, "SATA 4K seq 50% read");
    }

    #[test]
    fn table2_sata_4k_rand() {
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 2000, KIB4, true, all_read);
        assert_close(iops, 191.9, 0.05, "SATA 4K rand 100% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 2000, KIB4, true, all_write);
        assert_close(iops, 86.9, 0.05, "SATA 4K rand 0% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (iops, _) = run(&mut m, 2000, KIB4, true, rrww);
        assert_close(iops, 105.4, 0.08, "SATA 4K rand 50% read");
    }

    #[test]
    fn table2_sata_4m_seq() {
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, false, all_read);
        assert_close(mbs, 184.8, 0.03, "SATA 4M seq 100% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, false, all_write);
        assert_close(mbs, 180.2, 0.03, "SATA 4M seq 0% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, false, rrww);
        assert_close(mbs, 105.7, 0.05, "SATA 4M seq 50% read");
    }

    #[test]
    fn table2_sata_4m_rand() {
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, true, all_read);
        assert_close(mbs, 129.1, 0.05, "SATA 4M rand 100% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, true, all_write);
        assert_close(mbs, 57.5, 0.05, "SATA 4M rand 0% read");
        let mut m = IoModel::new(DiskProfile::sata());
        let (_, mbs) = run(&mut m, 400, MIB4, true, rrww);
        assert_close(mbs, 78.7, 0.08, "SATA 4M rand 50% read");
    }

    // ---- Table II, USB row --------------------------------------------

    #[test]
    fn table2_usb_4k_seq() {
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 4000, KIB4, false, all_read);
        assert_close(iops, 5380.0, 0.03, "USB 4K seq 100% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 4000, KIB4, false, all_write);
        assert_close(iops, 6166.0, 0.03, "USB 4K seq 0% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 4000, KIB4, false, rrww);
        assert_close(iops, 4294.0, 0.05, "USB 4K seq 50% read");
    }

    #[test]
    fn table2_usb_4k_rand() {
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 2000, KIB4, true, all_read);
        assert_close(iops, 189.0, 0.05, "USB 4K rand 100% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 2000, KIB4, true, all_write);
        assert_close(iops, 85.2, 0.05, "USB 4K rand 0% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (iops, _) = run(&mut m, 2000, KIB4, true, rrww);
        assert_close(iops, 105.2, 0.10, "USB 4K rand 50% read");
    }

    #[test]
    fn table2_usb_4m_seq() {
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, false, all_read);
        assert_close(mbs, 185.8, 0.03, "USB 4M seq 100% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, false, all_write);
        assert_close(mbs, 184.0, 0.03, "USB 4M seq 0% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, false, rrww);
        assert_close(mbs, 119.7, 0.05, "USB 4M seq 50% read");
    }

    #[test]
    fn table2_usb_4m_rand() {
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, true, all_read);
        assert_close(mbs, 147.9, 0.05, "USB 4M rand 100% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, true, all_write);
        assert_close(mbs, 79.3, 0.05, "USB 4M rand 0% read");
        let mut m = IoModel::new(DiskProfile::usb_bridge());
        let (_, mbs) = run(&mut m, 400, MIB4, true, rrww);
        assert_close(mbs, 95.5, 0.10, "USB 4M rand 50% read");
    }

    // ---- Structural properties ----------------------------------------

    #[test]
    fn sequential_reads_cost_less_than_random() {
        let mut m = IoModel::new(DiskProfile::sata());
        m.service(0, KIB4, Read);
        let seq = m.service(KIB4, KIB4, Read).total();
        let rand = m.service(REGION / 2, KIB4, Read).total();
        assert!(seq < rand / 10);
    }

    #[test]
    fn inner_zone_is_slower() {
        let m = IoModel::new(DiskProfile::sata());
        let outer = m.media_rate(0, Read);
        let inner = m.media_rate(m.profile().mech.capacity_bytes - 1, Read);
        assert!((inner / outer - 0.55).abs() < 0.01);
    }

    #[test]
    fn seek_grows_with_distance() {
        let m = IoModel::new(DiskProfile::sata());
        assert_eq!(m.seek_time(0), Duration::ZERO);
        let near = m.seek_time(1 << 20);
        let far = m.seek_time(m.profile().mech.capacity_bytes / 2);
        assert!(near < far);
        assert!(far < Duration::from_millis(10));
    }

    #[test]
    fn full_stroke_random_is_slower_than_short_stroke() {
        // Full-disk random 4K reads should be clearly slower than the 8 GiB
        // short-stroke region the paper tests (the model must extrapolate).
        let mut short = IoModel::new(DiskProfile::sata());
        let mut t_short = Duration::ZERO;
        let mut t_full = Duration::ZERO;
        let mut full = IoModel::new(DiskProfile::sata());
        let cap = full.profile().mech.capacity_bytes;
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            t_short += short
                .service((x % (REGION / KIB4)) * KIB4, KIB4, Read)
                .total();
            t_full += full
                .service(
                    (x % (cap / KIB4 / 2)) * KIB4 * 2 / 2 * 2 % (cap - KIB4),
                    KIB4,
                    Read,
                )
                .total();
        }
        assert!(
            t_full > t_short * 3 / 2,
            "full {t_full:?} short {t_short:?}"
        );
    }

    #[test]
    fn reset_stream_forgets_sequentiality() {
        let mut m = IoModel::new(DiskProfile::sata());
        m.service(0, KIB4, Read);
        m.reset_stream();
        let b = m.service(KIB4, KIB4, Read);
        assert!(b.positioning > Duration::ZERO, "should be priced as random");
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_panics() {
        IoModel::new(DiskProfile::sata()).service(0, 0, Read);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn beyond_capacity_panics() {
        let mut m = IoModel::new(DiskProfile::sata());
        let cap = m.profile().mech.capacity_bytes;
        m.service(cap - 1, 2, Read);
    }
}
