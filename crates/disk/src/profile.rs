//! Disk and attachment parameter profiles.
//!
//! All constants are calibrated against the UStore paper's own single-disk
//! measurements (Table II for performance, Table III for power), taken on a
//! Toshiba DT01ACA300 3 TB 7200 rpm drive. The mechanical profile describes
//! the drive itself; the [`AttachProfile`] describes how the host reaches it
//! (direct SATA vs. a SATA↔USB 3.0 bridge), which in the paper only changes
//! per-command overheads and power draw — the mechanics are the same drive.

use std::time::Duration;

/// Transfer direction of an IO command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host reads from the medium.
    Read,
    /// Host writes to the medium.
    Write,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Read => Direction::Write,
            Direction::Write => Direction::Read,
        }
    }
}

/// Mechanical / drive-internal parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MechProfile {
    /// Marketing name, e.g. `"DT01ACA300"`.
    pub name: &'static str,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Fixed head-settle component of every seek.
    pub seek_base: Duration,
    /// Additional full-stroke seek time; a seek across fraction `f` of the
    /// LBA span costs `seek_base + seek_full_extra * sqrt(f)`.
    pub seek_full_extra: Duration,
    /// Sustained media read rate at the outermost zone (bytes/s).
    pub media_rate_read_outer: f64,
    /// Sustained media write rate at the outermost zone (bytes/s).
    pub media_rate_write_outer: f64,
    /// Innermost-zone rate as a fraction of the outermost.
    pub inner_rate_frac: f64,
    /// Extra per-command settle applied to random writes (write-cache
    /// disabled verification behaviour observed in Table II).
    pub write_settle: Duration,
    /// Time from power-on (or standby exit) until the spindle serves IO.
    pub spin_up: Duration,
    /// Time to flush and stop the spindle on a spin-down request.
    pub spin_down: Duration,
    /// Power in standby (spun down, electronics on), watts — Table III.
    pub power_standby_w: f64,
    /// Power spinning idle, watts — Table III.
    pub power_idle_w: f64,
    /// Power while seeking/transferring, watts — Table III.
    pub power_active_w: f64,
    /// Transient power draw during spin-up, watts.
    pub power_spinup_w: f64,
}

/// Host-attachment parameters (how commands reach the drive).
#[derive(Debug, Clone, PartialEq)]
pub struct AttachProfile {
    /// Human-readable name, e.g. `"SATA"` or `"USB3 bridge"`.
    pub name: &'static str,
    /// Per-command host+link overhead for reads (cache-hit path).
    pub overhead_read: Duration,
    /// Per-command host+link overhead for writes (write-back ack path).
    pub overhead_write: Duration,
    /// Fixed turnaround cost when a sequential stream changes direction.
    pub seq_turnaround: Duration,
    /// On a write→read turnaround in a sequential stream, the drained write
    /// cache costs this multiple of the previous write's media time.
    pub seq_destage_factor: f64,
    /// Turnaround cost when a random stream changes direction.
    pub rand_turnaround: Duration,
    /// Extra positioning cost per byte for *random* reads, reflecting the
    /// attachment's command-splitting granularity (ns per byte).
    pub stream_cost_read_ns_per_byte: f64,
    /// Same for random writes (ns per byte).
    pub stream_cost_write_ns_per_byte: f64,
    /// Attachment electronics power when the disk is spun down, watts.
    pub power_standby_w: f64,
    /// Attachment electronics power when the disk idles, watts.
    pub power_idle_w: f64,
    /// Attachment electronics power during transfers (full adder over the
    /// bare drive's active power), watts.
    pub power_active_w: f64,
}

/// Toshiba DT01ACA300 — the paper's prototype drive (§V-B, Table II/III).
///
/// Seek constants are fitted so that the Iometer 8 GiB-span random tests of
/// Table II come out right: positioning ≈ 0.9 ms short-stroke seek + 4.17 ms
/// average rotational wait.
pub const DT01ACA300: MechProfile = MechProfile {
    name: "DT01ACA300",
    capacity_bytes: 3_000_592_982_016, // 3 TB nominal
    rpm: 7200,
    seek_base: Duration::from_micros(700),
    seek_full_extra: Duration::from_millis(8),
    media_rate_read_outer: 185.2e6,
    media_rate_write_outer: 180.7e6,
    inner_rate_frac: 0.55,
    write_settle: Duration::from_micros(6280),
    spin_up: Duration::from_secs(7),
    spin_down: Duration::from_secs(2),
    power_standby_w: 0.05,
    power_idle_w: 4.71,
    power_active_w: 6.66,
    power_spinup_w: 24.0,
};

/// Direct SATA attachment (Table II "SATA" row; Table III "SATA").
pub const SATA: AttachProfile = AttachProfile {
    name: "SATA",
    overhead_read: Duration::from_nanos(52_600),
    overhead_write: Duration::from_nanos(66_500),
    seq_turnaround: Duration::from_nanos(102_800),
    seq_destage_factor: 2.87,
    rand_turnaround: Duration::from_micros(2000),
    stream_cost_read_ns_per_byte: 1.115,
    stream_cost_write_ns_per_byte: 9.13,
    power_standby_w: 0.0,
    power_idle_w: 0.0,
    power_active_w: 0.0,
};

/// SATA↔USB 3.0 bridge attachment (Table II "USB" row; Table III
/// "USB bridge"). The bridge adds per-command latency — visible only on
/// small cache-hit operations — and its own power draw.
pub const USB_BRIDGE: AttachProfile = AttachProfile {
    name: "USB3 bridge",
    overhead_read: Duration::from_nanos(164_000),
    overhead_write: Duration::from_nanos(139_600),
    seq_turnaround: Duration::from_nanos(186_000),
    seq_destage_factor: 2.18,
    rand_turnaround: Duration::from_micros(3200),
    stream_cost_read_ns_per_byte: 0.168,
    stream_cost_write_ns_per_byte: 4.42,
    power_standby_w: 1.51,
    power_idle_w: 1.05,
    power_active_w: 0.90,
};

/// A complete disk configuration: mechanics plus attachment.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskProfile {
    /// The drive's mechanical profile.
    pub mech: MechProfile,
    /// The host attachment.
    pub attach: AttachProfile,
}

impl DiskProfile {
    /// The paper's prototype drive on direct SATA.
    pub fn sata() -> Self {
        DiskProfile {
            mech: DT01ACA300,
            attach: SATA,
        }
    }

    /// The paper's prototype drive behind a USB 3.0 bridge.
    pub fn usb_bridge() -> Self {
        DiskProfile {
            mech: DT01ACA300,
            attach: USB_BRIDGE,
        }
    }

    /// Total power draw of drive + attachment in the given coarse state.
    pub fn power_w(&self, state: PowerStateKind) -> f64 {
        match state {
            PowerStateKind::PoweredOff => 0.0,
            PowerStateKind::Standby => self.mech.power_standby_w + self.attach.power_standby_w,
            PowerStateKind::Idle => self.mech.power_idle_w + self.attach.power_idle_w,
            PowerStateKind::Active => self.mech.power_active_w + self.attach.power_active_w,
            PowerStateKind::SpinningUp => self.mech.power_spinup_w + self.attach.power_idle_w,
        }
    }
}

/// Coarse power states used for energy accounting (Table III columns plus
/// the transient spin-up state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerStateKind {
    /// 12 V rail cut by the relay: draws nothing.
    PoweredOff,
    /// Spindle stopped, electronics listening ("Spin Down" in Table III).
    Standby,
    /// Spinning, no IO in flight.
    Idle,
    /// Serving IO.
    Active,
    /// Spindle accelerating after power-on or standby exit.
    SpinningUp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Read.flip(), Direction::Write);
        assert_eq!(Direction::Write.flip(), Direction::Read);
    }

    #[test]
    fn table3_power_values() {
        // Table III: SATA 0.05 / 4.71 / 6.66 W.
        let sata = DiskProfile::sata();
        assert!((sata.power_w(PowerStateKind::Standby) - 0.05).abs() < 1e-9);
        assert!((sata.power_w(PowerStateKind::Idle) - 4.71).abs() < 1e-9);
        assert!((sata.power_w(PowerStateKind::Active) - 6.66).abs() < 1e-9);
        // Table III: USB bridge 1.56 / 5.76 / 7.56 W.
        let usb = DiskProfile::usb_bridge();
        assert!((usb.power_w(PowerStateKind::Standby) - 1.56).abs() < 1e-9);
        assert!((usb.power_w(PowerStateKind::Idle) - 5.76).abs() < 1e-9);
        assert!((usb.power_w(PowerStateKind::Active) - 7.56).abs() < 1e-9);
    }

    #[test]
    fn powered_off_draws_nothing() {
        assert_eq!(
            DiskProfile::usb_bridge().power_w(PowerStateKind::PoweredOff),
            0.0
        );
    }

    #[test]
    fn bridge_adds_read_latency() {
        assert!(USB_BRIDGE.overhead_read > SATA.overhead_read);
        // The bridge acks writes earlier relative to its read path.
        assert!(USB_BRIDGE.overhead_write < USB_BRIDGE.overhead_read);
    }
}
