//! The discrete-event disk component.
//!
//! [`Disk`] wraps the pure [`IoModel`] with everything a simulated system
//! needs from a drive: an internal command queue, a power-state machine
//! (with spin-up/spin-down timing), optional payload storage (so upper
//! layers like the mini-DFS can verify data integrity end-to-end), fault
//! injection, and per-disk statistics and energy accounting.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use ustore_sim::{
    CounterHandle, Histogram, HistogramHandle, ReqStamp, Sim, SimRng, SimTime, Stage, Throughput,
    TraceLevel,
};

use crate::model::IoModel;
use crate::power::EnergyMeter;
use crate::profile::{Direction, DiskProfile, PowerStateKind};

/// Page size of the sparse payload store.
const PAGE: u64 = 4096;

/// Errors a disk command can complete with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The disk's 12 V rail is cut (relay off); no electronics listening.
    PoweredOff,
    /// The disk hardware failed (injected fault).
    Failed,
    /// Command exceeds the disk capacity.
    OutOfRange,
    /// A latent sector error inside the command's range.
    Medium {
        /// Byte offset of the first unreadable page.
        offset: u64,
    },
    /// The command was queued when the disk lost power.
    Aborted,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::PoweredOff => write!(f, "disk is powered off"),
            DiskError::Failed => write!(f, "disk hardware failed"),
            DiskError::OutOfRange => write!(f, "command beyond disk capacity"),
            DiskError::Medium { offset } => write!(f, "medium error at offset {offset}"),
            DiskError::Aborted => write!(f, "command aborted by power loss"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Result of a completed read.
pub type ReadResult = Result<Vec<u8>, DiskError>;
/// Result of a completed write.
pub type WriteResult = Result<(), DiskError>;

type ReadCb = Box<dyn FnOnce(&Sim, ReadResult)>;
type WriteCb = Box<dyn FnOnce(&Sim, WriteResult)>;

enum Pending {
    Read {
        offset: u64,
        len: u64,
        cb: ReadCb,
    },
    Write {
        offset: u64,
        data: Vec<u8>,
        cb: WriteCb,
    },
}

impl Pending {
    fn dir(&self) -> Direction {
        match self {
            Pending::Read { .. } => Direction::Read,
            Pending::Write { .. } => Direction::Write,
        }
    }
    fn offset(&self) -> u64 {
        match self {
            Pending::Read { offset, .. } | Pending::Write { offset, .. } => *offset,
        }
    }
    fn len(&self) -> u64 {
        match self {
            Pending::Read { len, .. } => *len,
            Pending::Write { data, .. } => data.len() as u64,
        }
    }
    fn abort(self, sim: &Sim, err: DiskError) {
        match self {
            Pending::Read { cb, .. } => cb(sim, Err(err)),
            Pending::Write { cb, .. } => cb(sim, Err(err)),
        }
    }
}

/// Per-disk operation statistics.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Completed reads (ops and bytes).
    pub reads: Throughput,
    /// Completed writes (ops and bytes).
    pub writes: Throughput,
    /// Commands that completed with an error.
    pub errors: u64,
    /// End-to-end command latency (queue + service), nanoseconds.
    pub latency: Histogram,
}

/// Pre-registered metric handles for the per-IO hot path: resolved once at
/// disk construction so completing a command never hashes or allocates a
/// metric name.
#[derive(Debug, Clone)]
struct DiskMetrics {
    seeks: CounterHandle,
    cache_hits: CounterHandle,
    spin_ups: CounterHandle,
    latency: HistogramHandle,
    reads: CounterHandle,
    read_bytes: CounterHandle,
    writes: CounterHandle,
    write_bytes: CounterHandle,
    errors: CounterHandle,
    uncorrectable: CounterHandle,
    scrub_pages: CounterHandle,
    scrub_repairs: CounterHandle,
}

impl DiskMetrics {
    fn new(sim: &Sim, name: &str) -> Self {
        DiskMetrics {
            seeks: sim.counter(name, "disk.seeks"),
            cache_hits: sim.counter(name, "disk.cache_hits"),
            spin_ups: sim.counter(name, "disk.spin_ups"),
            latency: sim.histogram(name, "disk.latency_ns"),
            reads: sim.counter(name, "disk.reads"),
            read_bytes: sim.counter(name, "disk.read_bytes"),
            writes: sim.counter(name, "disk.writes"),
            write_bytes: sim.counter(name, "disk.write_bytes"),
            errors: sim.counter(name, "disk.errors"),
            uncorrectable: sim.counter(name, "disk.uncorrectable_reads"),
            scrub_pages: sim.counter(name, "disk.scrub_pages"),
            scrub_repairs: sim.counter(name, "disk.scrub_repairs"),
        }
    }
}

/// Outcome of one background scrub pass ([`Disk::scrub`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// 4 KiB pages verify-read by the pass.
    pub scanned_pages: u64,
    /// Latent sector errors detected inside the scanned range.
    pub bad_found: u64,
    /// Pages repaired (rewritten/reallocated) by the pass.
    pub repaired: u64,
}

struct Inner {
    name: String,
    metrics: DiskMetrics,
    model: IoModel,
    state: PowerStateKind,
    meter: EnergyMeter,
    queue: VecDeque<(Pending, SimTime, Option<ReqStamp>)>,
    busy: bool,
    spinning_up: bool,
    /// When the in-progress spin-up started (attribution of spin-up wait).
    spin_started: Option<SimTime>,
    /// The most recent completed spin-up interval `[start, end]`: queued
    /// commands overlapping it charge that overlap to `SpinUpWait`.
    last_spin: Option<(SimTime, SimTime)>,
    failed: bool,
    bad_pages: HashSet<u64>,
    data: Option<HashMap<u64, Box<[u8]>>>,
    stats: DiskStats,
    epoch: u64, // bumped on power-off to invalidate in-flight completions
    // Gradual-degradation injection (Gray & van Ingen: drives drift before
    // they die): a positioning-time multiplier and an uncorrectable-read
    // probability. Both inert (1.0 / 0.0) unless a scenario dials them up.
    latency_factor: f64,
    read_error_rate: f64,
    degrade_rng: Option<SimRng>, // forked lazily so healthy runs draw nothing
}

impl Inner {
    fn set_state(&mut self, now: SimTime, s: PowerStateKind) {
        self.state = s;
        self.meter.transition(now, s);
    }
}

/// A simulated hard disk.
///
/// Cloning the handle shares the same underlying device.
///
/// # Examples
///
/// ```
/// use ustore_sim::Sim;
/// use ustore_disk::{Disk, DiskProfile};
///
/// let sim = Sim::new(1);
/// let disk = Disk::new(&sim, "d0", DiskProfile::usb_bridge(), true);
/// disk.write(&sim, 0, vec![7u8; 4096], |_, r| assert!(r.is_ok()));
/// let d = disk.clone();
/// disk.read(&sim, 0, 4096, move |_, r| {
///     assert_eq!(r.expect("read back")[0], 7);
///     let _ = &d;
/// });
/// sim.run();
/// ```
#[derive(Clone)]
pub struct Disk {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("Disk")
            .field("name", &i.name)
            .field("state", &i.state)
            .field("queued", &i.queue.len())
            .finish()
    }
}

impl Disk {
    /// Creates a spinning, idle disk.
    ///
    /// If `store_data` is true the disk retains written payloads (sparse,
    /// 4 KiB pages) so reads return real data; otherwise reads return
    /// zeroes, which the throughput experiments use to save memory.
    pub fn new(sim: &Sim, name: impl Into<String>, profile: DiskProfile, store_data: bool) -> Self {
        let p = profile.clone();
        let name = name.into();
        let metrics = DiskMetrics::new(sim, &name);
        Disk {
            inner: Rc::new(RefCell::new(Inner {
                name,
                metrics,
                model: IoModel::new(profile),
                state: PowerStateKind::Idle,
                meter: EnergyMeter::new(sim.now(), PowerStateKind::Idle, move |s| p.power_w(s)),
                queue: VecDeque::new(),
                busy: false,
                spinning_up: false,
                spin_started: None,
                last_spin: None,
                failed: false,
                bad_pages: HashSet::new(),
                data: store_data.then(HashMap::new),
                stats: DiskStats::default(),
                epoch: 0,
                latency_factor: 1.0,
                read_error_rate: 0.0,
                degrade_rng: None,
            })),
        }
    }

    /// The disk's name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.borrow().model.profile().mech.capacity_bytes
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerStateKind {
        self.inner.borrow().state
    }

    /// Snapshot of operation statistics.
    pub fn stats(&self) -> DiskStats {
        self.inner.borrow().stats.clone()
    }

    /// Total energy consumed, joules (synced to `sim.now()`).
    pub fn energy_joules(&self, sim: &Sim) -> f64 {
        let mut i = self.inner.borrow_mut();
        i.meter.sync(sim.now());
        i.meter.total_joules()
    }

    /// Instantaneous power draw, watts.
    pub fn watts_now(&self) -> f64 {
        self.inner.borrow().meter.watts_now()
    }

    /// Cumulative time spent in a power state (synced to `sim.now()`).
    pub fn time_in_state(&self, sim: &Sim, state: PowerStateKind) -> std::time::Duration {
        let mut i = self.inner.borrow_mut();
        i.meter.sync(sim.now());
        i.meter.time_in(state)
    }

    /// Publishes this disk's per-power-state residency (seconds), total
    /// energy (joules) and instantaneous draw (watts) as gauges in the
    /// simulation's metrics registry, labelled with the disk's name.
    pub fn publish_residency(&self, sim: &Sim) {
        const STATES: [(PowerStateKind, &str); 5] = [
            (PowerStateKind::PoweredOff, "power.residency.powered_off_s"),
            (PowerStateKind::Standby, "power.residency.standby_s"),
            (PowerStateKind::Idle, "power.residency.idle_s"),
            (PowerStateKind::Active, "power.residency.active_s"),
            (PowerStateKind::SpinningUp, "power.residency.spinning_up_s"),
        ];
        let mut i = self.inner.borrow_mut();
        i.meter.sync(sim.now());
        for (state, gauge) in STATES {
            sim.gauge_set(&i.name, gauge, i.meter.time_in(state).as_secs_f64());
        }
        sim.gauge_set(&i.name, "power.energy_j", i.meter.total_joules());
        sim.gauge_set(&i.name, "power.watts", i.meter.watts_now());
    }

    /// Submits a read of `len` bytes at `offset`; `cb` fires on completion.
    pub fn read(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        cb: impl FnOnce(&Sim, ReadResult) + 'static,
    ) {
        self.submit(
            sim,
            Pending::Read {
                offset,
                len,
                cb: Box::new(cb),
            },
        );
    }

    /// Submits a write of `data` at `offset`; `cb` fires on completion.
    pub fn write(
        &self,
        sim: &Sim,
        offset: u64,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, WriteResult) + 'static,
    ) {
        self.submit(
            sim,
            Pending::Write {
                offset,
                data,
                cb: Box::new(cb),
            },
        );
    }

    fn submit(&self, sim: &Sim, op: Pending) {
        let reject = {
            let i = self.inner.borrow();
            if i.failed {
                Some(DiskError::Failed)
            } else if i.state == PowerStateKind::PoweredOff {
                Some(DiskError::PoweredOff)
            } else if op.len() == 0
                || op.offset().saturating_add(op.len()) > i.model.profile().mech.capacity_bytes
            {
                Some(DiskError::OutOfRange)
            } else {
                None
            }
        };
        if let Some(err) = reject {
            self.inner.borrow_mut().stats.errors += 1;
            let this = self.clone();
            sim.schedule_now(move |sim| {
                let _ = &this;
                op.abort(sim, err);
            });
            return;
        }
        // Capture the ambient trace stamp (set by the rpc layer around the
        // server handler chain) so device-level stages can be attributed.
        self.inner
            .borrow_mut()
            .queue
            .push_back((op, sim.now(), sim.current_stamp()));
        self.pump(sim);
    }

    /// Starts the next queued command if the disk is ready.
    fn pump(&self, sim: &Sim) {
        let (service, epoch, traced) = {
            let mut i = self.inner.borrow_mut();
            if i.busy || i.queue.is_empty() {
                return;
            }
            match i.state {
                PowerStateKind::PoweredOff => return,
                PowerStateKind::SpinningUp => return, // will pump on ready
                PowerStateKind::Standby => {
                    // Auto spin-up on IO.
                    if !i.spinning_up {
                        i.spinning_up = true;
                        let now = sim.now();
                        i.set_state(now, PowerStateKind::SpinningUp);
                        i.spin_started = Some(now);
                        let spin = i.model.profile().mech.spin_up;
                        let epoch = i.epoch;
                        drop(i);
                        let this = self.clone();
                        sim.schedule_in(spin, move |sim| this.finish_spin_up(sim, epoch));
                    }
                    return;
                }
                PowerStateKind::Idle | PowerStateKind::Active => {}
            }
            i.busy = true;
            let now = sim.now();
            i.set_state(now, PowerStateKind::Active);
            let (offset, len, dir, queued_at, stamp) = {
                let (op, queued_at, stamp) = i.queue.front().expect("queue nonempty");
                (op.offset(), op.len(), op.dir(), *queued_at, *stamp)
            };
            let svc = i.model.service(offset, len, dir);
            let seek = !svc.positioning.is_zero();
            if seek {
                i.metrics.seeks.inc();
            } else {
                i.metrics.cache_hits.inc();
            }
            let mut positioning = svc.positioning;
            if i.latency_factor > 1.0 && seek {
                positioning += svc.positioning.mul_f64(i.latency_factor - 1.0);
            }
            let service = svc.total() + (positioning - svc.positioning);
            let traced = stamp.map(|s| (s, queued_at, positioning, service, i.last_spin));
            (service, i.epoch, traced)
        };
        if let Some((stamp, queued_at, positioning, service, last_spin)) = traced {
            self.attribute_dispatch(sim, stamp, queued_at, positioning, service, last_spin);
        }
        let this = self.clone();
        sim.schedule_in(service, move |sim| this.complete(sim, epoch));
    }

    /// Splits one dispatched command's history into traced stages: the
    /// time since submission becomes spin-up wait (where it overlaps the
    /// last spin-up) plus endpoint queueing, and the service time ahead
    /// splits into seek (positioning, health-stretched) and transfer.
    fn attribute_dispatch(
        &self,
        sim: &Sim,
        stamp: ReqStamp,
        queued_at: SimTime,
        positioning: std::time::Duration,
        service: std::time::Duration,
        last_spin: Option<(SimTime, SimTime)>,
    ) {
        let tracer = sim.reqtracer();
        if !tracer.is_on() {
            return;
        }
        let stamp = Some(stamp);
        let now = sim.now();
        let mut spin_wait = std::time::Duration::ZERO;
        let mut spin_from = queued_at;
        if let Some((s, e)) = last_spin {
            let lo = s.max(queued_at);
            let hi = e.min(now);
            if hi > lo {
                spin_wait = hi.duration_since(lo);
                spin_from = lo;
            }
        }
        let wait = now.duration_since(queued_at);
        let queue_wait = wait.saturating_sub(spin_wait);
        tracer.absorb(stamp, Stage::EndpointQueue, queue_wait, queued_at);
        tracer.absorb(stamp, Stage::SpinUpWait, spin_wait, spin_from);
        tracer.absorb(stamp, Stage::Seek, positioning, now);
        tracer.absorb(
            stamp,
            Stage::Transfer,
            service.saturating_sub(positioning),
            now + positioning,
        );
    }

    fn finish_spin_up(&self, sim: &Sim, epoch: u64) {
        {
            let mut i = self.inner.borrow_mut();
            if i.epoch != epoch || i.state != PowerStateKind::SpinningUp {
                return;
            }
            i.spinning_up = false;
            let now = sim.now();
            i.set_state(now, PowerStateKind::Idle);
            if let Some(started) = i.spin_started.take() {
                i.last_spin = Some((started, now));
            }
            i.model.reset_stream();
            i.metrics.spin_ups.inc();
        }
        self.pump(sim);
    }

    fn complete(&self, sim: &Sim, epoch: u64) {
        let (op, queued_at, _stamp) = {
            let mut i = self.inner.borrow_mut();
            if i.epoch != epoch {
                return; // disk power-cycled while command in flight
            }
            i.busy = false;
            let entry = i.queue.pop_front().expect("in-flight command");
            if i.queue.is_empty() {
                let now = sim.now();
                i.set_state(now, PowerStateKind::Idle);
            }
            entry
        };
        let now = sim.now();
        {
            let mut i = self.inner.borrow_mut();
            let lat = now.duration_since(queued_at).as_nanos() as u64;
            i.stats.latency.record(lat);
            i.metrics.latency.observe(lat);
        }
        match op {
            Pending::Read { offset, len, cb } => {
                let res = if self.roll_uncorrectable() {
                    Err(DiskError::Medium { offset })
                } else {
                    self.do_read(offset, len)
                };
                {
                    let mut i = self.inner.borrow_mut();
                    match &res {
                        Ok(_) => {
                            i.stats.reads.complete(len);
                            i.metrics.reads.inc();
                            i.metrics.read_bytes.add(len);
                        }
                        Err(_) => {
                            i.stats.errors += 1;
                            i.metrics.errors.inc();
                        }
                    }
                }
                cb(sim, res);
            }
            Pending::Write { offset, data, cb } => {
                let len = data.len() as u64;
                self.do_write(offset, &data);
                {
                    let mut i = self.inner.borrow_mut();
                    i.stats.writes.complete(len);
                    i.metrics.writes.inc();
                    i.metrics.write_bytes.add(len);
                }
                cb(sim, Ok(()));
            }
        }
        self.pump(sim);
    }

    /// Rolls the degradation RNG for one read; counts a hit as an
    /// uncorrectable read (it surfaces as a [`DiskError::Medium`]).
    fn roll_uncorrectable(&self) -> bool {
        let mut i = self.inner.borrow_mut();
        let rate = i.read_error_rate;
        if rate <= 0.0 {
            return false;
        }
        let hit = i
            .degrade_rng
            .as_mut()
            .map(|rng| rng.chance(rate))
            .unwrap_or(false);
        if hit {
            i.metrics.uncorrectable.inc();
        }
        hit
    }

    fn do_read(&self, offset: u64, len: u64) -> ReadResult {
        let i = self.inner.borrow();
        let first_page = offset / PAGE;
        let last_page = (offset + len - 1) / PAGE;
        for p in first_page..=last_page {
            if i.bad_pages.contains(&p) {
                return Err(DiskError::Medium { offset: p * PAGE });
            }
        }
        let mut out = vec![0u8; len as usize];
        if let Some(data) = &i.data {
            for p in first_page..=last_page {
                if let Some(page) = data.get(&p) {
                    let page_start = p * PAGE;
                    let s = offset.max(page_start);
                    let e = (offset + len).min(page_start + PAGE);
                    out[(s - offset) as usize..(e - offset) as usize].copy_from_slice(
                        &page[(s - page_start) as usize..(e - page_start) as usize],
                    );
                }
            }
        }
        Ok(out)
    }

    fn do_write(&self, offset: u64, data: &[u8]) {
        let mut i = self.inner.borrow_mut();
        // Writing a page repairs a latent sector error on it.
        let first_page = offset / PAGE;
        let last_page = (offset + data.len() as u64 - 1) / PAGE;
        for p in first_page..=last_page {
            // Only fully overwritten pages are repaired.
            let page_start = p * PAGE;
            if offset <= page_start && offset + data.len() as u64 >= page_start + PAGE {
                i.bad_pages.remove(&p);
            }
        }
        if let Some(store) = &mut i.data {
            for p in first_page..=last_page {
                let page_start = p * PAGE;
                let page = store
                    .entry(p)
                    .or_insert_with(|| vec![0u8; PAGE as usize].into_boxed_slice());
                let s = offset.max(page_start);
                let e = (offset + data.len() as u64).min(page_start + PAGE);
                page[(s - page_start) as usize..(e - page_start) as usize]
                    .copy_from_slice(&data[(s - offset) as usize..(e - offset) as usize]);
            }
        }
    }

    /// Cuts the 12 V rail: aborts all queued commands and forgets stream
    /// state. Payload data survives (it is on the platters).
    pub fn power_off(&self, sim: &Sim) {
        let aborted: Vec<Pending> = {
            let mut i = self.inner.borrow_mut();
            if i.state == PowerStateKind::PoweredOff {
                return;
            }
            i.epoch += 1;
            i.busy = false;
            i.spinning_up = false;
            i.spin_started = None;
            let now = sim.now();
            i.set_state(now, PowerStateKind::PoweredOff);
            i.model.reset_stream();
            i.queue.drain(..).map(|(op, ..)| op).collect()
        };
        let n = aborted.len();
        for op in aborted {
            op.abort(sim, DiskError::Aborted);
        }
        if n > 0 {
            sim.trace(
                TraceLevel::Warn,
                "disk",
                format!("{}: power off aborted {n} commands", self.name()),
            );
        }
    }

    /// Restores power; the disk spins up and then serves queued IO.
    pub fn power_on(&self, sim: &Sim) {
        let (spin, epoch) = {
            let mut i = self.inner.borrow_mut();
            if i.state != PowerStateKind::PoweredOff {
                return;
            }
            let now = sim.now();
            i.set_state(now, PowerStateKind::SpinningUp);
            i.spinning_up = true;
            i.spin_started = Some(now);
            (i.model.profile().mech.spin_up, i.epoch)
        };
        let this = self.clone();
        sim.schedule_in(spin, move |sim| this.finish_spin_up(sim, epoch));
    }

    /// Explicitly spins a standby disk back up (IO also does this
    /// implicitly). No-op in other states.
    pub fn spin_up(&self, sim: &Sim) {
        let (spin, epoch) = {
            let mut i = self.inner.borrow_mut();
            if i.state != PowerStateKind::Standby || i.spinning_up {
                return;
            }
            i.spinning_up = true;
            let now = sim.now();
            i.set_state(now, PowerStateKind::SpinningUp);
            i.spin_started = Some(now);
            (i.model.profile().mech.spin_up, i.epoch)
        };
        let this = self.clone();
        sim.schedule_in(spin, move |sim| this.finish_spin_up(sim, epoch));
    }

    /// Spins the platters down (electronics stay on). In-flight and queued
    /// commands complete first; the state change applies only if idle.
    pub fn spin_down(&self, sim: &Sim) {
        let mut i = self.inner.borrow_mut();
        if i.state == PowerStateKind::Idle && !i.busy && i.queue.is_empty() {
            let now = sim.now();
            i.set_state(now, PowerStateKind::Standby);
            i.model.reset_stream();
        }
    }

    /// Sets the positioning-time multiplier modelling mechanical wear
    /// (`1.0` = healthy). Only seek/rotation time stretches; transfer rate
    /// is unaffected, matching the seek-latency drift that precedes
    /// spindle failure in fleet studies.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn set_latency_factor(&self, factor: f64) {
        assert!(factor >= 1.0, "latency factor below healthy: {factor}");
        self.inner.borrow_mut().latency_factor = factor;
    }

    /// Current positioning-time multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.inner.borrow().latency_factor
    }

    /// Sets the per-read probability of an uncorrectable (medium) error,
    /// modelling grown-defect drift. Draws come from a dedicated RNG
    /// forked on first use, so enabling degradation on one disk never
    /// shifts random sequences elsewhere in the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_read_error_rate(&self, sim: &Sim, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "error rate {rate}");
        let mut i = self.inner.borrow_mut();
        i.read_error_rate = rate;
        if rate > 0.0 && i.degrade_rng.is_none() {
            let label = format!("degrade-{}", i.name);
            drop(i);
            let rng = sim.fork_rng(&label);
            self.inner.borrow_mut().degrade_rng = Some(rng);
        }
    }

    /// Injects or clears a whole-disk hardware failure.
    pub fn set_failed(&self, sim: &Sim, failed: bool) {
        let aborted: Vec<Pending> = {
            let mut i = self.inner.borrow_mut();
            i.failed = failed;
            if failed {
                i.epoch += 1;
                i.busy = false;
                i.queue.drain(..).map(|(op, ..)| op).collect()
            } else {
                Vec::new()
            }
        };
        for op in aborted {
            op.abort(sim, DiskError::Failed);
        }
    }

    /// Marks the 4 KiB page containing `offset` as unreadable (latent
    /// sector error). A full overwrite of the page repairs it.
    pub fn inject_bad_page(&self, offset: u64) {
        self.inner.borrow_mut().bad_pages.insert(offset / PAGE);
    }

    /// Latent sector errors currently present on the platters.
    pub fn bad_page_count(&self) -> usize {
        self.inner.borrow().bad_pages.len()
    }

    /// Background media scrub over `[offset, offset + len)`: verify-reads
    /// every 4 KiB page in the range, detects latent sector errors and
    /// repairs them (sector reallocation — stored payload survives, the
    /// page reads normally again). The pass is costed at the sequential
    /// media rate stretched by the current latency factor, but runs as a
    /// firmware background task: it does not occupy the command queue, so
    /// foreground IO interleaves freely (TeraScale SneakerNet's "scrub in
    /// the idle gaps" discipline).
    ///
    /// Completes with an error if the disk is powered off, failed, or
    /// loses power mid-pass.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or the range exceeds the disk capacity.
    pub fn scrub(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        done: impl FnOnce(&Sim, Result<ScrubReport, DiskError>) + 'static,
    ) {
        assert!(len > 0, "scrub of empty range");
        let (duration, epoch) = {
            let i = self.inner.borrow();
            assert!(
                offset + len <= i.model.profile().mech.capacity_bytes,
                "scrub beyond disk capacity"
            );
            if i.failed {
                drop(i);
                done(sim, Err(DiskError::Failed));
                return;
            }
            if i.state == PowerStateKind::PoweredOff {
                drop(i);
                done(sim, Err(DiskError::PoweredOff));
                return;
            }
            let rate = i.model.media_rate(offset, Direction::Read);
            let secs = len as f64 / rate * i.latency_factor;
            (std::time::Duration::from_secs_f64(secs), i.epoch)
        };
        let this = self.clone();
        sim.schedule_in(duration, move |sim| {
            let report = {
                let mut i = this.inner.borrow_mut();
                if i.epoch != epoch || i.failed {
                    None
                } else {
                    let first_page = offset / PAGE;
                    let last_page = (offset + len - 1) / PAGE;
                    let bad: Vec<u64> = i
                        .bad_pages
                        .iter()
                        .copied()
                        .filter(|p| (first_page..=last_page).contains(p))
                        .collect();
                    for p in &bad {
                        i.bad_pages.remove(p);
                    }
                    let scanned = last_page - first_page + 1;
                    i.metrics.scrub_pages.add(scanned);
                    i.metrics.scrub_repairs.add(bad.len() as u64);
                    Some(ScrubReport {
                        scanned_pages: scanned,
                        bad_found: bad.len() as u64,
                        repaired: bad.len() as u64,
                    })
                }
            };
            match report {
                Some(r) => {
                    if r.repaired > 0 {
                        sim.trace(
                            TraceLevel::Info,
                            "disk",
                            format!(
                                "{}: scrub repaired {} latent sector error(s)",
                                this.name(),
                                r.repaired
                            ),
                        );
                    }
                    done(sim, Ok(r));
                }
                None => done(sim, Err(DiskError::Aborted)),
            }
        });
    }

    /// Whether the disk is currently serving or queueing commands.
    pub fn is_busy(&self) -> bool {
        let i = self.inner.borrow();
        i.busy || !i.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::time::Duration;

    fn setup() -> (Sim, Disk) {
        let sim = Sim::new(7);
        let disk = Disk::new(&sim, "d0", DiskProfile::usb_bridge(), true);
        (sim, disk)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (sim, disk) = setup();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        disk.write(&sim, 12_345, payload, |_, r| r.expect("write"));
        let ok = Rc::new(Cell::new(false));
        let okc = ok.clone();
        disk.read(&sim, 12_345, 10_000, move |_, r| {
            assert_eq!(r.expect("read"), expect);
            okc.set(true);
        });
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn unwritten_reads_zero() {
        let (sim, disk) = setup();
        disk.read(&sim, 1 << 30, 512, |_, r| {
            assert_eq!(r.expect("read"), vec![0u8; 512]);
        });
        sim.run();
    }

    #[test]
    fn out_of_range_rejected() {
        let (sim, disk) = setup();
        let cap = disk.capacity();
        disk.read(&sim, cap - 10, 100, |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::OutOfRange);
        });
        disk.write(&sim, 0, Vec::new(), |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::OutOfRange);
        });
        sim.run();
    }

    #[test]
    fn sequential_reads_are_fast_random_slow() {
        let (sim, disk) = setup();
        let t0 = sim.now();
        disk.read(&sim, 0, 4096, |_, _| {});
        sim.run();
        let first = sim.now() - t0;
        let t1 = sim.now();
        disk.read(&sim, 4096, 4096, |_, _| {});
        sim.run();
        let seq = sim.now() - t1;
        assert!(seq < Duration::from_micros(300), "seq {seq:?}");
        assert!(first > Duration::from_millis(1), "first (random) {first:?}");
    }

    #[test]
    fn commands_queue_fifo() {
        let (sim, disk) = setup();
        let order = Rc::new(RefCell::new(Vec::new()));
        for n in 0..3 {
            let o = order.clone();
            disk.read(&sim, n * 4096, 4096, move |_, _| o.borrow_mut().push(n));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn power_off_aborts_and_rejects() {
        let (sim, disk) = setup();
        let aborted = Rc::new(Cell::new(false));
        let a = aborted.clone();
        // Queue a slow random command then cut power before it completes.
        disk.read(&sim, 1 << 33, 4096, move |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::Aborted);
            a.set(true);
        });
        let d = disk.clone();
        sim.schedule_in(Duration::from_micros(10), move |sim| d.power_off(sim));
        let d2 = disk.clone();
        sim.schedule_in(Duration::from_millis(1), move |sim| {
            d2.read(sim, 0, 512, |_, r| {
                assert_eq!(r.unwrap_err(), DiskError::PoweredOff);
            });
        });
        sim.run();
        assert!(aborted.get());
        assert_eq!(disk.power_state(), PowerStateKind::PoweredOff);
    }

    #[test]
    fn power_on_spins_up_then_serves() {
        let (sim, disk) = setup();
        disk.power_off(&sim);
        disk.power_on(&sim);
        assert_eq!(disk.power_state(), PowerStateKind::SpinningUp);
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = done_at.clone();
        disk.read(&sim, 0, 512, move |sim, r| {
            r.expect("read after spin-up");
            d.set(sim.now());
        });
        sim.run();
        assert!(done_at.get() >= SimTime::ZERO + Duration::from_secs(7));
        assert_eq!(disk.power_state(), PowerStateKind::Idle);
    }

    #[test]
    fn standby_auto_spins_up_on_io() {
        let (sim, disk) = setup();
        disk.spin_down(&sim);
        assert_eq!(disk.power_state(), PowerStateKind::Standby);
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = done_at.clone();
        disk.read(&sim, 0, 512, move |sim, r| {
            r.expect("read");
            d.set(sim.now());
        });
        sim.run();
        assert!(done_at.get() >= SimTime::ZERO + Duration::from_secs(7));
    }

    #[test]
    fn spin_down_ignored_while_busy() {
        let (sim, disk) = setup();
        disk.read(&sim, 1 << 33, 4096, |_, _| {});
        disk.spin_down(&sim);
        assert_eq!(disk.power_state(), PowerStateKind::Active);
        sim.run();
    }

    #[test]
    fn failed_disk_errors() {
        let (sim, disk) = setup();
        disk.set_failed(&sim, true);
        disk.read(&sim, 0, 512, |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::Failed);
        });
        sim.run();
        assert_eq!(disk.stats().errors, 1);
    }

    #[test]
    fn bad_page_then_repair() {
        let (sim, disk) = setup();
        disk.inject_bad_page(8192);
        let d = disk.clone();
        disk.read(&sim, 8192, 4096, move |sim, r| {
            assert!(matches!(r.unwrap_err(), DiskError::Medium { offset: 8192 }));
            // Full overwrite repairs the page.
            let d2 = d.clone();
            d.write(sim, 8192, vec![1u8; 4096], move |sim, r| {
                r.expect("write repairs");
                d2.read(sim, 8192, 4096, |_, r| {
                    assert_eq!(r.expect("repaired read")[0], 1);
                });
            });
        });
        sim.run();
    }

    #[test]
    fn energy_accounting_idle_vs_active() {
        let (sim, disk) = setup();
        sim.run_until(SimTime::from_secs(10));
        let idle_j = disk.energy_joules(&sim);
        // Table III USB-bridge idle: 5.76 W.
        assert!((idle_j - 57.6).abs() < 0.5, "idle energy {idle_j}");
        assert_eq!(disk.watts_now(), 5.76);
    }

    #[test]
    fn metrics_and_residency_gauges() {
        let (sim, disk) = setup();
        disk.write(&sim, 0, vec![0u8; 4096], |_, _| {});
        disk.read(&sim, 0, 4096, |_, _| {});
        sim.run_until(SimTime::from_secs(5));
        disk.publish_residency(&sim);
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("d0", "disk.writes"), 1);
        assert_eq!(m.counter("d0", "disk.reads"), 1);
        assert_eq!(m.counter("d0", "disk.write_bytes"), 4096);
        assert!(
            m.histogram("d0", "disk.latency_ns")
                .expect("latency")
                .count()
                >= 2
        );
        assert!(m.counter("d0", "disk.seeks") + m.counter("d0", "disk.cache_hits") >= 2);
        let idle = m.gauge("d0", "power.residency.idle_s").expect("idle gauge");
        let active = m
            .gauge("d0", "power.residency.active_s")
            .expect("active gauge");
        assert!(idle > 0.0, "idle residency {idle}");
        assert!(active > 0.0, "active residency {active}");
        assert!(
            (idle + active - 5.0).abs() < 0.01,
            "residencies sum to the run window"
        );
        assert!(m.gauge("d0", "power.energy_j").expect("energy") > 0.0);
    }

    #[test]
    fn latency_factor_stretches_seeks_only() {
        // Same random read on a healthy and a degraded disk: the degraded
        // one takes ~factor x the positioning time longer.
        let (sim, disk) = setup();
        disk.read(&sim, 1 << 33, 4096, |_, _| {});
        sim.run();
        let healthy = sim.now() - SimTime::ZERO;

        let sim2 = Sim::new(7);
        let slow = Disk::new(&sim2, "d0", DiskProfile::usb_bridge(), true);
        slow.set_latency_factor(3.0);
        assert_eq!(slow.latency_factor(), 3.0);
        slow.read(&sim2, 1 << 33, 4096, |_, _| {});
        sim2.run();
        let degraded = sim2.now() - SimTime::ZERO;
        assert!(
            degraded > healthy + Duration::from_millis(10),
            "degraded {degraded:?} vs healthy {healthy:?}"
        );

        // Sequential follow-up IO (no positioning) is NOT stretched.
        let t = sim2.now();
        slow.read(&sim2, (1 << 33) + 4096, 4096, |_, _| {});
        sim2.run();
        assert!(sim2.now() - t < Duration::from_micros(300));
    }

    #[test]
    fn read_error_rate_injects_uncorrectable_reads() {
        let (sim, disk) = setup();
        disk.set_read_error_rate(&sim, 0.5);
        let errors = Rc::new(Cell::new(0u32));
        for n in 0..40u64 {
            let e = errors.clone();
            disk.read(&sim, n * 4096, 4096, move |_, r| {
                if matches!(r, Err(DiskError::Medium { .. })) {
                    e.set(e.get() + 1);
                }
            });
        }
        sim.run();
        let hits = errors.get();
        assert!(hits > 5 && hits < 35, "p=0.5 over 40 reads: {hits}");
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("d0", "disk.uncorrectable_reads"), u64::from(hits));
        assert_eq!(m.counter("d0", "disk.errors"), u64::from(hits));
        // Turning the rate back down restores healthy reads.
        disk.set_read_error_rate(&sim, 0.0);
        disk.read(&sim, 0, 512, |_, r| {
            r.expect("healthy again");
        });
        sim.run();
    }

    #[test]
    fn scrub_detects_and_repairs_latent_sector_errors() {
        let (sim, disk) = setup();
        disk.write(&sim, 0, vec![0x5A; 8192], |_, r| r.expect("write"));
        sim.run();
        disk.inject_bad_page(4096);
        disk.inject_bad_page(1 << 20);
        assert_eq!(disk.bad_page_count(), 2);

        let report = Rc::new(Cell::new(None));
        let r2 = report.clone();
        disk.scrub(&sim, 0, 2 << 20, move |_, r| {
            r2.set(Some(r.expect("scrub completes")));
        });
        sim.run();
        let rep = report.get().expect("scrub ran");
        assert_eq!(rep.scanned_pages, (2 << 20) / 4096);
        assert_eq!(rep.bad_found, 2);
        assert_eq!(rep.repaired, 2);
        assert_eq!(disk.bad_page_count(), 0);

        // The repaired page serves the payload written before the LSE.
        disk.read(&sim, 4096, 4096, |_, r| {
            assert_eq!(r.expect("repaired page readable")[0], 0x5A);
        });
        sim.run();
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("d0", "disk.scrub_pages"), (2 << 20) / 4096);
        assert_eq!(m.counter("d0", "disk.scrub_repairs"), 2);
    }

    #[test]
    fn scrub_fails_cleanly_on_dead_or_powered_off_disks() {
        let (sim, disk) = setup();
        disk.power_off(&sim);
        let saw = Rc::new(Cell::new(0u32));
        let s2 = saw.clone();
        disk.scrub(&sim, 0, 4096, move |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::PoweredOff);
            s2.set(s2.get() + 1);
        });
        disk.power_on(&sim);
        sim.run();
        // A pass in flight when the disk fails aborts instead of lying.
        disk.inject_bad_page(0);
        let s3 = saw.clone();
        disk.scrub(&sim, 0, 1 << 20, move |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::Aborted);
            s3.set(s3.get() + 1);
        });
        let d = disk.clone();
        sim.schedule_in(Duration::from_micros(10), move |sim| {
            d.power_off(sim);
        });
        sim.run();
        assert_eq!(saw.get(), 2);
        // Failed disks reject the pass synchronously.
        let sim2 = Sim::new(9);
        let dead = Disk::new(&sim2, "d1", DiskProfile::usb_bridge(), false);
        dead.set_failed(&sim2, true);
        let s4 = Rc::new(Cell::new(false));
        let s5 = s4.clone();
        dead.scrub(&sim2, 0, 4096, move |_, r| {
            assert_eq!(r.unwrap_err(), DiskError::Failed);
            s5.set(true);
        });
        assert!(s4.get(), "failed-disk scrub completes synchronously");
    }

    #[test]
    fn stats_track_ops() {
        let (sim, disk) = setup();
        disk.write(&sim, 0, vec![0u8; 4096], |_, _| {});
        disk.read(&sim, 0, 4096, |_, _| {});
        sim.run();
        let s = disk.stats();
        assert_eq!(s.reads.ops(), 1);
        assert_eq!(s.writes.ops(), 1);
        assert_eq!(s.latency.count(), 2);
    }
}
