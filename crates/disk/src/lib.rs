//! # ustore-disk — calibrated hard-disk model
//!
//! A discrete-event model of the UStore prototype's drive (Toshiba
//! DT01ACA300, 3 TB, 7200 rpm) and its two host attachments (direct SATA
//! and a SATA↔USB 3.0 bridge). Performance constants are calibrated so the
//! paper's single-disk measurements (Table II) are reproduced by the pure
//! [`IoModel`]; power constants come from Table III.
//!
//! ## Example
//!
//! ```
//! use ustore_sim::Sim;
//! use ustore_disk::{Disk, DiskProfile};
//!
//! let sim = Sim::new(0);
//! let disk = Disk::new(&sim, "d0", DiskProfile::sata(), true);
//! disk.write(&sim, 0, b"archived".to_vec(), |_, r| r.expect("write"));
//! sim.run();
//! assert_eq!(disk.stats().writes.ops(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod model;
pub mod power;
pub mod profile;

pub use disk::{Disk, DiskError, DiskStats, ReadResult, ScrubReport, WriteResult};
pub use model::{IoModel, ServiceBreakdown};
pub use power::EnergyMeter;
pub use profile::{
    AttachProfile, Direction, DiskProfile, MechProfile, PowerStateKind, DT01ACA300, SATA,
    USB_BRIDGE,
};
