//! The price and power catalog behind the paper's cost comparison (§VI).
//!
//! Every constant is either quoted directly in the paper (3 TB SATA disk
//! ≈ $100, <$1 fabric ICs, $4 GbE / $100 10 GbE ports, BOM×2 retail
//! markup, Cubieboard3 for Pergamum's ARM) or back-derived from the
//! paper's own Table I/V rows, which are themselves estimates assembled
//! from vendor prices. The point of the model is the *structure* — which
//! components each architecture needs — so the comparisons react
//! correctly when a parameter moves.

/// Dollars.
pub type Usd = f64;

/// Unit prices (2015 USD), per §VI.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceCatalog {
    /// 3 TB SATA HDD ("cost about $100 each").
    pub disk_3tb: Usd,
    /// Disk capacity used in all comparisons, bytes.
    pub disk_capacity_tb: f64,
    /// USB 3.0 hub IC + board (BOM).
    pub hub_bom: Usd,
    /// USB 3.0 2:1 switch IC + board (BOM).
    pub switch_bom: Usd,
    /// SATA↔USB 3.0 bridge IC + board (BOM).
    pub bridge_bom: Usd,
    /// Cable/connector per fabric edge (BOM).
    pub cable_bom: Usd,
    /// Microcontroller board (Arduino-class) + relays, per unit (BOM).
    pub controller_bom: Usd,
    /// Retail price = BOM x this ("We multiply bill of materials (BOM)
    /// cost by 2 to estimate the cost of the interconnect fabric").
    pub bom_markup: f64,
    /// 4U enclosure + backplane + wiring (Backblaze-derived).
    pub enclosure_45_disks: Usd,
    /// UStore's simplified 64-disk enclosure (no motherboard bay; the
    /// paper argues the freed space packs more disks).
    pub enclosure_64_disks: Usd,
    /// Power supplies per 4U enclosure.
    pub psu_per_enclosure: Usd,
    /// Server-class motherboard + CPU + RAM + boot drives (Backblaze pod).
    pub pod_compute: Usd,
    /// SATA HBA cards for a Backblaze pod.
    pub pod_hba: Usd,
    /// Cubieboard3-class ARM single-board computer (Pergamum tome).
    pub arm_board: Usd,
    /// 1 GbE switch port ("1Gb/s port is $4").
    pub gbe_port: Usd,
    /// 10 GbE switch port ("10Gb/s port is $100").
    pub ten_gbe_port: Usd,
    /// USB 3.0 host adaptor (4 ports) for a UStore host.
    pub usb_host_adaptor: Usd,
    /// Dell PowerVault MD3260i enclosure, 60 NL-SAS bays, list price.
    pub md3260i_enclosure: Usd,
    /// Near-line SAS 3 TB drive (enterprise).
    pub nl_sas_3tb: Usd,
    /// StorageTek SL150 library module (base, without drives).
    pub sl150_base: Usd,
    /// Cartridge slots' capacity per SL150 module, TB.
    pub sl150_module_tb: f64,
    /// LTO6 drives per SL150 module.
    pub sl150_drives_per_module: usize,
    /// LTO6 tape drive.
    pub lto6_drive: Usd,
    /// LTO6 cartridge (2.5 TB).
    pub lto6_cartridge: Usd,
    /// LTO6 cartridge capacity in TB.
    pub lto6_capacity_tb: f64,
}

impl Default for PriceCatalog {
    fn default() -> Self {
        PriceCatalog {
            disk_3tb: 100.0,
            disk_capacity_tb: 3.0,
            hub_bom: 1.0,
            switch_bom: 0.8,
            bridge_bom: 0.9,
            cable_bom: 0.8,
            controller_bom: 25.0,
            bom_markup: 2.0,
            enclosure_45_disks: 1_900.0,
            enclosure_64_disks: 1_100.0,
            psu_per_enclosure: 270.0,
            pod_compute: 920.0,
            pod_hba: 380.0,
            arm_board: 72.0,
            gbe_port: 4.0,
            ten_gbe_port: 100.0,
            usb_host_adaptor: 40.0,
            md3260i_enclosure: 27_450.0,
            nl_sas_3tb: 545.0,
            sl150_base: 65_000.0,
            sl150_module_tb: 750.0,
            sl150_drives_per_module: 3,
            lto6_drive: 18_000.0,
            lto6_cartridge: 40.0,
            lto6_capacity_tb: 2.5,
        }
    }
}

/// Component powers (watts), per §VII-C and the catalog sheets it cites.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCatalog {
    /// One disk reading/writing through a USB bridge (Table III).
    pub disk_active_usb_w: f64,
    /// One disk + bridge powered off at the relay.
    pub disk_off_w: f64,
    /// One bare disk reading/writing over SATA (Table III).
    pub disk_active_sata_w: f64,
    /// UStore interconnect fabric, 16 disks, active (measured §VII-C).
    pub fabric_active_w: f64,
    /// Fabric power reduction when disks are off ("consumes about 71%
    /// less power").
    pub fabric_off_fraction: f64,
    /// One chassis fan ("1W each x6").
    pub fan_w: f64,
    /// Fans per 16-disk unit.
    pub fans: usize,
    /// USB 3.0 host adaptor ("2.5W each x4").
    pub usb_adaptor_w: f64,
    /// Adaptors per 16-disk unit.
    pub usb_adaptors: usize,
    /// Power-supply efficiency ("power factor 90plus").
    pub psu_efficiency: f64,
    /// Pergamum ARM busy / idle ("around 2.5W" / "around 0.8W").
    pub arm_busy_w: f64,
    /// ARM idle power.
    pub arm_idle_w: f64,
    /// Amortized Ethernet port, active / idle ("1.5W" / "0.5W").
    pub eth_port_busy_w: f64,
    /// Ethernet port at idle.
    pub eth_port_idle_w: f64,
    /// EMC DD860/ES30 (15 disks), disks spinning (quoted, Table V).
    pub dd860_spinning_w: f64,
    /// DD860/ES30, disks powered off (quoted, Table V).
    pub dd860_off_w: f64,
}

impl Default for PowerCatalog {
    fn default() -> Self {
        PowerCatalog {
            disk_active_usb_w: 7.56,
            disk_off_w: 0.0,
            disk_active_sata_w: 6.66,
            fabric_active_w: 13.6,
            fabric_off_fraction: 0.71,
            fan_w: 1.0,
            fans: 6,
            usb_adaptor_w: 2.5,
            usb_adaptors: 4,
            psu_efficiency: 0.9,
            arm_busy_w: 2.5,
            arm_idle_w: 0.8,
            eth_port_busy_w: 1.5,
            eth_port_idle_w: 0.5,
            dd860_spinning_w: 222.5,
            dd860_off_w: 83.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_defaults_match_paper_quotes() {
        let p = PriceCatalog::default();
        assert_eq!(p.disk_3tb, 100.0);
        assert_eq!(p.gbe_port, 4.0);
        assert_eq!(p.ten_gbe_port, 100.0);
        assert_eq!(p.bom_markup, 2.0);
        assert!(
            p.hub_bom < 1.5 && p.switch_bom < 1.5 && p.bridge_bom < 1.5,
            "fabric ICs cost less than a dollar-and-change each"
        );
        let w = PowerCatalog::default();
        assert_eq!(w.disk_active_usb_w, 7.56);
        assert_eq!(w.usb_adaptor_w, 2.5);
        assert_eq!(w.psu_efficiency, 0.9);
    }
}
