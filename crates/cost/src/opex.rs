//! Operational-expense (power) models reproducing Table V.
//!
//! The paper compares the amortized power of 16 disks' worth of three
//! systems in two states: disks serving reads/writes ("Spinning") and
//! disks spun down / powered off. UStore and Pergamum are composed from
//! component measurements (Tables III/IV plus §VII-C estimates); the EMC
//! DD860/ES30 figures are quoted from the FAST'12 backup-power study the
//! paper cites.

use crate::catalog::PowerCatalog;

/// One Table V row (watts for a 16-disk group).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// System name.
    pub name: &'static str,
    /// Disks serving reads/writes.
    pub spinning_w: f64,
    /// Disks spun down / powered off.
    pub powered_off_w: f64,
}

const DISKS: f64 = 16.0;

/// UStore's 16-disk unit power in both states.
pub fn ustore(p: &PowerCatalog) -> PowerRow {
    let shared = p.fans as f64 * p.fan_w + p.usb_adaptors as f64 * p.usb_adaptor_w;
    let spinning = (DISKS * p.disk_active_usb_w + shared + p.fabric_active_w) / p.psu_efficiency;
    // Disks and bridges off; the interconnect drops by the measured 71%.
    let off = (DISKS * p.disk_off_w + shared + p.fabric_active_w * (1.0 - p.fabric_off_fraction))
        / p.psu_efficiency;
    PowerRow {
        name: "UStore",
        spinning_w: spinning,
        powered_off_w: off,
    }
}

/// Pergamum with 16 tomes (ARM + Ethernet per disk; same enclosure, fans
/// and PSUs as UStore for fairness, §VII-C).
pub fn pergamum(p: &PowerCatalog) -> PowerRow {
    let fans = p.fans as f64 * p.fan_w;
    let spinning = (DISKS * (p.disk_active_sata_w + p.arm_busy_w + p.eth_port_busy_w) + fans)
        / p.psu_efficiency;
    let off = (DISKS * (p.arm_idle_w + p.eth_port_idle_w) + fans) / p.psu_efficiency;
    PowerRow {
        name: "Pergamum",
        spinning_w: spinning,
        powered_off_w: off,
    }
}

/// EMC DD860/ES30 (15 disks) — quoted measurements.
pub fn dd860(p: &PowerCatalog) -> PowerRow {
    PowerRow {
        name: "DD860/ES30",
        spinning_w: p.dd860_spinning_w,
        powered_off_w: p.dd860_off_w,
    }
}

/// The full Table V.
pub fn table5(p: &PowerCatalog) -> Vec<PowerRow> {
    vec![dd860(p), pergamum(p), ustore(p)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, paper: f64, tol: f64, what: &str) {
        let err = (got - paper).abs() / paper;
        assert!(
            err < tol,
            "{what}: model {got:.1} W vs paper {paper} W ({:+.1}%)",
            100.0 * (got - paper) / paper
        );
    }

    #[test]
    fn table5_matches_paper() {
        let p = PowerCatalog::default();
        let rows = table5(&p);
        close(rows[0].spinning_w, 222.5, 0.01, "DD860 spinning");
        close(rows[0].powered_off_w, 83.5, 0.01, "DD860 off");
        close(rows[1].spinning_w, 193.5, 0.05, "Pergamum spinning");
        close(rows[1].powered_off_w, 28.9, 0.05, "Pergamum off");
        close(rows[2].spinning_w, 166.8, 0.02, "UStore spinning");
        close(rows[2].powered_off_w, 22.1, 0.02, "UStore off");
    }

    #[test]
    fn ustore_wins_both_states() {
        let p = PowerCatalog::default();
        let rows = table5(&p);
        let us = &rows[2];
        for other in &rows[..2] {
            assert!(us.spinning_w < other.spinning_w, "vs {}", other.name);
            assert!(us.powered_off_w < other.powered_off_w, "vs {}", other.name);
        }
    }

    #[test]
    fn fabric_power_off_saving_matches_quote() {
        // "the interconnect fabric consumes about 71% less power" when
        // disks are off.
        let p = PowerCatalog::default();
        let active = p.fabric_active_w;
        let off = p.fabric_active_w * (1.0 - p.fabric_off_fraction);
        assert!((1.0 - off / active - 0.71).abs() < 1e-9);
    }
}
