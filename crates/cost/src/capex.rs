//! Capital-expense models reproducing Table I.
//!
//! Each model composes a system's bill of materials for a target raw
//! capacity (the paper uses 10 PB). UStore's fabric component counts are
//! taken from the *actual* topology builder in `ustore-fabric`, so cost
//! reacts to design choices (fan-in, switch placement, unit size).

use ustore_fabric::Topology;

use crate::catalog::{PriceCatalog, Usd};

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemCost {
    /// System name.
    pub name: &'static str,
    /// Storage medium description.
    pub media: &'static str,
    /// Total capital expense, USD.
    pub capex: Usd,
    /// Capital expense without the storage medium ("AttEx"), USD; tape
    /// libraries have no meaningful medium-free figure in the paper.
    pub attex: Option<Usd>,
}

fn disks_for(catalog: &PriceCatalog, raw_pb: f64) -> f64 {
    raw_pb * 1000.0 / catalog.disk_capacity_tb
}

/// Dell PowerVault MD3260i: 60 near-line SAS drives per enclosure.
pub fn md3260i(catalog: &PriceCatalog, raw_pb: f64) -> SystemCost {
    let enclosures = disks_for(catalog, raw_pb) / 60.0;
    let attex = enclosures * catalog.md3260i_enclosure;
    let media = disks_for(catalog, raw_pb) * catalog.nl_sas_3tb;
    SystemCost {
        name: "DELL PowerVault MD3260i",
        media: "Near-line SAS",
        capex: attex + media,
        attex: Some(attex),
    }
}

/// Sun StorageTek SL150 tape library with LTO6 media.
pub fn sl150(catalog: &PriceCatalog, raw_pb: f64) -> SystemCost {
    let tb = raw_pb * 1000.0;
    let cartridges = tb / catalog.lto6_capacity_tb;
    let modules = tb / catalog.sl150_module_tb;
    let capex = cartridges * catalog.lto6_cartridge
        + modules
            * (catalog.sl150_base + catalog.sl150_drives_per_module as f64 * catalog.lto6_drive);
    SystemCost {
        name: "Sun StorageTek SL150",
        media: "LTO6 Tape",
        capex,
        attex: None,
    }
}

/// Pergamum (FAST'08): one ARM + GbE port per disk, 45 tomes per 4U
/// enclosure, NVRAM removed for a fair comparison (§VI).
pub fn pergamum(catalog: &PriceCatalog, raw_pb: f64) -> SystemCost {
    let disks = disks_for(catalog, raw_pb);
    let enclosures = disks / 45.0;
    let attex = enclosures * (catalog.enclosure_45_disks + catalog.psu_per_enclosure)
        + disks * (catalog.arm_board + catalog.gbe_port);
    SystemCost {
        name: "Pergamum",
        media: "SATA HD",
        capex: attex + disks * catalog.disk_3tb,
        attex: Some(attex),
    }
}

/// Backblaze Storage Pod: 45 disks behind one low-end motherboard.
pub fn backblaze(catalog: &PriceCatalog, raw_pb: f64) -> SystemCost {
    let disks = disks_for(catalog, raw_pb);
    let pods = disks / 45.0;
    let attex = pods
        * (catalog.enclosure_45_disks
            + catalog.psu_per_enclosure
            + catalog.pod_compute
            + catalog.pod_hba);
    SystemCost {
        name: "BACKBLAZE",
        media: "SATA HD",
        capex: attex + disks * catalog.disk_3tb,
        attex: Some(attex),
    }
}

/// The fabric bill of materials (retail = BOM × markup) for one deploy
/// unit described by `topology`.
pub fn fabric_retail(catalog: &PriceCatalog, topology: &Topology) -> Usd {
    let c = topology.component_counts();
    let bom = c.hubs as f64 * catalog.hub_bom
        + c.switches as f64 * catalog.switch_bom
        + c.disks as f64 * catalog.bridge_bom
        + c.cables as f64 * catalog.cable_bom
        + 2.0 * catalog.controller_bom;
    bom * catalog.bom_markup
}

/// UStore: a 64-disk, 4-host deploy unit (upper-switched fabric, §VI).
pub fn ustore(catalog: &PriceCatalog, raw_pb: f64) -> SystemCost {
    let (topology, _) = Topology::upper_switched(4, 64, 4);
    ustore_with_topology(catalog, raw_pb, &topology)
}

/// UStore cost with an explicit unit topology (for ablations).
pub fn ustore_with_topology(
    catalog: &PriceCatalog,
    raw_pb: f64,
    topology: &Topology,
) -> SystemCost {
    let counts = topology.component_counts();
    let disks = disks_for(catalog, raw_pb);
    let units = disks / counts.disks as f64;
    let per_unit = catalog.enclosure_64_disks
        + catalog.psu_per_enclosure
        + fabric_retail(catalog, topology)
        + counts.hosts as f64 * catalog.usb_host_adaptor;
    let attex = units * per_unit;
    SystemCost {
        name: "UStore",
        media: "SATA HD",
        capex: attex + disks * catalog.disk_3tb,
        attex: Some(attex),
    }
}

/// The full Table I for a raw capacity in petabytes.
pub fn table1(catalog: &PriceCatalog, raw_pb: f64) -> Vec<SystemCost> {
    vec![
        md3260i(catalog, raw_pb),
        sl150(catalog, raw_pb),
        pergamum(catalog, raw_pb),
        backblaze(catalog, raw_pb),
        ustore(catalog, raw_pb),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(x: Usd) -> f64 {
        x / 1000.0
    }

    fn close(got: Usd, paper_k: f64, tol: f64, what: &str) {
        let err = (k(got) - paper_k).abs() / paper_k;
        assert!(
            err < tol,
            "{what}: model ${:.0}k vs paper ${paper_k}k ({:+.1}%)",
            k(got),
            100.0 * (k(got) - paper_k) / paper_k
        );
    }

    #[test]
    fn table1_rows_match_paper() {
        let c = PriceCatalog::default();
        let rows = table1(&c, 10.0);
        // Paper Table I (thousands of dollars).
        close(rows[0].capex, 3340.0, 0.10, "MD3260i CapEx");
        close(rows[0].attex.unwrap(), 1525.0, 0.10, "MD3260i AttEx");
        close(rows[1].capex, 1748.0, 0.10, "SL150 CapEx");
        close(rows[2].capex, 756.0, 0.10, "Pergamum CapEx");
        close(rows[2].attex.unwrap(), 415.0, 0.10, "Pergamum AttEx");
        close(rows[3].capex, 598.0, 0.10, "Backblaze CapEx");
        close(rows[3].attex.unwrap(), 257.0, 0.10, "Backblaze AttEx");
        close(rows[4].capex, 456.0, 0.10, "UStore CapEx");
        close(rows[4].attex.unwrap(), 115.0, 0.12, "UStore AttEx");
    }

    #[test]
    fn ustore_beats_backblaze_by_paper_margins() {
        let c = PriceCatalog::default();
        let bb = backblaze(&c, 10.0);
        let us = ustore(&c, 10.0);
        // "UStore costs 24% lower than BACKBLAZE ... Excluding the disk
        // cost, UStore is 55% cheaper."
        let capex_saving = 1.0 - us.capex / bb.capex;
        assert!(
            (capex_saving - 0.24).abs() < 0.05,
            "capex saving {capex_saving:.2}"
        );
        let attex_saving = 1.0 - us.attex.unwrap() / bb.attex.unwrap();
        assert!(
            (attex_saving - 0.55).abs() < 0.08,
            "attex saving {attex_saving:.2}"
        );
    }

    #[test]
    fn ordering_is_stable_across_capacities() {
        let c = PriceCatalog::default();
        for pb in [1.0, 10.0, 100.0] {
            let rows = table1(&c, pb);
            let capex: Vec<f64> = rows.iter().map(|r| r.capex).collect();
            assert!(capex[0] > capex[1], "MD3260i most expensive at {pb} PB");
            assert!(capex[2] > capex[3], "Pergamum > Backblaze");
            assert!(capex[3] > capex[4], "UStore cheapest");
        }
    }

    #[test]
    fn fabric_cost_is_cents_per_disk_scale() {
        let c = PriceCatalog::default();
        let (t, _) = Topology::upper_switched(4, 64, 4);
        let per_disk = fabric_retail(&c, &t) / 64.0;
        assert!(
            per_disk < 12.0,
            "amortized fabric cost per disk ${per_disk:.2} stays trivial"
        );
    }

    #[test]
    fn leaf_switched_fabric_costs_more() {
        // The Figure 2 ablation: leaf-level switching needs more hubs and
        // switches, hence more money — the paper's reason for the right
        // design.
        let c = PriceCatalog::default();
        let (upper, _) = Topology::upper_switched(2, 16, 4);
        let (leaf, _) = Topology::leaf_switched(16, 4);
        assert!(fabric_retail(&c, &leaf) > fabric_retail(&c, &upper));
    }
}
