//! # ustore-cost — the paper's cost and power comparisons
//!
//! Models behind §VI (Table I: CapEx of five storage architectures at
//! 10 PB) and §VII-C (Table V: power of 16-disk groups in two states).
//! All parameters live in [`catalog`]; the UStore figures are computed
//! from the actual fabric topology, so the comparison reacts to design
//! choices.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capex;
pub mod catalog;
pub mod opex;

pub use capex::{
    backblaze, fabric_retail, md3260i, pergamum, sl150, table1, ustore, ustore_with_topology,
    SystemCost,
};
pub use catalog::{PowerCatalog, PriceCatalog, Usd};
pub use opex::{dd860, table5, PowerRow};
pub use opex::{pergamum as pergamum_power, ustore as ustore_power};
