//! Plain-harness benches wrapping the paper's experiments.
//!
//! Each bench regenerates one table/figure data point; `cargo bench`
//! therefore doubles as an end-to-end exercise of the whole stack. Wall
//! time here is simulator throughput, not storage performance — the
//! storage numbers are the *outputs*, printed by `repro`.
//!
//! The harness is hand-rolled (no external bench framework): each case
//! runs a couple of warmup iterations, then reports mean/min/max wall
//! time over a small fixed sample.

use std::hint::black_box;
use std::time::Instant;

use ustore_bench::{failover, fig5, fig6, power, table2};
use ustore_cost::{table1, PriceCatalog};
use ustore_disk::DiskProfile;
use ustore_workload::AccessSpec;

fn bench(name: &str, samples: u32, mut f: impl FnMut()) {
    for _ in 0..2 {
        f();
    }
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    let total: std::time::Duration = times.iter().sum();
    let mean = total / samples;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!("{name:<28} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  (n={samples})");
}

fn main() {
    bench("table2/sata_4k_seq_read", 5, || {
        black_box(table2::run_disk_cell(
            DiskProfile::sata(),
            &AccessSpec::new(4096, 100, false),
            1,
        ));
    });
    bench("table2/hs_4m_seq_read", 5, || {
        black_box(table2::run_fabric_cell(
            &AccessSpec::new(4 << 20, 100, false),
            1,
        ));
    });
    bench("fig5/duplex_12_disks", 3, || {
        black_box(fig5::duplex(7).rows[0].measured);
    });
    bench("fig6/switch_4_disks", 3, || {
        black_box(fig6::switch_time(4, 9));
    });
    bench("failover/host_failure_recovery", 3, || {
        black_box(failover::run_failover(11, u32::MAX).total);
    });
    bench("models/table1_cost_model", 10, || {
        black_box(table1(&PriceCatalog::default(), 10.0));
    });
    bench("models/table5_power_model", 10, || {
        black_box(power::table5());
    });
}
