//! Criterion benches wrapping the paper's experiments.
//!
//! Each bench regenerates one table/figure data point; `cargo bench`
//! therefore doubles as an end-to-end exercise of the whole stack. Wall
//! time here is simulator throughput, not storage performance — the
//! storage numbers are the *outputs*, printed by `repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ustore_bench::{failover, fig5, fig6, power, table2};
use ustore_cost::{table1, PriceCatalog};
use ustore_disk::DiskProfile;
use ustore_workload::AccessSpec;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("sata_4k_seq_read", |b| {
        b.iter(|| {
            black_box(table2::run_disk_cell(
                DiskProfile::sata(),
                &AccessSpec::new(4096, 100, false),
                1,
            ))
        })
    });
    g.bench_function("hs_4m_seq_read", |b| {
        b.iter(|| black_box(table2::run_fabric_cell(&AccessSpec::new(4 << 20, 100, false), 1)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("duplex_12_disks", |b| {
        b.iter(|| black_box(fig5::duplex(7).rows[0].measured))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("switch_4_disks", |b| b.iter(|| black_box(fig6::switch_time(4, 9))));
    g.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut g = c.benchmark_group("failover");
    g.sample_size(10).measurement_time(Duration::from_secs(30));
    g.bench_function("host_failure_recovery", |b| {
        b.iter(|| black_box(failover::run_failover(11, u32::MAX).total))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    g.sample_size(20);
    g.bench_function("table1_cost_model", |b| {
        b.iter(|| black_box(table1(&PriceCatalog::default(), 10.0)))
    });
    g.bench_function("table5_power_model", |b| b.iter(|| black_box(power::table5())));
    g.finish();
}

criterion_group!(benches, bench_table2, bench_fig5, bench_fig6, bench_failover, bench_models);
criterion_main!(benches);
