//! Table II: single-disk performance under three connection types.
//!
//! Reruns the paper's Iometer sweep — {4 KB, 4 MB} × {sequential, random}
//! × {100%, 50%, 0% read} — against a disk attached by direct SATA, by a
//! USB 3.0 bridge, and through the full prototype fabric (two hubs, two
//! switches, one bridge — "H&S").

use std::time::Duration;

use ustore_disk::{Disk, DiskProfile};
use ustore_fabric::{DiskId, FabricRuntime};
use ustore_sim::Sim;
use ustore_workload::{disk_issuer, fabric_issuer, AccessSpec, Worker};

use crate::report::{Report, Row};

/// The paper's measured values, row-major in the order produced by
/// [`specs`]: 4K-Seq, 4K-Rand, 4M-Seq, 4M-Rand × (100, 50, 0)% read.
pub const PAPER_SATA: [f64; 12] = [
    13378.0, 8066.0, 11211.0, // 4K seq, IO/s
    191.9, 105.4, 86.9, // 4K rand, IO/s
    184.8, 105.7, 180.2, // 4M seq, MB/s
    129.1, 78.7, 57.5, // 4M rand, MB/s
];
/// USB-bridge row of Table II.
pub const PAPER_USB: [f64; 12] = [
    5380.0, 4294.0, 6166.0, 189.0, 105.2, 85.2, 185.8, 119.7, 184.0, 147.9, 95.5, 79.3,
];
/// Hub-and-switch row of Table II.
pub const PAPER_HS: [f64; 12] = [
    5381.0, 4595.0, 6181.0, 189.2, 106.0, 87.9, 185.8, 118.6, 184.9, 147.7, 97.7, 79.9,
];

/// The 12 access specs of Table II, in row order.
pub fn specs() -> Vec<AccessSpec> {
    let mut v = Vec::new();
    for (bytes, random) in [
        (4096u64, false),
        (4096, true),
        (4 << 20, false),
        (4 << 20, true),
    ] {
        for pct in [100u8, 50, 0] {
            v.push(AccessSpec::new(bytes, pct, random));
        }
    }
    v
}

fn measure_window(spec: &AccessSpec) -> Duration {
    // Random 4 MB ops take tens of milliseconds each: run longer to get a
    // stable mean; small sequential ops converge in a second.
    if spec.random && spec.request_bytes >= 1 << 20 {
        Duration::from_secs(30)
    } else if spec.random {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(2)
    }
}

fn value_of(spec: &AccessSpec, stats: &ustore_workload::WorkloadStats) -> (f64, &'static str) {
    if spec.request_bytes >= 1 << 20 {
        (stats.mbps(), "MB/s")
    } else {
        (stats.iops(), "IO/s")
    }
}

/// Runs one Table II cell on a bare disk with the given profile.
pub fn run_disk_cell(profile: DiskProfile, spec: &AccessSpec, seed: u64) -> f64 {
    let sim = Sim::new(seed);
    let disk = Disk::new(&sim, "d", profile, false);
    let worker = Worker::new(spec.clone(), sim.fork_rng("w"), 0, disk_issuer(disk));
    worker.run(&sim, measure_window(spec));
    sim.run();
    value_of(spec, &worker.stats()).0
}

/// Runs one Table II cell through the prototype fabric (single active
/// disk; the paper powers only one on).
pub fn run_fabric_cell(spec: &AccessSpec, seed: u64) -> f64 {
    let sim = Sim::new(seed);
    let rt = FabricRuntime::prototype(&sim);
    sim.run_until(sim.now() + Duration::from_secs(10)); // enumeration
    let worker = Worker::new(
        spec.clone(),
        sim.fork_rng("w"),
        0,
        fabric_issuer(rt.clone(), DiskId(0)),
    );
    worker.run(&sim, measure_window(spec));
    sim.run_until(sim.now() + measure_window(spec) + Duration::from_secs(1));
    value_of(spec, &worker.stats()).0
}

/// Regenerates the whole of Table II as three reports (SATA, USB, H&S).
pub fn table2(seed: u64) -> Vec<Report> {
    let sp = specs();
    let mut out = Vec::new();
    for (config, paper) in [("SATA", &PAPER_SATA), ("USB", &PAPER_USB)] {
        let profile = if config == "SATA" {
            DiskProfile::sata()
        } else {
            DiskProfile::usb_bridge()
        };
        let rows = sp
            .iter()
            .zip(paper.iter())
            .map(|(spec, paper)| {
                let measured = run_disk_cell(profile.clone(), spec, seed);
                let unit = if spec.request_bytes >= 1 << 20 {
                    "MB/s"
                } else {
                    "IO/s"
                };
                Row::new(format!("{config} {spec}"), *paper, measured, unit)
            })
            .collect();
        out.push(Report::new(format!("Table II ({config})"), rows));
    }
    let rows = sp
        .iter()
        .zip(PAPER_HS.iter())
        .map(|(spec, paper)| {
            let measured = run_fabric_cell(spec, seed);
            let unit = if spec.request_bytes >= 1 << 20 {
                "MB/s"
            } else {
                "IO/s"
            };
            Row::new(format!("H&S {spec}"), *paper, measured, unit)
        })
        .collect();
    out.push(Report::new("Table II (H&S)", rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sata_and_usb_cells_track_paper() {
        // Spot checks (the exhaustive check is in the disk crate's model
        // tests; here we verify the full per-IO pipeline agrees).
        let s = run_disk_cell(DiskProfile::sata(), &AccessSpec::new(4096, 100, false), 1);
        assert!((s - 13378.0).abs() / 13378.0 < 0.05, "{s}");
        let u = run_disk_cell(
            DiskProfile::usb_bridge(),
            &AccessSpec::new(4 << 20, 100, false),
            1,
        );
        assert!((u - 185.8).abs() / 185.8 < 0.05, "{u}");
    }

    #[test]
    fn fabric_path_adds_nothing_for_large_transfers() {
        // Table II's core observation: H&S ~= USB.
        let spec = AccessSpec::new(4 << 20, 100, false);
        let usb = run_disk_cell(DiskProfile::usb_bridge(), &spec, 2);
        let hs = run_fabric_cell(&spec, 2);
        assert!((hs - usb).abs() / usb < 0.03, "usb {usb} vs h&s {hs}");
    }

    #[test]
    fn sata_doubles_usb_on_small_sequential_reads() {
        let spec = AccessSpec::new(4096, 100, false);
        let sata = run_disk_cell(DiskProfile::sata(), &spec, 3);
        let usb = run_disk_cell(DiskProfile::usb_bridge(), &spec, 3);
        let ratio = sata / usb;
        assert!((2.0..3.0).contains(&ratio), "ratio {ratio}");
    }
}
