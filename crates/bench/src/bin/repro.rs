//! Regenerates every table and figure of the UStore paper.
//!
//! ```text
//! repro [experiment ...] [--seed N] [--repeats N]
//! ```
//!
//! Experiments: `table1 table2 table3 table4 table5 fig5 fig6 duplex
//! failover hdfs rolling ablation all` (default: `all`). Output shows
//! paper value vs measured value with the relative error; `--json` emits
//! the same data machine-readably, plus (when the failover experiment
//! runs) a `telemetry` object carrying the metrics snapshot and the
//! failover span tree of one run.

use ustore_bench::{ablation, failover, fig5, fig6, hdfs, power, table2, Report};
use ustore_sim::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 20150707;
    let mut repeats: u64 = 6;
    let mut json = false;
    let mut picks: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"));
            }
            "--json" => json = true,
            "-h" | "--help" => {
                usage("");
            }
            other => picks.push(other.to_owned()),
        }
    }
    if picks.is_empty() || picks.iter().any(|p| p == "all") {
        picks = [
            "table1", "table2", "table3", "table4", "table5", "fig5", "duplex", "fig6", "failover",
            "hdfs", "rolling", "ablation",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }
    let mut reports: Vec<Report> = Vec::new();
    let mut telemetry: Option<Json> = None;
    for pick in &picks {
        match pick.as_str() {
            "table1" => reports.push(power::table1()),
            "table2" => reports.extend(table2::table2(seed)),
            "table3" => reports.push(power::table3(seed)),
            "table4" => reports.push(power::table4()),
            "table5" => reports.push(power::table5()),
            "fig5" => reports.extend(fig5::fig5(seed)),
            "duplex" => reports.push(fig5::duplex(seed)),
            "fig6" => reports.push(fig6::fig6(seed, repeats)),
            "failover" => {
                let (rep, tele) = failover::failover_report_traced(seed);
                reports.push(rep);
                telemetry = Some(tele);
            }
            "hdfs" => reports.push(hdfs::hdfs_report(seed)),
            "rolling" => reports.push(power::rolling_spin_up_ablation(seed)),
            "ablation" => {
                reports.push(ablation::topology_ablation());
                reports.push(ablation::heartbeat_sweep(seed));
                reports.push(ablation::allocation_ablation(seed));
            }
            other => usage(&format!("unknown experiment {other:?}")),
        }
    }
    if json {
        let mut doc = Json::obj([
            ("seed", Json::u64(seed)),
            ("reports", Json::arr(reports.iter().map(Report::to_json))),
        ]);
        if let Some(tele) = telemetry {
            doc.insert("telemetry", tele);
        }
        println!("{}", doc.pretty());
    } else {
        println!("UStore reproduction — paper vs simulation (seed {seed})\n");
        for rep in &reports {
            println!("{rep}");
        }
        if let Some(tele) = &telemetry {
            let spans = tele
                .get("spans")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!("telemetry: {spans} spans captured (rerun with --json for the full export)");
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [experiment ...] [--seed N] [--repeats N] [--json]\n\
         experiments: table1 table2 table3 table4 table5 fig5 fig6 duplex failover hdfs rolling ablation all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
