//! Regenerates every table and figure of the UStore paper.
//!
//! ```text
//! repro [experiment ...] [--seed N] [--repeats N] [--json]
//!       [--prom-out FILE] [--trace-out FILE] [--ts-out FILE]
//! ```
//!
//! Experiments: `table1 table2 table3 table4 table5 fig5 fig6 duplex
//! failover degraded hdfs rolling ablation all` (default: `all`). Output
//! shows paper value vs measured value with the relative error; `--json`
//! emits the same data machine-readably, plus a `telemetry` object (keyed
//! by experiment) carrying the metrics snapshot and span tree of each
//! traced run.
//!
//! The artifact flags write standard-format telemetry exports of the last
//! traced experiment that ran (`degraded` wins over `failover` in the
//! default order):
//!
//! - `--prom-out`: Prometheus exposition text of the final metrics
//!   snapshot;
//! - `--trace-out`: Chrome trace-event JSON of the span log — open it in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`;
//! - `--ts-out`: CSV (`component,series,t_s,value`) of the scraped time
//!   series.

use ustore_bench::{
    ablation, degraded, failover, fig5, fig6, hdfs, power, table2, Report, TelemetryArtifacts,
};
use ustore_sim::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 20150707;
    let mut repeats: u64 = 6;
    let mut json = false;
    let mut prom_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut ts_out: Option<String> = None;
    let mut picks: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"));
            }
            "--json" => json = true,
            "--prom-out" => {
                prom_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--prom-out needs a path")),
                );
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                );
            }
            "--ts-out" => {
                ts_out = Some(it.next().unwrap_or_else(|| usage("--ts-out needs a path")));
            }
            "-h" | "--help" => {
                usage("");
            }
            other => picks.push(other.to_owned()),
        }
    }
    if picks.is_empty() || picks.iter().any(|p| p == "all") {
        picks = [
            "table1", "table2", "table3", "table4", "table5", "fig5", "duplex", "fig6", "failover",
            "degraded", "hdfs", "rolling", "ablation",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }
    let mut reports: Vec<Report> = Vec::new();
    let mut telemetry: Vec<(&'static str, Json)> = Vec::new();
    let mut artifacts: Option<TelemetryArtifacts> = None;
    for pick in &picks {
        match pick.as_str() {
            "table1" => reports.push(power::table1()),
            "table2" => reports.extend(table2::table2(seed)),
            "table3" => reports.push(power::table3(seed)),
            "table4" => reports.push(power::table4()),
            "table5" => reports.push(power::table5()),
            "fig5" => reports.extend(fig5::fig5(seed)),
            "duplex" => reports.push(fig5::duplex(seed)),
            "fig6" => reports.push(fig6::fig6(seed, repeats)),
            "failover" => {
                let (rep, tele, arts) = failover::failover_report_traced(seed);
                reports.push(rep);
                telemetry.push(("failover", tele));
                artifacts = Some(arts);
            }
            "degraded" => {
                let (rep, tele, arts) = degraded::degraded_report_traced(seed);
                reports.push(rep);
                telemetry.push(("degraded", tele));
                artifacts = Some(arts);
            }
            "hdfs" => reports.push(hdfs::hdfs_report(seed)),
            "rolling" => reports.push(power::rolling_spin_up_ablation(seed)),
            "ablation" => {
                reports.push(ablation::topology_ablation());
                reports.push(ablation::heartbeat_sweep(seed));
                reports.push(ablation::allocation_ablation(seed));
            }
            other => usage(&format!("unknown experiment {other:?}")),
        }
    }
    let wants_artifacts = prom_out.is_some() || trace_out.is_some() || ts_out.is_some();
    if wants_artifacts && artifacts.is_none() {
        usage("--prom-out/--trace-out/--ts-out need a traced experiment (failover or degraded)");
    }
    if let Some(arts) = &artifacts {
        let write = |path: &Option<String>, what: &str, content: &str| {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, content) {
                    eprintln!("error: writing {what} to {path}: {e}");
                    std::process::exit(1);
                }
            }
        };
        write(&prom_out, "Prometheus metrics", &arts.prometheus);
        write(&trace_out, "Chrome trace", &arts.chrome_trace);
        write(&ts_out, "time-series CSV", &arts.timeseries_csv);
    }
    if json {
        let mut doc = Json::obj([
            ("seed", Json::u64(seed)),
            ("reports", Json::arr(reports.iter().map(Report::to_json))),
        ]);
        if !telemetry.is_empty() {
            doc.insert("telemetry", Json::obj(telemetry));
        }
        println!("{}", doc.pretty());
    } else {
        println!("UStore reproduction — paper vs simulation (seed {seed})\n");
        for rep in &reports {
            println!("{rep}");
        }
        for (name, tele) in &telemetry {
            let spans = tele
                .get("spans")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!(
                "telemetry[{name}]: {spans} spans captured (rerun with --json for the full export)"
            );
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [experiment ...] [--seed N] [--repeats N] [--json]\n\
         \x20            [--prom-out FILE] [--trace-out FILE] [--ts-out FILE]\n\
         experiments: table1 table2 table3 table4 table5 fig5 fig6 duplex failover degraded hdfs rolling ablation all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
