//! Regenerates every table and figure of the UStore paper.
//!
//! ```text
//! repro [experiment ...] [--seed N] [--repeats N] [--jobs N] [--shards N]
//!       [--partitions N] [--json] [--prom-out FILE] [--trace-out FILE]
//!       [--ts-out FILE]
//! repro perf [--quick] [--seed N] [--shards N] [--bench-out FILE] [--json]
//! repro profile [--quick] [--seed N] [--shards N] [--prom-out FILE]
//!       [--trace-out FILE] [--json]
//! repro slo [--quick] [--seed N] [--shards N] [--slo-out FILE]
//!       [--trace-out FILE] [--json]
//! repro fuzz [--quick] [--seed N] [--shards N] [--campaigns N]
//!       [--replay SEED] [--synthetic-fail] [--fuzz-out FILE] [--json]
//! ```
//!
//! Experiments: `table1 table2 table3 table4 table5 fig5 fig6 duplex
//! failover degraded hdfs rolling ablation podscale megapod all` (default:
//! `all`; `podscale` — the 1024-disk pod — and `megapod` — the 4096-disk
//! pod — are not part of `all` because of their runtime). Output shows
//! paper value vs measured value with the relative error; `--json` emits
//! the same data machine-readably, plus a `telemetry` object (keyed by
//! experiment) carrying the metrics snapshot and span tree of each traced
//! run.
//!
//! `--shards N` selects the sharded parallel engine (conservative
//! epoch-synchronized PDES) where supported: `podscale` runs sharded when
//! the flag is given (and single-world otherwise), `megapod` always runs
//! sharded (default: up to 4 threads), and `perf` sweeps shard counts up
//! to `N` for the shard-scaling section of `BENCH_podscale.json`. Both
//! `--jobs` and `--shards` must be ≥ 1 — `0` is rejected, not clamped.
//!
//! `--partitions N` splits the Master's metadata namespace into `N`
//! partitions (each its own replicated log) for the `podscale` and
//! `megapod` experiments; `1` (the default) is the monolithic layout and
//! is bit-identical with the pre-partition system. Like `--shards`, `0`
//! is rejected. The `perf` and `slo` subcommands measure the partitioned
//! pod themselves (the `metadata` section of `BENCH_podscale.json` and
//! the control-plane block of the SLO report), so they do not take the
//! flag.
//!
//! Each experiment builds its own independent simulator, so the selected
//! experiments run on a thread pool (`--jobs`, default: available
//! parallelism). Results are joined in selection order, making the text
//! and `--json` output byte-identical to a serial run.
//!
//! The `perf` subcommand is the wall-clock engine benchmark: it measures
//! events/sec, peak live queue depth and allocations/event (via a counting
//! global allocator) on the `degraded` scenario and on the pod-scale
//! deployment, runs the pod twice to verify telemetry determinism, and
//! writes `BENCH_podscale.json` (override with `--bench-out`). It always
//! runs alone, serially, so wall-clock numbers are undisturbed.
//!
//! The `profile` subcommand runs the pod with the wall-clock shard
//! profiler on and prints a scaling diagnosis: per-world phase breakdown
//! (execute / outbox_drain / barrier_wait / merge / idle_jump), epoch and
//! lookahead statistics, and the cross-world traffic matrix. With
//! `--trace-out` it writes a Perfetto trace with one wall-clock track per
//! engine thread; with `--prom-out`, the profiler aggregates under the
//! `ustore_prof_` prefix. It exits nonzero if enabling the profiler
//! changed the telemetry digest. Like `perf`, it runs alone.
//!
//! The `slo` subcommand runs the pod with the request-lifecycle tracer on
//! and prints the time-to-first-byte decomposition: per-stage p50 / p99 /
//! p99.9 tables for reads and writes, the coverage fraction (attributed ÷
//! end-to-end latency), and the slowest request's full stage timeline.
//! With `--slo-out` it writes the machine-readable report; with
//! `--trace-out` it writes a Perfetto trace with one track per
//! slowest-request exemplar. It exits nonzero if enabling the tracer
//! changed the telemetry digest. Like `perf`, it runs alone.
//!
//! The `fuzz` subcommand runs seeded fault-injection campaigns against
//! the full system under the empirical fault model (`ustore-sim`'s
//! `faultgen`): bathtub drive failures, latent sector errors, degradation
//! ramps, background scrubs, and correlated hub/host outages. After each
//! campaign an invariant oracle reads back every acknowledged write and
//! probes every mount; unexplained losses are violations, and a failing
//! schedule is shrunk to a minimal reproduction. `--replay SEED` reruns
//! exactly one campaign from its printed seed — the result (and its
//! telemetry digest) is bit-identical, which the run itself verifies and
//! exits nonzero on divergence. `--synthetic-fail` plants a harness-level
//! self-test fault so the shrink/replay machinery stays exercised.
//! `--fuzz-out` writes the machine-readable report. Like `perf`, it runs
//! alone.
//!
//! The artifact flags write standard-format telemetry exports of the last
//! traced experiment that ran (`degraded` wins over `failover` in the
//! default order):
//!
//! - `--prom-out`: Prometheus exposition text of the final metrics
//!   snapshot;
//! - `--trace-out`: Chrome trace-event JSON of the span log — open it in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`;
//! - `--ts-out`: CSV (`component,series,t_s,value`) of the scraped time
//!   series.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use ustore_bench::{
    ablation, degraded, failover, fig5, fig6, fuzz, hdfs, megapod, perf, podscale, power, profile,
    slo, table2, Report, TelemetryArtifacts,
};
use ustore_sim::Json;

/// Counts heap allocations so `repro perf` can report allocations/event.
/// Counting two relaxed atomics per alloc is noise next to the allocation
/// itself and does not disturb the measured scenarios.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const EXPERIMENTS: [&str; 19] = [
    "table1", "table2", "table3", "table4", "table5", "fig5", "duplex", "fig6", "failover",
    "degraded", "hdfs", "rolling", "ablation", "podscale", "megapod", "perf", "profile", "slo",
    "fuzz",
];

/// Default shard count for the scenarios that always run sharded: as many
/// threads as the machine offers, capped where scaling flattens for the
/// pod shapes.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(4)
}

/// Everything one experiment contributes to the final output.
struct PickOutput {
    reports: Vec<Report>,
    telemetry: Option<(&'static str, Json)>,
    artifacts: Option<TelemetryArtifacts>,
}

fn run_pick(
    pick: &str,
    seed: u64,
    repeats: u64,
    shards: Option<usize>,
    partitions: Option<u32>,
) -> PickOutput {
    let mut out = PickOutput {
        reports: Vec::new(),
        telemetry: None,
        artifacts: None,
    };
    match pick {
        "table1" => out.reports.push(power::table1()),
        "table2" => out.reports.extend(table2::table2(seed)),
        "table3" => out.reports.push(power::table3(seed)),
        "table4" => out.reports.push(power::table4()),
        "table5" => out.reports.push(power::table5()),
        "fig5" => out.reports.extend(fig5::fig5(seed)),
        "duplex" => out.reports.push(fig5::duplex(seed)),
        "fig6" => out.reports.push(fig6::fig6(seed, repeats)),
        "failover" => {
            let (rep, tele, arts) = failover::failover_report_traced(seed);
            out.reports.push(rep);
            out.telemetry = Some(("failover", tele));
            out.artifacts = Some(arts);
        }
        "degraded" => {
            let (rep, tele, arts) = degraded::degraded_report_traced(seed);
            out.reports.push(rep);
            out.telemetry = Some(("degraded", tele));
            out.artifacts = Some(arts);
        }
        "hdfs" => out.reports.push(hdfs::hdfs_report(seed)),
        "rolling" => out.reports.push(power::rolling_spin_up_ablation(seed)),
        "ablation" => {
            out.reports.push(ablation::topology_ablation());
            out.reports.push(ablation::heartbeat_sweep(seed));
            out.reports.push(ablation::allocation_ablation(seed));
        }
        "podscale" => {
            let mut cfg = podscale::PodConfig::pod();
            if let Some(p) = partitions {
                cfg.partitions = p;
            }
            let run = match shards {
                Some(s) => podscale::run_podscale_sharded(seed, &cfg, s),
                None => podscale::run_podscale(seed, &cfg),
            };
            out.telemetry = Some(("podscale", run.telemetry.clone()));
            out.reports.push(run.report);
        }
        "megapod" => {
            let mut cfg = megapod::megapod();
            if let Some(p) = partitions {
                cfg.partitions = p;
            }
            let run = megapod::run_megapod(seed, &cfg, shards.unwrap_or_else(default_shards));
            out.telemetry = Some(("megapod", run.telemetry.clone()));
            out.reports.push(run.report);
        }
        other => unreachable!("picks validated before dispatch: {other:?}"),
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 20150707;
    let mut repeats: u64 = 6;
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, usize::from);
    let mut shards: Option<usize> = None;
    let mut partitions: Option<u32> = None;
    let mut json = false;
    let mut quick = false;
    let mut bench_out = String::from("BENCH_podscale.json");
    let mut slo_out: Option<String> = None;
    let mut fuzz_out: Option<String> = None;
    let mut campaigns: Option<u32> = None;
    let mut replay: Option<u64> = None;
    let mut synthetic_fail = false;
    let mut prom_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut ts_out: Option<String> = None;
    let mut picks: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage("--jobs needs a positive number"));
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .unwrap_or_else(|| usage("--shards needs a positive number")),
                );
            }
            "--partitions" => {
                partitions = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u32| v >= 1)
                        .unwrap_or_else(|| usage("--partitions needs a positive number")),
                );
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--bench-out" => {
                bench_out = it
                    .next()
                    .unwrap_or_else(|| usage("--bench-out needs a path"));
            }
            "--slo-out" => {
                slo_out = Some(it.next().unwrap_or_else(|| usage("--slo-out needs a path")));
            }
            "--fuzz-out" => {
                fuzz_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--fuzz-out needs a path")),
                );
            }
            "--campaigns" => {
                campaigns = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u32| v >= 1)
                        .unwrap_or_else(|| usage("--campaigns needs a positive number")),
                );
            }
            "--replay" => {
                replay =
                    Some(it.next().and_then(|v| parse_seed(&v)).unwrap_or_else(|| {
                        usage("--replay needs a campaign seed (0x... or decimal)")
                    }));
            }
            "--synthetic-fail" => synthetic_fail = true,
            "--prom-out" => {
                prom_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--prom-out needs a path")),
                );
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                );
            }
            "--ts-out" => {
                ts_out = Some(it.next().unwrap_or_else(|| usage("--ts-out needs a path")));
            }
            "-h" | "--help" => {
                usage("");
            }
            other => picks.push(other.to_owned()),
        }
    }
    // Artifact destinations are validated up front: a typo'd directory
    // should cost a usage error now, not a lost result after minutes of
    // simulation.
    for (flag, path) in [
        ("--bench-out", Some(&bench_out)),
        ("--slo-out", slo_out.as_ref()),
        ("--fuzz-out", fuzz_out.as_ref()),
        ("--prom-out", prom_out.as_ref()),
        ("--trace-out", trace_out.as_ref()),
        ("--ts-out", ts_out.as_ref()),
    ] {
        if let Some(path) = path {
            check_writable_destination(flag, path);
        }
    }
    if partitions.is_some()
        && picks
            .iter()
            .any(|p| matches!(p.as_str(), "perf" | "profile" | "slo" | "fuzz"))
    {
        usage("--partitions applies to podscale/megapod (perf and slo measure the partitioned pod themselves)");
    }
    if picks.iter().any(|p| p == "fuzz") {
        if picks.len() > 1 {
            usage("fuzz runs alone (campaign seeds must not share artifact flags)");
        }
        if prom_out.is_some() || trace_out.is_some() || ts_out.is_some() || slo_out.is_some() {
            usage("--prom-out/--trace-out/--ts-out/--slo-out are not produced by fuzz (use --fuzz-out)");
        }
        run_fuzz_command(
            seed,
            quick,
            shards.unwrap_or_else(default_shards),
            campaigns.unwrap_or(8),
            replay,
            synthetic_fail,
            fuzz_out.as_deref(),
            json,
        );
        return;
    }
    if campaigns.is_some() || replay.is_some() || fuzz_out.is_some() || synthetic_fail {
        usage(
            "--campaigns/--replay/--fuzz-out/--synthetic-fail are only used by the fuzz subcommand",
        );
    }
    if picks.iter().any(|p| p == "perf") {
        if picks.len() > 1 {
            usage("perf runs alone (wall-clock numbers must not share the machine)");
        }
        run_perf_command(
            seed,
            quick,
            shards.unwrap_or_else(default_shards),
            &bench_out,
            json,
        );
        return;
    }
    if picks.iter().any(|p| p == "profile") {
        if picks.len() > 1 {
            usage("profile runs alone (wall-clock numbers must not share the machine)");
        }
        if ts_out.is_some() {
            usage("--ts-out is not produced by profile (use --prom-out / --trace-out)");
        }
        run_profile_command(
            seed,
            quick,
            shards.unwrap_or_else(default_shards),
            prom_out.as_deref(),
            trace_out.as_deref(),
            json,
        );
        return;
    }
    if picks.iter().any(|p| p == "slo") {
        if picks.len() > 1 {
            usage("slo runs alone (it owns the pod-scale runs it measures)");
        }
        if prom_out.is_some() || ts_out.is_some() {
            usage("--prom-out/--ts-out are not produced by slo (use --slo-out / --trace-out)");
        }
        run_slo_command(
            seed,
            quick,
            shards.unwrap_or_else(default_shards),
            slo_out.as_deref(),
            trace_out.as_deref(),
            json,
        );
        return;
    }
    if slo_out.is_some() {
        usage("--slo-out is only produced by the slo subcommand");
    }
    if picks.is_empty() || picks.iter().any(|p| p == "all") {
        picks = EXPERIMENTS
            .iter()
            .filter(|e| {
                !matches!(
                    **e,
                    "podscale" | "megapod" | "perf" | "profile" | "slo" | "fuzz"
                )
            })
            .map(|s| (*s).to_owned())
            .collect();
    }
    for p in &picks {
        if !EXPERIMENTS.contains(&p.as_str()) {
            usage(&format!("unknown experiment {p:?}"));
        }
    }
    if partitions.is_some() && !picks.iter().any(|p| p == "podscale" || p == "megapod") {
        usage("--partitions is only used by the podscale and megapod experiments");
    }

    // Every experiment owns an independent simulator, so they run on a
    // thread pool and join in selection order — output is byte-identical
    // to a serial run.
    // `--jobs` is validated ≥ 1 at parse time and `picks` is non-empty
    // here, so no clamping is needed.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PickOutput>>> = picks.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(picks.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(pick) = picks.get(i) else { break };
                let out = run_pick(pick, seed, repeats, shards, partitions);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });

    let mut reports: Vec<Report> = Vec::new();
    let mut telemetry: Vec<(&'static str, Json)> = Vec::new();
    let mut artifacts: Option<TelemetryArtifacts> = None;
    for slot in slots {
        let out = slot
            .into_inner()
            .expect("result slot")
            .expect("worker completed every pick");
        reports.extend(out.reports);
        telemetry.extend(out.telemetry);
        if let Some(arts) = out.artifacts {
            artifacts = Some(arts);
        }
    }
    let wants_artifacts = prom_out.is_some() || trace_out.is_some() || ts_out.is_some();
    if wants_artifacts && artifacts.is_none() {
        usage("--prom-out/--trace-out/--ts-out need a traced experiment (failover or degraded)");
    }
    if let Some(arts) = &artifacts {
        let write = |path: &Option<String>, what: &str, content: &str| {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, content) {
                    eprintln!("error: writing {what} to {path}: {e}");
                    std::process::exit(1);
                }
            }
        };
        write(&prom_out, "Prometheus metrics", &arts.prometheus);
        write(&trace_out, "Chrome trace", &arts.chrome_trace);
        write(&ts_out, "time-series CSV", &arts.timeseries_csv);
    }
    if json {
        let mut doc = Json::obj([
            ("seed", Json::u64(seed)),
            ("reports", Json::arr(reports.iter().map(Report::to_json))),
        ]);
        if !telemetry.is_empty() {
            doc.insert("telemetry", Json::obj(telemetry));
        }
        println!("{}", doc.pretty());
    } else {
        println!("UStore reproduction — paper vs simulation (seed {seed})\n");
        for rep in &reports {
            println!("{rep}");
        }
        for (name, tele) in &telemetry {
            let spans = tele
                .get("spans")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!(
                "telemetry[{name}]: {spans} spans captured (rerun with --json for the full export)"
            );
        }
    }
}

fn run_perf_command(seed: u64, quick: bool, shards: usize, bench_out: &str, json: bool) {
    let report = perf::run_perf(&perf::PerfOptions {
        seed,
        quick,
        shards,
        alloc_counter: Some(alloc_count),
    });
    let doc = report.to_bench_json();
    if let Err(e) = std::fs::write(bench_out, format!("{}\n", doc.pretty())) {
        eprintln!("error: writing bench report to {bench_out}: {e}");
        std::process::exit(1);
    }
    if json {
        println!("{}", doc.pretty());
    } else {
        println!(
            "UStore engine perf (seed {seed}, {} mode)\n",
            if quick { "quick" } else { "full" }
        );
        println!("{}", report.to_report());
        println!("bench report written to {bench_out}");
    }
    if !report.deterministic {
        eprintln!("error: two same-seed podscale runs diverged — engine is non-deterministic");
        std::process::exit(1);
    }
    if !report.sharding.digests_identical {
        eprintln!(
            "error: telemetry digests diverged across shard counts — the parallel engine broke determinism"
        );
        std::process::exit(1);
    }
}

fn run_profile_command(
    seed: u64,
    quick: bool,
    shards: usize,
    prom_out: Option<&str>,
    trace_out: Option<&str>,
    json: bool,
) {
    let run = profile::run_profile(&profile::ProfileOptions {
        seed,
        quick,
        shards,
    });
    if let Some(path) = prom_out {
        if let Err(e) = std::fs::write(path, run.prometheus()) {
            eprintln!("error: writing profiler metrics to {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", run.wallclock_trace())) {
            eprintln!("error: writing wall-clock trace to {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        println!("{}", run.to_json().pretty());
    } else {
        println!(
            "UStore engine wall-clock profile (seed {seed}, {} mode, {shards} shards)\n",
            if quick { "quick" } else { "full" }
        );
        println!("{}", run.diagnosis());
        if let Some(path) = trace_out {
            println!("wall-clock Perfetto trace written to {path}");
        }
        if let Some(path) = prom_out {
            println!("profiler metrics written to {path}");
        }
    }
    if !run.digest_matches_unprofiled {
        eprintln!(
            "error: telemetry digest changed with profiling on ({:016x} != {:016x}) — the profiler leaked into the simulation",
            run.sharded.digest, run.unprofiled_digest
        );
        std::process::exit(1);
    }
}

fn run_slo_command(
    seed: u64,
    quick: bool,
    shards: usize,
    slo_out: Option<&str>,
    trace_out: Option<&str>,
    json: bool,
) {
    let run = slo::run_slo(&slo::SloOptions {
        seed,
        quick,
        shards,
        sample_every: ustore_sim::reqtrace::DEFAULT_SAMPLE_EVERY,
        exemplars: ustore_sim::reqtrace::DEFAULT_EXEMPLARS,
    });
    if let Some(path) = slo_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", run.to_json().pretty())) {
            eprintln!("error: writing slo report to {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", run.request_trace())) {
            eprintln!("error: writing request trace to {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        println!("{}", run.to_json().pretty());
    } else {
        println!(
            "UStore request-lifecycle SLO (seed {seed}, {} mode, {shards} shards)\n",
            if quick { "quick" } else { "full" }
        );
        println!("{}", run.decomposition());
        if let Some(path) = slo_out {
            println!("slo report written to {path}");
        }
        if let Some(path) = trace_out {
            println!("request-exemplar Perfetto trace written to {path}");
        }
    }
    if !run.digest_matches_untraced {
        eprintln!(
            "error: telemetry digest changed with tracing on ({:016x} != {:016x}) — the tracer leaked into the simulation",
            run.sharded.digest, run.untraced_digest
        );
        std::process::exit(1);
    }
    if !run.leased_digest_matches {
        eprintln!(
            "error: telemetry digest changed with tracing on in the partitioned+leased run ({:016x} != {:016x})",
            run.leased.digest, run.leased_untraced_digest
        );
        std::process::exit(1);
    }
    if ustore_sim::RequestTracer::compiled_in() && !matches!(run.lease_hit_rate, Some(r) if r > 0.0)
    {
        eprintln!(
            "error: the leased run never hit the location-lease cache (hit rate {:?}) — the lease path is dead",
            run.lease_hit_rate
        );
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fuzz_command(
    seed: u64,
    quick: bool,
    shards: usize,
    campaigns: u32,
    replay: Option<u64>,
    synthetic_fail: bool,
    fuzz_out: Option<&str>,
    json: bool,
) {
    let run = fuzz::run_fuzz(&fuzz::FuzzOptions {
        seed,
        quick,
        shards,
        campaigns,
        synthetic_fail,
        replay,
    });
    if let Some(path) = fuzz_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", run.to_json().pretty())) {
            eprintln!("error: writing fuzz report to {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        println!("{}", run.to_json().pretty());
    } else {
        println!(
            "UStore scenario fuzzer (seed {seed}, {} mode, {} campaign(s))\n",
            if quick { "quick" } else { "full" },
            run.campaigns.len()
        );
        println!("{}", run.summary());
        if let Some(path) = fuzz_out {
            println!("fuzz report written to {path}");
        }
    }
    if !run.replay.matches {
        eprintln!(
            "error: replaying campaign seed {:#018x} diverged ({:016x} != {:016x}) — the campaign is non-deterministic",
            run.replay.seed, run.replay.digest, run.replay.replay_digest
        );
        std::process::exit(1);
    }
    // A real invariant violation is a bug; the planted self-test fault is
    // the expected outcome of --synthetic-fail.
    if !synthetic_fail && run.failing.is_some() {
        eprintln!(
            "error: invariant violation found (minimized schedule above; rerun with --replay)"
        );
        std::process::exit(1);
    }
    if synthetic_fail && run.failing.is_none() {
        eprintln!("error: --synthetic-fail planted a fault the oracle failed to catch");
        std::process::exit(1);
    }
}

/// Parses a campaign seed as printed by the fuzzer (`0x...`) or decimal.
fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Rejects artifact destinations that can only fail after the run: the
/// path must not be a directory and its parent directory must exist.
fn check_writable_destination(flag: &str, path: &str) {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        usage(&format!("{flag}: {path} is a directory, not a file"));
    }
    let parent = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    if !parent.is_dir() {
        usage(&format!(
            "{flag}: directory {} does not exist (cannot write {path})",
            parent.display()
        ));
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [experiment ...] [--seed N] [--repeats N] [--jobs N] [--shards N] [--partitions N] [--json]\n\
         \x20            [--prom-out FILE] [--trace-out FILE] [--ts-out FILE]\n\
         \x20      repro perf [--quick] [--seed N] [--shards N] [--bench-out FILE] [--json]\n\
         \x20      repro profile [--quick] [--seed N] [--shards N] [--prom-out FILE] [--trace-out FILE] [--json]\n\
         \x20      repro slo [--quick] [--seed N] [--shards N] [--slo-out FILE] [--trace-out FILE] [--json]\n\
         \x20      repro fuzz [--quick] [--seed N] [--shards N] [--campaigns N] [--replay SEED] [--synthetic-fail] [--fuzz-out FILE] [--json]\n\
         experiments: table1 table2 table3 table4 table5 fig5 fig6 duplex failover degraded hdfs rolling ablation podscale megapod all\n\
         (podscale — 256 hosts / 1024 disks — and megapod — 1024 hosts / 4096 disks — are not part of `all`;\n\
         run them explicitly or via `perf`; --shards selects the parallel engine, --partitions splits the\n\
         Master's metadata namespace; --jobs/--shards/--partitions must be >= 1)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
