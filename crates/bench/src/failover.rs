//! The headline end-to-end failover experiment: "the system … can recover
//! from an arbitrary single host failure in 5.8 seconds" (§I).
//!
//! A full UStore deployment runs a mounted client workload; one host is
//! killed; we measure the time from the failure until the client's IO
//! completes again, decomposed into detection (heartbeat timeout),
//! reconfiguration (Algorithm 1 + switch actuation + re-enumeration), and
//! restore (target re-export + remount).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, UStoreSystem};
use ustore_fabric::HostId;
use ustore_net::BlockDevice;
use ustore_sim::{SimTime, TraceLevel};

use crate::report::{Report, Row};

/// Measured breakdown of one failover.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverTiming {
    /// Host death to the Master declaring it dead.
    pub detection: Duration,
    /// Declaration to the Controller reporting the fabric reconfigured.
    pub reconfiguration: Duration,
    /// Reconfiguration to the client's read completing (re-export +
    /// remount).
    pub restore: Duration,
    /// Host death to client IO completing.
    pub total: Duration,
    /// Which host was killed.
    pub victim: HostId,
}

/// Runs one full failover and measures the breakdown.
///
/// `victim_index` selects which of the four hosts to kill (the paper's
/// claim is "arbitrary single host failure", including the hosts carrying
/// the active microcontroller and the primary Controller).
pub fn run_failover(seed: u64, victim_index: u32) -> FailoverTiming {
    let s = UStoreSystem::prototype(seed);
    s.sim.with_trace(|t| t.set_min_level(TraceLevel::Info));
    s.settle();
    let client = s.client("app-1");

    // Allocate and mount a space, then park some data on it.
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&s.sim, "bench", 1 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocate"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(5));
    let info = info.borrow().clone().expect("allocated");

    let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(10));
    let mounted = mounted.borrow().clone().expect("mounted");
    mounted.write(&s.sim, 0, b"payload".to_vec(), Box::new(|_, r| r.expect("write")));
    s.sim.run_until(s.sim.now() + Duration::from_secs(2));

    // Kill the host serving the space — unless the caller asked for a
    // different victim, in which case move the measurement target there
    // by simply killing that host and measuring a disk it serves.
    let victim = if victim_index == u32::MAX {
        s.runtime.attached_host(info.name.disk).expect("attached")
    } else {
        HostId(victim_index)
    };
    let serving = s.runtime.attached_host(info.name.disk) == Some(victim);
    let t0 = s.sim.now();
    s.kill_host(victim);

    // The client's next read defines "recovered" when its space was on
    // the victim; otherwise recovery is just the fabric-side completion.
    let read_done = Rc::new(Cell::new(SimTime::ZERO));
    if serving {
        let r2 = read_done.clone();
        mounted.read(&s.sim, 0, 7, Box::new(move |sim, r| {
            r.expect("read after failover");
            r2.set(sim.now());
        }));
    }
    s.sim.run_until(s.sim.now() + Duration::from_secs(30));

    // Extract the phase boundaries from the trace.
    let (declared, reconfigured) = s.sim.with_trace(|t| {
        let declared = t
            .events()
            .iter()
            .find(|e| e.at >= t0 && e.message.contains("missed heartbeats"))
            .map(|e| e.at);
        let reconfigured = t
            .events()
            .iter()
            .find(|e| e.at >= t0 && e.message.contains("failover of") && e.message.contains("complete"))
            .map(|e| e.at);
        (declared, reconfigured)
    });
    let declared = declared.expect("master detected the failure");
    let reconfigured = reconfigured.expect("fabric reconfigured");
    let end = if serving {
        let t = read_done.get();
        assert!(t > SimTime::ZERO, "client read completed");
        t
    } else {
        reconfigured
    };
    FailoverTiming {
        detection: declared.saturating_duration_since(t0),
        reconfiguration: reconfigured.saturating_duration_since(declared),
        restore: end.saturating_duration_since(reconfigured),
        total: end.saturating_duration_since(t0),
        victim,
    }
}

/// Regenerates the failover headline (averaged over all four victims).
pub fn failover_report(seed: u64) -> Report {
    let mut rows = Vec::new();
    let mut totals = Duration::ZERO;
    let mut count = 0u32;
    for v in 0..4u32 {
        let t = run_failover(seed.wrapping_add(u64::from(v)), u32::MAX);
        rows.push(Row::measured_only(
            format!("detection (victim run {v})"),
            t.detection.as_secs_f64(),
            "s",
        ));
        rows.push(Row::measured_only(
            format!("reconfiguration (run {v})"),
            t.reconfiguration.as_secs_f64(),
            "s",
        ));
        rows.push(Row::measured_only(
            format!("restore (run {v})"),
            t.restore.as_secs_f64(),
            "s",
        ));
        rows.push(Row::new(
            format!("total (run {v})"),
            5.8,
            t.total.as_secs_f64(),
            "s",
        ));
        totals += t.total;
        count += 1;
    }
    rows.push(Row::new(
        "mean total host-failure recovery",
        5.8,
        (totals / count).as_secs_f64(),
        "s",
    ));
    Report::new("§I / §VII host-failure recovery", rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_lands_near_paper_headline() {
        let t = run_failover(401, u32::MAX);
        let secs = t.total.as_secs_f64();
        assert!(
            (4.0..9.0).contains(&secs),
            "recovery {secs:.1}s vs paper 5.8s"
        );
        assert!(t.detection < Duration::from_secs(2));
        assert!(t.reconfiguration < Duration::from_secs(5));
    }

    #[test]
    fn arbitrary_victim_including_controller_host() {
        // Host 0 carries the active microcontroller and primary
        // Controller; killing it exercises both backup paths.
        let t = run_failover(402, 0);
        assert_eq!(t.victim, HostId(0));
        assert!(t.total < Duration::from_secs(12), "{:?}", t.total);
    }
}
