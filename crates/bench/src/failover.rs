//! The headline end-to-end failover experiment: "the system … can recover
//! from an arbitrary single host failure in 5.8 seconds" (§I).
//!
//! A full UStore deployment runs a mounted client workload; one host is
//! killed; we measure the time from the failure until the client's IO
//! completes again, decomposed into detection (heartbeat timeout),
//! reconfiguration (Algorithm 1 + switch actuation + re-enumeration), and
//! restore (target re-export + remount).
//!
//! The decomposition is read off the `failover` span tree the system
//! emits (root opened at the kill, `failover.detection` /
//! `failover.reconfiguration` / `failover.remount` children closed as
//! each phase hands off), not by pattern-matching trace strings; the
//! telemetry export carries the same tree machine-readably.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, UStoreSystem};
use ustore_fabric::HostId;
use ustore_net::BlockDevice;
use ustore_sim::{Json, ScraperConfig, SimTime, TraceLevel};

use crate::report::{Report, Row, TelemetryArtifacts};

/// Measured breakdown of one failover.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverTiming {
    /// Host death to the Master declaring it dead.
    pub detection: Duration,
    /// Declaration to the Controller reporting the fabric reconfigured.
    pub reconfiguration: Duration,
    /// Reconfiguration to the client's read completing (re-export +
    /// remount).
    pub restore: Duration,
    /// Host death to client IO completing.
    pub total: Duration,
    /// Which host was killed.
    pub victim: HostId,
}

/// One failover run: the measured breakdown plus the machine-readable
/// telemetry (metrics snapshot + span tree) of the system that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverRun {
    /// The phase breakdown.
    pub timing: FailoverTiming,
    /// `{"experiment", "seed", "victim", "total_s", "metrics", "spans"}`.
    pub telemetry: Json,
    /// Prometheus / Chrome-trace / CSV exports of the run.
    pub artifacts: TelemetryArtifacts,
}

/// Runs one full failover and measures the breakdown.
///
/// `victim_index` selects which of the four hosts to kill (the paper's
/// claim is "arbitrary single host failure", including the hosts carrying
/// the active microcontroller and the primary Controller).
pub fn run_failover(seed: u64, victim_index: u32) -> FailoverTiming {
    run_failover_traced(seed, victim_index).timing
}

/// Like [`run_failover`], also returning the run's telemetry.
pub fn run_failover_traced(seed: u64, victim_index: u32) -> FailoverRun {
    let s = UStoreSystem::prototype(seed);
    s.sim.with_trace(|t| t.set_min_level(TraceLevel::Info));
    s.settle();
    // Sample the registry throughout, so the run's artifacts carry the
    // failover as time series too (spikes in remounts, residency shifts).
    let scraper = s.start_telemetry(ScraperConfig::default());
    let client = s.client("app-1");

    // Allocate and mount a space, then park some data on it.
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&s.sim, "bench", 1 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocate"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(5));
    let info = info.borrow().clone().expect("allocated");

    let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(10));
    let mounted = mounted.borrow().clone().expect("mounted");
    mounted.write(
        &s.sim,
        0,
        b"payload".to_vec(),
        Box::new(|_, r| r.expect("write")),
    );
    s.sim.run_until(s.sim.now() + Duration::from_secs(2));

    // Kill the host serving the space — unless the caller asked for a
    // different victim, in which case move the measurement target there
    // by simply killing that host and measuring a disk it serves.
    let victim = if victim_index == u32::MAX {
        s.runtime.attached_host(info.name.disk).expect("attached")
    } else {
        HostId(victim_index)
    };
    let serving = s.runtime.attached_host(info.name.disk) == Some(victim);
    let t0 = s.sim.now();
    s.kill_host(victim);

    // The client's next read defines "recovered" when its space was on
    // the victim; otherwise recovery is just the fabric-side completion.
    // The read's completion also closes the `failover.remount` phase and
    // the root span, so the span tree's child durations sum exactly to
    // the end-to-end recovery time.
    let read_done = Rc::new(Cell::new(SimTime::ZERO));
    if serving {
        let r2 = read_done.clone();
        mounted.read(
            &s.sim,
            0,
            7,
            Box::new(move |sim, r| {
                r.expect("read after failover");
                r2.set(sim.now());
                if let Some(remount) = sim.find_open_span("failover.remount") {
                    sim.span_end(remount);
                }
                if let Some(root) = sim.find_open_span("failover") {
                    sim.span_end(root);
                }
            }),
        );
    }
    s.sim.run_until(s.sim.now() + Duration::from_secs(30));

    // Extract the phase boundaries from the failover span tree.
    let (detection, reconfiguration, remount) = s.sim.with_spans(|t| {
        let root = t
            .by_name("failover")
            .filter(|sp| sp.start >= t0)
            .last()
            .expect("failover root span")
            .id;
        let child = |n: &str| t.children(root).find(|c| &*c.name == n).cloned();
        (
            child("failover.detection"),
            child("failover.reconfiguration"),
            child("failover.remount"),
        )
    });
    let declared = detection
        .expect("detection span")
        .end
        .expect("master detected the failure");
    let reconfigured = reconfiguration
        .expect("reconfiguration span")
        .end
        .expect("fabric reconfigured");
    let end = if serving {
        let t = read_done.get();
        assert!(t > SimTime::ZERO, "client read completed");
        let r = remount.expect("remount span");
        assert_eq!(r.end, Some(t), "remount phase closes at the client's read");
        t
    } else {
        reconfigured
    };

    // Snapshot the telemetry: per-disk power-state residency gauges plus
    // the full span log.
    s.runtime.publish_residency(&s.sim);
    let telemetry = Json::obj([
        ("experiment", Json::str("failover")),
        ("seed", Json::u64(seed)),
        ("victim", Json::str(victim.to_string())),
        (
            "total_s",
            Json::f64(end.saturating_duration_since(t0).as_secs_f64()),
        ),
        ("metrics", s.sim.metrics_snapshot().to_json()),
        ("spans", s.sim.with_spans(|t| t.to_json())),
    ]);
    let artifacts = TelemetryArtifacts::capture(&s.sim, &scraper);
    FailoverRun {
        timing: FailoverTiming {
            detection: declared.saturating_duration_since(t0),
            reconfiguration: reconfigured.saturating_duration_since(declared),
            restore: end.saturating_duration_since(reconfigured),
            total: end.saturating_duration_since(t0),
            victim,
        },
        telemetry,
        artifacts,
    }
}

/// Regenerates the failover headline (averaged over all four victims).
pub fn failover_report(seed: u64) -> Report {
    failover_report_traced(seed).0
}

/// Like [`failover_report`], also returning the first run's telemetry and
/// exported artifacts.
pub fn failover_report_traced(seed: u64) -> (Report, Json, TelemetryArtifacts) {
    let mut rows = Vec::new();
    let mut totals = Duration::ZERO;
    let mut count = 0u32;
    let mut telemetry = None;
    for v in 0..4u32 {
        let run = run_failover_traced(seed.wrapping_add(u64::from(v)), u32::MAX);
        let t = run.timing.clone();
        if telemetry.is_none() {
            telemetry = Some((run.telemetry, run.artifacts));
        }
        rows.push(Row::measured_only(
            format!("detection (victim run {v})"),
            t.detection.as_secs_f64(),
            "s",
        ));
        rows.push(Row::measured_only(
            format!("reconfiguration (run {v})"),
            t.reconfiguration.as_secs_f64(),
            "s",
        ));
        rows.push(Row::measured_only(
            format!("restore (run {v})"),
            t.restore.as_secs_f64(),
            "s",
        ));
        rows.push(Row::new(
            format!("total (run {v})"),
            5.8,
            t.total.as_secs_f64(),
            "s",
        ));
        totals += t.total;
        count += 1;
    }
    rows.push(Row::new(
        "mean total host-failure recovery",
        5.8,
        (totals / count).as_secs_f64(),
        "s",
    ));
    let (tele, artifacts) = telemetry.expect("at least one run");
    (
        Report::new("§I / §VII host-failure recovery", rows),
        tele,
        artifacts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_lands_near_paper_headline() {
        let t = run_failover(401, u32::MAX);
        let secs = t.total.as_secs_f64();
        assert!(
            (4.0..9.0).contains(&secs),
            "recovery {secs:.1}s vs paper 5.8s"
        );
        assert!(t.detection < Duration::from_secs(2));
        assert!(t.reconfiguration < Duration::from_secs(5));
    }

    #[test]
    fn telemetry_span_tree_sums_to_total_and_has_residency_gauges() {
        let run = run_failover_traced(403, u32::MAX);
        let tele = &run.telemetry;

        // The failover is a parented span tree whose phase durations sum
        // to the end-to-end recovery time.
        let spans = tele
            .get("spans")
            .and_then(Json::as_arr)
            .expect("spans array");
        let root = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("failover"))
            .expect("failover root span");
        let root_id = root.get("id").and_then(Json::as_f64).expect("root id");
        let dur = |s: &Json| {
            s.get("end_ns").and_then(Json::as_f64).expect("closed span")
                - s.get("start_ns").and_then(Json::as_f64).expect("start")
        };
        let phases: Vec<&Json> = spans
            .iter()
            .filter(|s| s.get("parent").and_then(Json::as_f64) == Some(root_id))
            .collect();
        let names: Vec<&str> = phases
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            names,
            [
                "failover.detection",
                "failover.reconfiguration",
                "failover.remount"
            ],
            "phase children in order"
        );
        let phase_sum: f64 = phases.iter().map(|s| dur(s)).sum();
        let root_dur = dur(root);
        assert!(
            (phase_sum - root_dur).abs() < 1e-6,
            "phases {phase_sum} ns vs root {root_dur} ns"
        );
        assert!(
            (root_dur / 1e9 - run.timing.total.as_secs_f64()).abs() < 1e-6,
            "root span is the reported end-to-end time"
        );

        // Per-disk power-state residency gauges are present.
        let gauges = tele
            .get("metrics")
            .and_then(|m| m.get("gauges"))
            .expect("gauges object");
        assert!(
            gauges.get("disk0/power.residency.idle_s").is_some()
                || gauges.get("disk0/power.residency.active_s").is_some(),
            "disk0 residency gauge exported"
        );
    }

    #[test]
    fn arbitrary_victim_including_controller_host() {
        // Host 0 carries the active microcontroller and primary
        // Controller; killing it exercises both backup paths.
        let t = run_failover(402, 0);
        assert_eq!(t.victim, HostId(0));
        assert!(t.total < Duration::from_secs(12), "{:?}", t.total);
    }
}
