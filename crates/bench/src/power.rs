//! Power experiments: Tables III, IV, V, the cost Table I, and the
//! rolling spin-up ablation.
//!
//! Tables III and IV are measured from the running component models (the
//! energy meters integrate power over virtual time, as the paper's
//! wattmeter does); Tables I and V come from the composition models in
//! `ustore-cost`.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use ustore_cost::{table1 as cost_table1, table5 as power_table5, PowerCatalog, PriceCatalog};
use ustore_disk::{Disk, DiskProfile};
use ustore_fabric::FabricRuntime;
use ustore_sim::Sim;
use ustore_usb::UsbProfile;
use ustore_workload::{disk_issuer, AccessSpec, Worker};

use crate::report::{Report, Row};

/// Measures one disk's average power in a given mode over a window.
fn disk_watts(profile: DiskProfile, mode: &str, seed: u64) -> f64 {
    let sim = Sim::new(seed);
    let disk = Disk::new(&sim, "d", profile, false);
    let window = Duration::from_secs(60);
    match mode {
        "spin_down" => disk.spin_down(&sim),
        "idle" => {}
        "rw" => {
            let worker = Worker::new(
                AccessSpec::new(4 << 20, 50, false),
                sim.fork_rng("w"),
                0,
                disk_issuer(disk.clone()),
            );
            worker.run(&sim, window);
        }
        other => panic!("unknown mode {other}"),
    }
    sim.run_until(sim.now() + window);
    // Read the measurement off the published metrics rather than the
    // model's accessor — the bench consumes the same telemetry any other
    // client of the registry sees.
    disk.publish_residency(&sim);
    let m = sim.metrics_snapshot();
    m.gauge("d", "power.energy_j").expect("energy gauge") / window.as_secs_f64()
}

/// Regenerates Table III (one disk's power, SATA vs USB bridge).
pub fn table3(seed: u64) -> Report {
    let paper = [
        ("SATA spin down", DiskProfile::sata(), "spin_down", 0.05),
        ("SATA idle", DiskProfile::sata(), "idle", 4.71),
        ("SATA read/write", DiskProfile::sata(), "rw", 6.66),
        (
            "USB bridge spin down",
            DiskProfile::usb_bridge(),
            "spin_down",
            1.56,
        ),
        ("USB bridge idle", DiskProfile::usb_bridge(), "idle", 5.76),
        (
            "USB bridge read/write",
            DiskProfile::usb_bridge(),
            "rw",
            7.56,
        ),
    ];
    let rows = paper
        .into_iter()
        .map(|(label, profile, mode, p)| Row::new(label, p, disk_watts(profile, mode, seed), "W"))
        .collect();
    Report::new("Table III (one disk's power)", rows)
}

/// Regenerates Table IV (hub power vs connected disks).
pub fn table4() -> Report {
    let paper = [0.21, 1.06, 1.23, 1.47, 1.67];
    let profile = UsbProfile::prototype();
    let rows = paper
        .iter()
        .enumerate()
        .map(|(n, p)| Row::new(format!("hub with {n} disks"), *p, profile.hub_power(n), "W"))
        .collect();
    Report::new("Table IV (hub power)", rows)
}

/// Regenerates Table V (system power comparison).
pub fn table5() -> Report {
    let rows = power_table5(&PowerCatalog::default())
        .into_iter()
        .flat_map(|r| {
            let paper = match r.name {
                "DD860/ES30" => (222.5, 83.5),
                "Pergamum" => (193.5, 28.9),
                "UStore" => (166.8, 22.1),
                _ => unreachable!("unknown system"),
            };
            vec![
                Row::new(format!("{} spinning", r.name), paper.0, r.spinning_w, "W"),
                Row::new(
                    format!("{} powered off", r.name),
                    paper.1,
                    r.powered_off_w,
                    "W",
                ),
            ]
        })
        .collect();
    Report::new("Table V (power comparison, 16 disks)", rows)
}

/// Regenerates Table I (CapEx comparison, 10 PB).
pub fn table1() -> Report {
    let paper_capex = [3340.0, 1748.0, 756.0, 598.0, 456.0];
    let paper_attex = [Some(1525.0), None, Some(415.0), Some(257.0), Some(115.0)];
    let rows = cost_table1(&PriceCatalog::default(), 10.0)
        .into_iter()
        .zip(paper_capex.iter().zip(paper_attex.iter()))
        .flat_map(|(r, (pc, pa))| {
            let mut v = vec![Row::new(
                format!("{} CapEx", r.name),
                *pc,
                r.capex / 1000.0,
                "$k",
            )];
            if let (Some(pa), Some(attex)) = (pa, r.attex) {
                v.push(Row::new(
                    format!("{} AttEx", r.name),
                    *pa,
                    attex / 1000.0,
                    "$k",
                ));
            }
            v
        })
        .collect();
    Report::new("Table I (CapEx of 10 PB)", rows)
}

/// Ablation: peak unit power during spin-up vs the rolling stagger.
pub fn rolling_spin_up_ablation(seed: u64) -> Report {
    let mut rows = Vec::new();
    for stagger_ms in [0u64, 500, 2000, 4000] {
        let sim = Sim::new(seed.wrapping_add(stagger_ms));
        let rt = FabricRuntime::prototype(&sim);
        sim.run_until(sim.now() + Duration::from_secs(10));
        rt.power_off_all_disks(&sim);
        sim.run_until(sim.now() + Duration::from_secs(3));
        let peak = Rc::new(Cell::new(0.0f64));
        let p = peak.clone();
        let rt2 = rt.clone();
        sim.every(
            Duration::from_millis(50),
            Duration::from_millis(50),
            move |_| {
                p.set(p.get().max(rt2.unit_power_w()));
            },
        );
        let t0 = sim.now();
        rt.rolling_spin_up(&sim, Duration::from_millis(stagger_ms));
        sim.run_until(sim.now() + Duration::from_secs(80));
        let ready_all = rt.disk_ids().iter().all(|d| rt.disk_ready(*d));
        assert!(ready_all, "all disks back after spin-up");
        let _ = t0;
        rows.push(Row::measured_only(
            format!("peak W @ stagger {stagger_ms} ms"),
            peak.get(),
            "W",
        ));
        // Power-state residency from the metrics registry: total
        // spinning-up seconds across the unit (grows with the stagger).
        rt.publish_residency(&sim);
        let snap = sim.metrics_snapshot();
        let spin_s: f64 = rt
            .disk_ids()
            .iter()
            .filter_map(|d| snap.gauge(&d.to_string(), "power.residency.spinning_up_s"))
            .sum();
        rows.push(Row::measured_only(
            format!("spin-up disk-seconds @ stagger {stagger_ms} ms"),
            spin_s,
            "s",
        ));
    }
    Report::new("Ablation: rolling spin-up peak power", rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_measured_matches_paper() {
        let rep = table3(601);
        assert!(
            rep.worst_error_pct().expect("has paper values") < 6.0,
            "worst error {:?}%\n{rep}",
            rep.worst_error_pct()
        );
    }

    #[test]
    fn table4_and_5_match() {
        assert!(table4().worst_error_pct().expect("paper") < 5.0);
        assert!(table5().worst_error_pct().expect("paper") < 5.0);
    }

    #[test]
    fn table1_matches() {
        let rep = table1();
        assert!(
            rep.worst_error_pct().expect("paper") < 11.0,
            "worst {:?}\n{rep}",
            rep.worst_error_pct()
        );
    }

    #[test]
    fn rolling_spin_up_cuts_peak_power() {
        let rep = rolling_spin_up_ablation(602);
        let peaks: Vec<f64> = rep
            .rows
            .iter()
            .filter(|r| r.label.starts_with("peak W"))
            .map(|r| r.measured)
            .collect();
        let all_at_once = peaks[0];
        let staggered = *peaks.last().expect("rows");
        assert!(
            staggered < all_at_once * 0.45,
            "staggered {staggered:.0} W vs simultaneous {all_at_once:.0} W"
        );
        // Simultaneous spin-up approaches 16 x 24 W (+ fabric).
        assert!(all_at_once > 300.0, "simultaneous peak {all_at_once:.0} W");
    }
}
