//! Wall-clock engine performance harness (`repro perf`).
//!
//! Every experiment in this reproduction funnels through `ustore-sim`'s
//! event loop, so the engine's wall-clock throughput bounds how big a
//! deployment the harness can explore. This module measures it with two
//! scenarios:
//!
//! - **degraded** — the PR 2 watchdog scenario: a 16-disk unit with the
//!   full telemetry pipeline on. Telemetry-heavy, the historical hot spot.
//! - **podscale** — [`crate::podscale`]: 64 units / 256 hosts / 1024
//!   disks under one Master, mixed archival workload. The scale target.
//! - **sharding** — the same pod on the sharded parallel engine
//!   ([`crate::podscale::run_podscale_sharded`]) at 1, 2, 4, … threads
//!   (digests must be identical at every count), plus the 4096-disk
//!   [`crate::megapod`] at the largest count.
//!
//! For each it reports **events/sec** (engine events processed per
//! wall-clock second), **peak live queue depth**, and — when the caller
//! provides an allocation counter (the `repro` binary installs a counting
//! global allocator) — **allocations per event**. The podscale scenario
//! runs twice with the same seed and the two telemetry digests must be
//! identical: the determinism guard for the engine's interning and heap
//! rewrites.
//!
//! [`PRE_OVERHAUL_BASELINE_QUICK`]/[`PRE_OVERHAUL_BASELINE_FULL`] pin the
//! numbers this same harness measured
//! against the pre-overhaul engine (string-keyed metrics, tombstone
//! cancellation), so `BENCH_podscale.json` always carries a before/after
//! pair and CI can print the trajectory.

use std::time::Instant;

use ustore_sim::Json;

use ustore::TracePlan;

use crate::degraded;
use crate::fuzz;
use crate::megapod;
use crate::podscale::{
    run_podscale, run_podscale_profiled, run_podscale_sharded, run_podscale_sharded_profiled,
    run_podscale_sharded_traced, run_podscale_traced, PodConfig,
};
use crate::profile;
use crate::report::{Report, Row};
use crate::slo;

/// Perf-run options.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Simulation seed (shared by every measured scenario).
    pub seed: u64,
    /// Quick mode: fewer repetitions and the shorter podscale workload
    /// window (same 1024-disk pod). This is what CI runs.
    pub quick: bool,
    /// Maximum executor threads for the shard-scaling sweep (the sweep
    /// measures powers of two up to this, always including 1 and this
    /// value; the megapod runs at this value).
    pub shards: usize,
    /// Returns the process-lifetime allocation count; measured around each
    /// run to derive allocations/event. `None` leaves the metric out.
    pub alloc_counter: Option<fn() -> u64>,
}

/// One scenario's wall-clock measurement (best of the repetitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSample {
    /// Virtual seconds simulated in one run.
    pub sim_seconds: f64,
    /// Engine events processed in one run.
    pub events: u64,
    /// Wall-clock seconds for the best run.
    pub wall_seconds: f64,
    /// `events / wall_seconds` for the best run.
    pub events_per_sec: f64,
    /// Peak live (non-cancelled) event-queue depth.
    pub peak_queue_depth: f64,
    /// Heap allocations per processed event, if a counter was provided.
    pub allocs_per_event: Option<f64>,
}

/// Numbers a historical engine scored on this same harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Which engine produced these numbers.
    pub engine: &'static str,
    /// `degraded` events/sec.
    pub degraded_events_per_sec: f64,
    /// `degraded` allocations/event.
    pub degraded_allocs_per_event: f64,
    /// Quick-mode podscale events/sec.
    pub podscale_events_per_sec: f64,
    /// Quick-mode podscale allocations/event.
    pub podscale_allocs_per_event: f64,
}

/// Measured by this harness in quick mode against the engine as of PR 3
/// (commit 18004b5) — string-keyed `BTreeMap<(String,String)>` metrics on
/// every `count`/`observe`, `format!` span/trace mirroring,
/// tombstone-`HashSet` event cancellation, unsized heap.
pub const PRE_OVERHAUL_BASELINE_QUICK: Baseline = Baseline {
    engine: "pre-overhaul (PR 3, commit 18004b5)",
    degraded_events_per_sec: 344_507.0,
    degraded_allocs_per_event: 19.67,
    podscale_events_per_sec: 299_407.0,
    podscale_allocs_per_event: 20.20,
};

/// Full-mode numbers for the same pre-overhaul engine. The full pod runs
/// 20 virtual seconds with 32 clients, so the unreclaimed cancellation
/// tombstones pile up and drag events/sec well below the quick run — the
/// clearest symptom of the leak the overhaul removes.
pub const PRE_OVERHAUL_BASELINE_FULL: Baseline = Baseline {
    engine: "pre-overhaul (PR 3, commit 18004b5)",
    degraded_events_per_sec: 364_630.0,
    degraded_allocs_per_event: 19.67,
    podscale_events_per_sec: 119_191.0,
    podscale_allocs_per_event: 21.06,
};

/// The baseline matching a run mode (quick vs full workloads differ, so
/// speedups must compare like with like).
pub fn pre_overhaul_baseline(quick: bool) -> &'static Baseline {
    if quick {
        &PRE_OVERHAUL_BASELINE_QUICK
    } else {
        &PRE_OVERHAUL_BASELINE_FULL
    }
}

/// One point of the shard-scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardSample {
    /// Executor threads.
    pub shards: usize,
    /// Wall-clock measurement of the run.
    pub sample: PerfSample,
    /// Telemetry digest of the run (must match every other point).
    pub digest: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Inner synchronization rounds executed.
    pub sync_rounds: u64,
    /// Envelopes routed across world boundaries.
    pub cross_messages: u64,
    /// Sum of per-world peak queue depths (whole-sim pressure; the
    /// `sample`'s `peak_queue_depth` is the per-shard max).
    pub peak_queue_depth_sum: f64,
}

/// The shard-scaling section of the perf report.
#[derive(Debug, Clone)]
pub struct ShardScaling {
    /// Unit-group worlds the pod was decomposed into.
    pub groups: u32,
    /// One measurement per shard count, ascending; `counts[0]` is the
    /// serial (1-thread) run.
    pub counts: Vec<ShardSample>,
    /// Whether every point produced the same telemetry digest — the
    /// determinism gate for the parallel engine.
    pub digests_identical: bool,
    /// `events_per_sec` at the largest shard count over the serial run.
    pub speedup_vs_serial: f64,
    /// Classic single-threaded engine wall time over the *best* (fastest)
    /// sharded point's wall time: how the parallel engine fares against
    /// the engine it is supposed to beat, not just against its own serial
    /// mode (shards-1 being 4x off classic used to hide behind
    /// `speedup_vs_serial`).
    pub speedup_vs_classic: f64,
    /// Serial (shards = 1) sharded wall time over the classic
    /// single-threaded engine's wall time on the same pod: what the epoch
    /// machinery itself costs before parallelism pays it back.
    pub shard_overhead_vs_classic: f64,
    /// The megapod (4096 disks) measured at the largest shard count.
    pub megapod: ShardSample,
    /// The megapod shape measured.
    pub megapod_pod: PodConfig,
}

/// The full perf report.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Options the run used.
    pub quick: bool,
    /// Seed the run used.
    pub seed: u64,
    /// The degraded-scenario measurement.
    pub degraded: PerfSample,
    /// The podscale measurement.
    pub podscale: PerfSample,
    /// Pod shape measured.
    pub pod: PodConfig,
    /// Telemetry digest of the podscale run (hex).
    pub podscale_digest: u64,
    /// Whether two same-seed podscale runs produced identical digests.
    pub deterministic: bool,
    /// `degraded` events/sec relative to [`PRE_OVERHAUL_BASELINE`].
    pub degraded_speedup: f64,
    /// podscale events/sec relative to [`PRE_OVERHAUL_BASELINE`].
    pub podscale_speedup: f64,
    /// The sharded-engine scaling sweep (pod at 1..=N shards + megapod).
    pub sharding: ShardScaling,
    /// The wall-clock profiler section: profiled sharded + classic runs,
    /// phase coverage, and the profiling-on digest gate
    /// ([`crate::profile::profile_section`]).
    pub profile: Json,
    /// The request-lifecycle SLO section: traced sharded + classic runs'
    /// TTFB decomposition snapshots and the tracing-on digest gate
    /// ([`crate::slo::slo_section`]).
    pub slo: Json,
    /// The control-plane section: the partitioned + leased pod's partition
    /// count, per-partition replicated-log lengths, lease hit rate, and
    /// the client-observed `master_lookup` distribution before/after
    /// ([`crate::slo::metadata_section`]).
    pub metadata: Json,
    /// The fault-model section: a reference fuzz campaign set's
    /// durability nines, repair bandwidth, scrub coverage, watchdog FP/FN
    /// rates, and the replay determinism gate
    /// ([`crate::fuzz::faults_section`]).
    pub faults: Json,
}

fn measure<R>(
    iters: u32,
    alloc_counter: Option<fn() -> u64>,
    mut run: impl FnMut() -> R,
    stats: impl Fn(&R) -> (f64, u64, f64),
) -> (PerfSample, R) {
    let mut best: Option<(PerfSample, R)> = None;
    for _ in 0..iters.max(1) {
        let allocs_before = alloc_counter.map(|f| f());
        let t0 = Instant::now();
        let out = run();
        let wall = t0.elapsed();
        let allocs = alloc_counter.map(|f| f() - allocs_before.unwrap_or(0));
        let (sim_seconds, events, peak_queue_depth) = stats(&out);
        let wall_seconds = wall.as_secs_f64().max(1e-9);
        let sample = PerfSample {
            sim_seconds,
            events,
            wall_seconds,
            events_per_sec: events as f64 / wall_seconds,
            peak_queue_depth,
            allocs_per_event: allocs.map(|a| a as f64 / events.max(1) as f64),
        };
        let better = best
            .as_ref()
            .is_none_or(|(b, _)| sample.events_per_sec > b.events_per_sec);
        if better {
            best = Some((sample, out));
        }
    }
    best.expect("at least one iteration")
}

/// Runs the perf harness: degraded (repeated, best run kept) and podscale
/// (twice, same seed, digests compared).
pub fn run_perf(opts: &PerfOptions) -> PerfReport {
    // The degraded run costs tens of milliseconds, so best-of-N with a
    // healthy N is nearly free and is what rejects scheduler noise on a
    // shared machine; the expensive pod run stays at its own cadence
    // below.
    let iters = if opts.quick { 3 } else { 8 };
    let (degraded_sample, _) = measure(
        iters,
        opts.alloc_counter,
        || degraded::run_degraded_traced(opts.seed),
        |run| {
            (
                run.timing.total.as_secs_f64(),
                run.events_processed,
                run.peak_queue_depth,
            )
        },
    );
    let pod = if opts.quick {
        PodConfig::quick()
    } else {
        PodConfig::pod()
    };
    // Run the pod twice with the same seed: the second run both feeds the
    // best-of measurement and proves telemetry determinism.
    let (podscale_sample, first) = measure(
        1,
        opts.alloc_counter,
        || run_podscale(opts.seed, &pod),
        |run| (run.sim_seconds, run.events, run.peak_queue_depth),
    );
    let (podscale_sample2, second) = measure(
        1,
        opts.alloc_counter,
        || run_podscale(opts.seed, &pod),
        |run| (run.sim_seconds, run.events, run.peak_queue_depth),
    );
    let deterministic = first.digest == second.digest && first.events == second.events;
    let podscale_best = if podscale_sample2.events_per_sec > podscale_sample.events_per_sec {
        podscale_sample2
    } else {
        podscale_sample
    };
    // Shard-scaling sweep: the same pod on the sharded engine at 1, 2, 4,
    // ... threads (every digest must match), then the megapod at the
    // largest count. The sweep reuses the pod shape, so "events" differ
    // from the single-world runs above (different decomposition) but are
    // identical across the sweep.
    let max_shards = opts.shards.max(1);
    let mut shard_counts: Vec<usize> = vec![1];
    let mut c = 2;
    while c <= max_shards {
        shard_counts.push(c);
        c *= 2;
    }
    if max_shards > 1 && !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }
    // Best-of-3 per sweep point: sharded wall times are compared against
    // the classic engine's (also best-of), and a single noisy sample on a
    // shared or virtualized runner would otherwise dominate the
    // `shard_overhead_vs_classic` gate.
    let shard_iters = if opts.quick { 2 } else { 3 };
    let shard_sample = |pod: &PodConfig, shards: usize| {
        let (sample, run) = measure(
            shard_iters,
            opts.alloc_counter,
            || run_podscale_sharded(opts.seed, pod, shards),
            |run| (run.sim_seconds, run.events, run.peak_queue_depth),
        );
        let stats = run.sharding.expect("sharded run carries shard stats");
        ShardSample {
            shards,
            sample,
            digest: run.digest,
            epochs: stats.epochs,
            sync_rounds: stats.sync_rounds,
            cross_messages: stats.cross_messages,
            peak_queue_depth_sum: stats.peak_queue_depth_sum,
        }
    };
    let counts: Vec<ShardSample> = shard_counts
        .iter()
        .map(|&s| shard_sample(&pod, s))
        .collect();
    let digests_identical = counts.windows(2).all(|w| w[0].digest == w[1].digest);
    let speedup_vs_serial = counts
        .last()
        .expect("sweep has points")
        .sample
        .events_per_sec
        / counts[0].sample.events_per_sec;
    let megapod_pod = if opts.quick {
        megapod::megapod_quick()
    } else {
        megapod::megapod()
    };
    let megapod = shard_sample(&megapod_pod, max_shards);
    let shard_overhead_vs_classic = counts[0].sample.wall_seconds / podscale_best.wall_seconds;
    let best_sharded_wall = counts
        .iter()
        .map(|c| c.sample.wall_seconds)
        .fold(f64::INFINITY, f64::min);
    let speedup_vs_classic = podscale_best.wall_seconds / best_sharded_wall;
    let sharding = ShardScaling {
        groups: pod.world_groups,
        digests_identical,
        speedup_vs_serial,
        speedup_vs_classic,
        shard_overhead_vs_classic,
        megapod,
        megapod_pod,
        counts,
    };

    // The profiler section: one profiled sharded run at the largest count
    // (its digest must match the unprofiled sweep point) plus a profiled
    // classic run.
    let prof_sharded = run_podscale_sharded_profiled(opts.seed, &pod, max_shards);
    let prof_classic = run_podscale_profiled(opts.seed, &pod);
    let unprofiled_digest = sharding.counts.last().expect("sweep has points").digest;
    let profile = profile::profile_section(&prof_sharded, &prof_classic, Some(unprofiled_digest));

    // The SLO section: one traced sharded run at the largest count (its
    // digest must match the unprofiled sweep point — tracing must not
    // perturb the simulation) plus a traced classic run.
    let slo_sharded =
        run_podscale_sharded_traced(opts.seed, &pod, max_shards, TracePlan::default());
    let slo_classic = run_podscale_traced(opts.seed, &pod, TracePlan::default());
    let slo = slo::slo_section(&slo_sharded, &slo_classic, Some(unprofiled_digest));

    // The control-plane section: the same pod with per-world metadata
    // partitions and client location leases, traced so the report carries
    // the master_lookup before/after and the lease hit rate alongside the
    // per-partition replicated-log lengths.
    let leased_pod = pod.clone().partitioned();
    let leased_run =
        run_podscale_sharded_traced(opts.seed, &leased_pod, max_shards, TracePlan::default());
    let metadata = slo::metadata_section(slo_sharded.slo.as_ref(), &leased_run, &leased_pod);

    // The fault-model section: a small reference fuzz campaign set under
    // the empirical fault model, including its replay determinism gate.
    let fuzz_run = fuzz::run_fuzz(&fuzz::FuzzOptions {
        seed: opts.seed,
        quick: opts.quick,
        shards: max_shards,
        campaigns: if opts.quick { 2 } else { 4 },
        synthetic_fail: false,
        replay: None,
    });
    let faults = fuzz::faults_section(&fuzz_run);

    let base = pre_overhaul_baseline(opts.quick);
    let speedup = |cur: f64, b: f64| if b > 0.0 { cur / b } else { f64::NAN };
    PerfReport {
        quick: opts.quick,
        seed: opts.seed,
        degraded: degraded_sample,
        podscale: podscale_best,
        pod,
        podscale_digest: first.digest,
        deterministic,
        degraded_speedup: speedup(degraded_sample.events_per_sec, base.degraded_events_per_sec),
        podscale_speedup: speedup(podscale_best.events_per_sec, base.podscale_events_per_sec),
        sharding,
        profile,
        slo,
        metadata,
        faults,
    }
}

fn sample_json(s: &PerfSample) -> Json {
    Json::obj([
        ("sim_seconds", Json::f64(s.sim_seconds)),
        ("events", Json::u64(s.events)),
        ("wall_seconds", Json::f64(s.wall_seconds)),
        ("events_per_sec", Json::f64(s.events_per_sec)),
        ("peak_queue_depth", Json::f64(s.peak_queue_depth)),
        (
            "allocs_per_event",
            s.allocs_per_event.map_or(Json::Null, Json::f64),
        ),
    ])
}

fn shard_sample_json(s: &ShardSample) -> Json {
    Json::obj([
        ("shards", Json::u64(s.shards as u64)),
        ("sim_seconds", Json::f64(s.sample.sim_seconds)),
        ("events", Json::u64(s.sample.events)),
        ("wall_seconds", Json::f64(s.sample.wall_seconds)),
        ("events_per_sec", Json::f64(s.sample.events_per_sec)),
        ("epochs", Json::u64(s.epochs)),
        ("sync_rounds", Json::u64(s.sync_rounds)),
        ("cross_messages", Json::u64(s.cross_messages)),
        ("peak_queue_depth_max", Json::f64(s.sample.peak_queue_depth)),
        ("peak_queue_depth_sum", Json::f64(s.peak_queue_depth_sum)),
        ("digest", Json::str(format!("{:016x}", s.digest))),
    ])
}

impl PerfReport {
    /// The `BENCH_podscale.json` document.
    pub fn to_bench_json(&self) -> Json {
        let b = pre_overhaul_baseline(self.quick);
        Json::obj([
            ("schema", Json::str("ustore-bench-podscale-v7")),
            ("mode", Json::str(if self.quick { "quick" } else { "full" })),
            ("seed", Json::u64(self.seed)),
            (
                "pod",
                Json::obj([
                    ("units", Json::u64(u64::from(self.pod.units))),
                    ("hosts", Json::u64(u64::from(self.pod.hosts()))),
                    ("disks", Json::u64(u64::from(self.pod.disks()))),
                    ("clients", Json::u64(u64::from(self.pod.clients))),
                ]),
            ),
            (
                "current",
                Json::obj([
                    ("degraded", sample_json(&self.degraded)),
                    ("podscale", sample_json(&self.podscale)),
                ]),
            ),
            (
                "baseline",
                Json::obj([
                    ("engine", Json::str(b.engine)),
                    (
                        "degraded_events_per_sec",
                        Json::f64(b.degraded_events_per_sec),
                    ),
                    (
                        "degraded_allocs_per_event",
                        Json::f64(b.degraded_allocs_per_event),
                    ),
                    (
                        "podscale_events_per_sec",
                        Json::f64(b.podscale_events_per_sec),
                    ),
                    (
                        "podscale_allocs_per_event",
                        Json::f64(b.podscale_allocs_per_event),
                    ),
                ]),
            ),
            (
                "speedup",
                Json::obj([
                    ("degraded_events_per_sec", Json::f64(self.degraded_speedup)),
                    ("podscale_events_per_sec", Json::f64(self.podscale_speedup)),
                ]),
            ),
            (
                "determinism",
                Json::obj([
                    (
                        "podscale_digest",
                        Json::str(format!("{:016x}", self.podscale_digest)),
                    ),
                    ("two_runs_identical", Json::Bool(self.deterministic)),
                ]),
            ),
            (
                "sharding",
                Json::obj([
                    ("groups", Json::u64(u64::from(self.sharding.groups))),
                    (
                        "counts",
                        Json::arr(self.sharding.counts.iter().map(shard_sample_json)),
                    ),
                    (
                        "digests_identical",
                        Json::Bool(self.sharding.digests_identical),
                    ),
                    (
                        "speedup_vs_serial",
                        Json::f64(self.sharding.speedup_vs_serial),
                    ),
                    (
                        "speedup_vs_classic",
                        Json::f64(self.sharding.speedup_vs_classic),
                    ),
                    (
                        "shard_overhead_vs_classic",
                        Json::f64(self.sharding.shard_overhead_vs_classic),
                    ),
                    (
                        "megapod",
                        Json::obj([
                            (
                                "units",
                                Json::u64(u64::from(self.sharding.megapod_pod.units)),
                            ),
                            (
                                "hosts",
                                Json::u64(u64::from(self.sharding.megapod_pod.hosts())),
                            ),
                            (
                                "disks",
                                Json::u64(u64::from(self.sharding.megapod_pod.disks())),
                            ),
                            (
                                "groups",
                                Json::u64(u64::from(self.sharding.megapod_pod.world_groups)),
                            ),
                            ("run", shard_sample_json(&self.sharding.megapod)),
                        ]),
                    ),
                ]),
            ),
            ("profile", self.profile.clone()),
            ("slo", self.slo.clone()),
            ("metadata", self.metadata.clone()),
            ("faults", self.faults.clone()),
        ])
    }

    /// Human-readable report rows.
    pub fn to_report(&self) -> Report {
        let mut rows = vec![
            Row::measured_only("degraded events/sec", self.degraded.events_per_sec, ""),
            Row::measured_only(
                "degraded peak queue depth",
                self.degraded.peak_queue_depth,
                "",
            ),
            Row::measured_only("podscale events/sec", self.podscale.events_per_sec, ""),
            Row::measured_only(
                "podscale peak queue depth",
                self.podscale.peak_queue_depth,
                "",
            ),
            Row::measured_only("podscale disks", f64::from(self.pod.disks()), ""),
            Row::measured_only(
                "podscale deterministic",
                if self.deterministic { 1.0 } else { 0.0 },
                "",
            ),
        ];
        if let Some(a) = self.degraded.allocs_per_event {
            rows.push(Row::measured_only("degraded allocs/event", a, ""));
        }
        if let Some(a) = self.podscale.allocs_per_event {
            rows.push(Row::measured_only("podscale allocs/event", a, ""));
        }
        if pre_overhaul_baseline(self.quick).degraded_events_per_sec > 0.0 {
            rows.push(Row::new(
                "degraded speedup vs pre-overhaul",
                1.0,
                self.degraded_speedup,
                "x",
            ));
            rows.push(Row::new(
                "podscale speedup vs pre-overhaul",
                1.0,
                self.podscale_speedup,
                "x",
            ));
        }
        for s in &self.sharding.counts {
            rows.push(Row::measured_only(
                format!("sharded pod events/sec ({} threads)", s.shards),
                s.sample.events_per_sec,
                "",
            ));
        }
        rows.push(Row::measured_only(
            "shard digests identical",
            if self.sharding.digests_identical {
                1.0
            } else {
                0.0
            },
            "",
        ));
        rows.push(Row::new(
            "shard speedup vs serial",
            1.0,
            self.sharding.speedup_vs_serial,
            "x",
        ));
        rows.push(Row::new(
            "shard speedup vs classic (best point)",
            1.0,
            self.sharding.speedup_vs_classic,
            "x",
        ));
        rows.push(Row::new(
            "shard overhead vs classic (1 thread)",
            1.0,
            self.sharding.shard_overhead_vs_classic,
            "x",
        ));
        rows.push(Row::measured_only(
            format!(
                "megapod ({} disks) events/sec ({} threads)",
                self.sharding.megapod_pod.disks(),
                self.sharding.megapod.shards
            ),
            self.sharding.megapod.sample.events_per_sec,
            "",
        ));
        if let Some(r) = self.metadata.get("lease_hit_rate").and_then(Json::as_f64) {
            rows.push(Row::measured_only("lease cache hit rate", r, ""));
        }
        if let Some(p) = self
            .metadata
            .get("partitions")
            .and_then(Json::as_f64)
            .filter(|&p| p > 1.0)
        {
            rows.push(Row::measured_only("metadata partitions", p, ""));
        }
        if let Some(nines) = self
            .faults
            .get("durability")
            .and_then(|d| d.get("nines"))
            .and_then(Json::as_f64)
        {
            rows.push(Row::measured_only("fuzz durability nines", nines, ""));
        }
        if let Some(Json::Bool(ok)) = self
            .faults
            .get("replay")
            .and_then(|r| r.get("digest_matches"))
        {
            rows.push(Row::measured_only(
                "fuzz replay bit-identical",
                if *ok { 1.0 } else { 0.0 },
                "",
            ));
        }
        Report::new("engine perf (wall clock)", rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_schema_is_stable() {
        let sample = PerfSample {
            sim_seconds: 1.0,
            events: 100,
            wall_seconds: 0.5,
            events_per_sec: 200.0,
            peak_queue_depth: 7.0,
            allocs_per_event: Some(3.5),
        };
        let shard = |shards: usize| ShardSample {
            shards,
            sample,
            digest: 0xfeed_f00d,
            epochs: 42,
            sync_rounds: 84,
            cross_messages: 17,
            peak_queue_depth_sum: 11.0,
        };
        let rep = PerfReport {
            quick: true,
            seed: 1,
            degraded: sample,
            podscale: sample,
            pod: PodConfig::quick(),
            podscale_digest: 0xdead_beef,
            deterministic: true,
            degraded_speedup: 3.0,
            podscale_speedup: 2.0,
            sharding: ShardScaling {
                groups: 8,
                counts: vec![shard(1), shard(2), shard(4)],
                digests_identical: true,
                speedup_vs_serial: 2.5,
                speedup_vs_classic: 2.1,
                shard_overhead_vs_classic: 1.2,
                megapod: shard(4),
                megapod_pod: crate::megapod::megapod_quick(),
            },
            profile: Json::obj([("digest_matches_unprofiled", Json::Bool(true))]),
            slo: Json::obj([("digest_matches_untraced", Json::Bool(true))]),
            metadata: Json::obj([
                ("partitions", Json::u64(8)),
                ("lease_hit_rate", Json::f64(0.75)),
            ]),
            faults: Json::obj([("replay", Json::obj([("digest_matches", Json::Bool(true))]))]),
        };
        let j = rep.to_bench_json().to_string();
        assert!(j.contains(r#""schema":"ustore-bench-podscale-v7""#));
        assert!(j.contains(r#""events_per_sec":200"#));
        assert!(j.contains(r#""two_runs_identical":true"#));
        assert!(j.contains(r#""podscale_digest":"00000000deadbeef""#));
        assert!(j.contains(r#""disks":1024"#));
        assert!(j.contains(r#""digests_identical":true"#));
        assert!(j.contains(r#""speedup_vs_serial":2.5"#));
        assert!(j.contains(r#""speedup_vs_classic":2.1"#));
        assert!(j.contains(r#""sync_rounds":84"#));
        assert!(j.contains(r#""shard_overhead_vs_classic":1.2"#));
        assert!(j.contains(r#""cross_messages":17"#));
        assert!(j.contains(r#""disks":4096"#), "megapod shape recorded");
        assert!(
            j.contains(r#""profile":{"digest_matches_unprofiled":true}"#),
            "profile section carried through"
        );
        assert!(
            j.contains(r#""slo":{"digest_matches_untraced":true}"#),
            "slo section carried through"
        );
        assert!(
            j.contains(r#""metadata":{"partitions":8,"lease_hit_rate":0.75}"#),
            "metadata section carried through"
        );
        assert!(
            j.contains(r#""faults":{"replay":{"digest_matches":true}}"#),
            "faults section carried through"
        );
    }
}
