//! Megapod: the deployment size the single-world engine cannot reach.
//!
//! Four times the [`crate::podscale`] pod — 256 deploy units, 1024 hosts,
//! 4096 disks under one Master — decomposed into 16 unit-group worlds for
//! the sharded engine. At this scale the event volume of one virtual
//! second is large enough that parallel execution, not per-event cost, is
//! what determines how much deployment the harness can explore; the
//! megapod is the scenario the shard-scaling numbers in
//! `BENCH_podscale.json` are reported against alongside the pod.
//!
//! Run it with `repro megapod --shards N` or via `repro perf` (full
//! mode), both of which use [`run_megapod`].

use std::time::Duration;

use crate::podscale::{run_podscale_sharded, PodConfig, PodscaleRun};

/// The megapod shape: 256 units × (4 hosts + 16 disks) = 1024 hosts and
/// 4096 disks, 16 unit-group worlds, 48 archival clients.
pub fn megapod() -> PodConfig {
    PodConfig {
        units: 256,
        clients: 48,
        run: Duration::from_secs(10),
        world_groups: 16,
        ..PodConfig::pod()
    }
}

/// The CI shape: same 4096-disk megapod with fewer clients and a shorter
/// measured window.
pub fn megapod_quick() -> PodConfig {
    PodConfig {
        clients: 16,
        run: Duration::from_secs(4),
        ..megapod()
    }
}

/// The megapod with its control plane scaled out to match: 16 metadata
/// partitions (one per unit-group world, each replica group co-located
/// with its units) and client location leases. This is the shape where
/// partitioning matters — 4096 disks of heartbeat, allocation and lookup
/// traffic through one serialized log is the bottleneck the partition map
/// removes.
pub fn megapod_partitioned() -> PodConfig {
    megapod().partitioned()
}

/// Runs the megapod on the sharded engine.
pub fn run_megapod(seed: u64, cfg: &PodConfig, shards: usize) -> PodscaleRun {
    run_podscale_sharded(seed, cfg, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megapod_shape_is_the_issue_spec() {
        let cfg = megapod();
        assert_eq!(cfg.units, 256);
        assert_eq!(cfg.hosts(), 1024);
        assert_eq!(cfg.disks(), 4096);
        assert_eq!(cfg.world_groups, 16);
        assert_eq!(megapod_quick().disks(), 4096);
    }

    #[test]
    fn partitioned_megapod_scales_metadata_with_the_worlds() {
        let cfg = megapod_partitioned();
        assert_eq!(cfg.partitions, 16, "one partition per unit-group world");
        assert!(cfg.location_lease.is_some(), "clients lease locations");
        assert_eq!(cfg.disks(), 4096, "same data plane as the megapod");
    }
}
