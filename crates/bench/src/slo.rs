//! Request-lifecycle SLO harness (`repro slo`).
//!
//! Runs the pod-scale deployment three ways — sharded with the request
//! tracer on, sharded with it off, and on the classic single-threaded
//! engine with it on — and turns the trace snapshots into a
//! time-to-first-byte decomposition:
//!
//! - **where each quantile goes**: per-stage p50 / p99 / p99.9 tables for
//!   reads and writes (client queue, master lookup, network transit,
//!   endpoint queue, spin-up wait, seek, transfer, retry), with the
//!   coverage fraction (stage sums ÷ end-to-end) proving the attribution
//!   tiles the latency;
//! - **what the tail looks like**: the slowest-request exemplars with
//!   their full stage timelines, renderable as Perfetto tracks
//!   ([`SloRun::request_trace`]);
//! - **what tracing costs**: a digest gate proving the tracer never
//!   perturbed the simulation (traced and untraced telemetry digests must
//!   be bit-identical).
//!
//! The coverage acceptance bar is ≥ 0.95 at every reported quantile: a
//! pod whose stage accounting explains less than 95% of its TTFB has an
//! unattributed latency source, which is exactly the situation the tracer
//! exists to prevent.

use ustore::TracePlan;
use ustore_sim::{export, Json, SpanTracer, Stage, TraceRecord, TraceSnapshot};

use crate::podscale::{
    run_podscale_sharded, run_podscale_sharded_traced, run_podscale_traced, PodConfig, PodscaleRun,
};

/// The quantiles every SLO table reports, with display labels.
pub const SLO_QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p99", 0.99), ("p99.9", 0.999)];

/// Minimum stage-coverage fraction accepted at each reported quantile.
pub const COVERAGE_BAR: f64 = 0.95;

/// SLO-run options.
#[derive(Debug, Clone, Copy)]
pub struct SloOptions {
    /// Simulation seed (shared by all three runs).
    pub seed: u64,
    /// Quick mode: the shorter podscale workload window.
    pub quick: bool,
    /// Executor threads for the sharded runs.
    pub shards: usize,
    /// Keep one full per-stage trace every this many completions.
    pub sample_every: u64,
    /// Slowest-request exemplars always retained.
    pub exemplars: usize,
}

/// Everything `repro slo` measured.
#[derive(Debug, Clone)]
pub struct SloRun {
    /// Seed the runs used.
    pub seed: u64,
    /// Quick mode flag.
    pub quick: bool,
    /// Executor threads for the sharded runs.
    pub shards: usize,
    /// Pod shape measured.
    pub pod: PodConfig,
    /// The traced sharded run (`slo` populated).
    pub sharded: PodscaleRun,
    /// The traced classic (single-threaded) run (`slo` populated).
    pub classic: PodscaleRun,
    /// Telemetry digest of the untraced sharded run.
    pub untraced_digest: u64,
    /// Whether the traced and untraced digests are bit-identical — the
    /// proof that tracing is a pure observability side channel.
    pub digest_matches_untraced: bool,
    /// Minimum coverage over kinds and reported quantiles on the sharded
    /// snapshot. `None` when the build has no tracer (`--no-default-features`).
    pub min_coverage: Option<f64>,
    /// The partitioned + leased pod shape (the same pod with one metadata
    /// partition per unit-group world and client location leases).
    pub leased_pod: PodConfig,
    /// The traced partitioned + leased sharded run (`slo` populated) —
    /// the before/after comparison for the `master_lookup` stage.
    pub leased: PodscaleRun,
    /// Telemetry digest of the untraced partitioned + leased run.
    pub leased_untraced_digest: u64,
    /// Tracer-purity gate for the partitioned + leased configuration.
    pub leased_digest_matches: bool,
    /// Fraction of location-lease consultations the leased run served
    /// from cache. `None` when the build has no tracer.
    pub lease_hit_rate: Option<f64>,
}

/// Runs the SLO harness: traced sharded, untraced sharded (the digest
/// gate), and traced classic.
pub fn run_slo(opts: &SloOptions) -> SloRun {
    let pod = if opts.quick {
        PodConfig::quick()
    } else {
        PodConfig::pod()
    };
    let plan = TracePlan {
        sample_every: opts.sample_every,
        exemplars: opts.exemplars,
    };
    let sharded = run_podscale_sharded_traced(opts.seed, &pod, opts.shards, plan.clone());
    let untraced = run_podscale_sharded(opts.seed, &pod, opts.shards);
    let classic = run_podscale_traced(opts.seed, &pod, plan.clone());
    // The same pod with the control plane scaled out: per-world metadata
    // partitions plus client location leases. Traced for the before/after
    // master_lookup comparison, untraced for its own purity gate (leased
    // digests are a different scenario, so they get their own pair).
    let leased_pod = pod.clone().partitioned();
    let leased = run_podscale_sharded_traced(opts.seed, &leased_pod, opts.shards, plan);
    let leased_untraced = run_podscale_sharded(opts.seed, &leased_pod, opts.shards);
    let min_coverage = sharded.slo.as_ref().and_then(|s| {
        SLO_QUANTILES
            .iter()
            .filter_map(|&(_, q)| s.min_coverage(q))
            .min_by(|a, b| a.partial_cmp(b).expect("coverage is finite"))
    });
    let lease_hit_rate = leased.slo.as_ref().and_then(TraceSnapshot::lease_hit_rate);
    SloRun {
        seed: opts.seed,
        quick: opts.quick,
        shards: opts.shards,
        pod,
        untraced_digest: untraced.digest,
        digest_matches_untraced: sharded.digest == untraced.digest,
        min_coverage,
        leased_untraced_digest: leased_untraced.digest,
        leased_digest_matches: leased.digest == leased_untraced.digest,
        lease_hit_rate,
        leased_pod,
        leased,
        sharded,
        classic,
    }
}

/// The `metadata` section of `BENCH_podscale.json` (schema v7) and of the
/// `repro slo` report: the partitioned + leased control-plane comparison —
/// partition count, per-partition replicated-log lengths, lease traffic,
/// and the client-observed `master_lookup` distribution before (monolithic
/// Master, no lease) and after (partitioned + leased).
pub fn metadata_section(
    baseline: Option<&TraceSnapshot>,
    leased: &PodscaleRun,
    leased_pod: &PodConfig,
) -> Json {
    let mut out = Json::obj([
        (
            "partitions",
            Json::u64(u64::from(leased_pod.partitions.max(1))),
        ),
        (
            "lease_ms",
            leased_pod
                .location_lease
                .map_or(Json::Null, |d| Json::u64(d.as_millis() as u64)),
        ),
        ("digest", Json::str(format!("{:016x}", leased.digest))),
        (
            "partition_log_lens",
            Json::arr(leased.partition_logs.iter().map(|&(p, len)| {
                Json::obj([
                    ("partition", Json::u64(u64::from(p))),
                    ("log_len", Json::u64(len)),
                ])
            })),
        ),
    ]);
    if let Some(snap) = &leased.slo {
        out.insert("lease_hits", Json::u64(snap.lease_hits));
        out.insert("lease_misses", Json::u64(snap.lease_misses));
        if let Some(r) = snap.lease_hit_rate() {
            out.insert("lease_hit_rate", Json::f64(r));
        }
        let q = |h: &ustore_sim::Histogram, q: f64| Json::u64(h.quantile(q).unwrap_or(0));
        let mut lookup = Json::obj([
            ("after_p50_ns", q(&snap.master_lookup, 0.5)),
            ("after_p99_ns", q(&snap.master_lookup, 0.99)),
        ]);
        if let Some(base) = baseline {
            lookup.insert("before_p50_ns", q(&base.master_lookup, 0.5));
            lookup.insert("before_p99_ns", q(&base.master_lookup, 0.99));
        }
        out.insert("master_lookup", lookup);
    }
    out
}

/// The `slo` section of `BENCH_podscale.json` (schema v4, unchanged in v6): the traced
/// sharded + classic snapshots and the digest gate.
pub fn slo_section(
    sharded: &PodscaleRun,
    classic: &PodscaleRun,
    untraced_digest: Option<u64>,
) -> Json {
    let snap = |run: &PodscaleRun| run.slo.as_ref().map_or(Json::Null, TraceSnapshot::to_json);
    let mut out = Json::obj([("sharded", snap(sharded)), ("classic", snap(classic))]);
    if let Some(d) = untraced_digest {
        out.insert("digest_matches_untraced", Json::Bool(sharded.digest == d));
    }
    out
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2} ms", ns as f64 / 1e6)
}

impl SloRun {
    /// The machine-readable document (`repro slo --json`).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("experiment", Json::str("slo")),
            ("seed", Json::u64(self.seed)),
            ("mode", Json::str(if self.quick { "quick" } else { "full" })),
            ("shards", Json::u64(self.shards as u64)),
            (
                "pod",
                Json::obj([
                    ("units", Json::u64(u64::from(self.pod.units))),
                    ("hosts", Json::u64(u64::from(self.pod.hosts()))),
                    ("disks", Json::u64(u64::from(self.pod.disks()))),
                    ("clients", Json::u64(u64::from(self.pod.clients))),
                    ("world_groups", Json::u64(u64::from(self.pod.world_groups))),
                ]),
            ),
            ("digest", Json::str(format!("{:016x}", self.sharded.digest))),
            (
                "untraced_digest",
                Json::str(format!("{:016x}", self.untraced_digest)),
            ),
        ]);
        if let Some(c) = self.min_coverage {
            doc.insert("min_coverage", Json::f64(c));
        }
        doc.insert(
            "slo",
            slo_section(&self.sharded, &self.classic, Some(self.untraced_digest)),
        );
        let mut meta = metadata_section(self.sharded.slo.as_ref(), &self.leased, &self.leased_pod);
        meta.insert(
            "untraced_digest",
            Json::str(format!("{:016x}", self.leased_untraced_digest)),
        );
        meta.insert(
            "digest_matches_untraced",
            Json::Bool(self.leased_digest_matches),
        );
        doc.insert("metadata", meta);
        doc
    }

    /// The exemplar Perfetto trace: one track per slowest request with its
    /// stage timeline as nested slices, plus cluster annotations — all in
    /// simulated time.
    pub fn request_trace(&self) -> Json {
        let spans = SpanTracer::new();
        match &self.sharded.slo {
            Some(s) => export::chrome_trace_with_requests(&spans, s),
            None => export::chrome_trace(&spans),
        }
    }

    /// Human-readable TTFB decomposition report.
    pub fn decomposition(&self) -> String {
        let mut out = String::new();
        let p = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        p(
            &mut out,
            format!(
                "pod: {} units / {} hosts / {} disks, {} worlds on {} threads",
                self.pod.units,
                self.pod.hosts(),
                self.pod.disks(),
                u64::from(self.pod.world_groups) + 1,
                self.shards
            ),
        );
        let Some(snap) = &self.sharded.slo else {
            p(
                &mut out,
                "no trace snapshot captured (built without the `reqtrace` feature)".to_string(),
            );
            return out;
        };
        p(
            &mut out,
            format!(
                "requests: {} completed, {} retries, {} cold hits, {} abandoned, {} live at end",
                snap.seen, snap.retries, snap.cold_hits, snap.abandoned, snap.live_at_end
            ),
        );
        p(
            &mut out,
            format!(
                "sampling: {} full traces kept (1 per {} completions, {} dropped past cap), {} exemplars",
                snap.sampled.len(),
                snap.sample_every,
                snap.sample_dropped,
                snap.exemplars.len()
            ),
        );
        p(
            &mut out,
            format!(
                "master lookups: {} served, {} unresolved; client-observed p99 {}",
                snap.lookups_served,
                snap.lookups_unresolved,
                fmt_ms(snap.master_lookup.quantile(0.99).unwrap_or(0))
            ),
        );

        for stats in &snap.kinds {
            if stats.completed == 0 {
                continue;
            }
            p(&mut out, String::new());
            p(
                &mut out,
                format!(
                    "ttfb decomposition — {} ({} completed, {} cold):",
                    stats.kind.name(),
                    stats.completed,
                    stats.cold_completed
                ),
            );
            p(
                &mut out,
                format!(
                    "  {:<14} {:>12} {:>12} {:>12} {:>7} {:>9}",
                    "stage", "p50", "p99", "p99.9", "share", "dominant"
                ),
            );
            for s in Stage::ALL {
                let h = &stats.stages[s as usize];
                p(
                    &mut out,
                    format!(
                        "  {:<14} {:>12} {:>12} {:>12} {:>6.1}% {:>9}",
                        s.name(),
                        fmt_ms(h.quantile(0.5).unwrap_or(0)),
                        fmt_ms(h.quantile(0.99).unwrap_or(0)),
                        fmt_ms(h.quantile(0.999).unwrap_or(0)),
                        stats.stage_share(s) * 100.0,
                        stats.dominant[s as usize]
                    ),
                );
            }
            p(
                &mut out,
                format!(
                    "  {:<14} {:>12} {:>12} {:>12}",
                    "attributed",
                    fmt_ms(stats.attributed.quantile(0.5).unwrap_or(0)),
                    fmt_ms(stats.attributed.quantile(0.99).unwrap_or(0)),
                    fmt_ms(stats.attributed.quantile(0.999).unwrap_or(0)),
                ),
            );
            p(
                &mut out,
                format!(
                    "  {:<14} {:>12} {:>12} {:>12}",
                    "end-to-end",
                    fmt_ms(stats.e2e.quantile(0.5).unwrap_or(0)),
                    fmt_ms(stats.e2e.quantile(0.99).unwrap_or(0)),
                    fmt_ms(stats.e2e.quantile(0.999).unwrap_or(0)),
                ),
            );
            let cov: Vec<String> = SLO_QUANTILES
                .iter()
                .map(|&(label, q)| {
                    stats.coverage(q).map_or_else(
                        || format!("{label} n/a"),
                        |c| format!("{label} {:.1}%", c * 100.0),
                    )
                })
                .collect();
            p(&mut out, format!("  coverage: {}", cov.join(", ")));
        }

        if let Some(w) = snap.worst() {
            p(&mut out, String::new());
            p(&mut out, worst_exemplar_timeline(w));
        }
        if !snap.annotations.is_empty() {
            p(
                &mut out,
                format!(
                    "cluster annotations: {} (first: {:.3} s {})",
                    snap.annotations.len(),
                    snap.annotations[0].0 as f64 / 1e9,
                    snap.annotations[0].1
                ),
            );
        }

        p(&mut out, String::new());
        if let Some(c) = self.min_coverage {
            p(
                &mut out,
                format!(
                    "coverage floor: {:.1}% across kinds and quantiles (bar: {:.0}%)",
                    c * 100.0,
                    COVERAGE_BAR * 100.0
                ),
            );
        }
        p(
            &mut out,
            format!(
                "determinism: traced digest {:016x} {} untraced {:016x}",
                self.sharded.digest,
                if self.digest_matches_untraced {
                    "=="
                } else {
                    "!="
                },
                self.untraced_digest
            ),
        );

        p(&mut out, String::new());
        p(
            &mut out,
            format!(
                "control plane off the critical path: {} metadata partitions, {} lease",
                self.leased_pod.partitions,
                self.leased_pod
                    .location_lease
                    .map_or_else(|| "no".to_string(), |d| format!("{} ms", d.as_millis())),
            ),
        );
        match &self.leased.slo {
            None => p(
                &mut out,
                "  (no trace snapshot — built without the `reqtrace` feature)".to_string(),
            ),
            Some(snap) => {
                p(
                    &mut out,
                    format!(
                        "  lease consultations: {} hits / {} misses{}",
                        snap.lease_hits,
                        snap.lease_misses,
                        snap.lease_hit_rate()
                            .map_or_else(String::new, |r| format!(" (hit rate {:.1}%)", r * 100.0)),
                    ),
                );
                // The median is where the lease shows up: hits are served
                // locally (recorded as zero), so at hit rates above 50%
                // the median consultation becomes free. The tail is the
                // residual misses, measured under full workload.
                let q = |h: &ustore_sim::Histogram, q: f64| {
                    h.quantile(q).map_or_else(|| "n/a".to_string(), fmt_ms)
                };
                let base = self.sharded.slo.as_ref();
                p(
                    &mut out,
                    format!(
                        "  master_lookup p50: {} unpartitioned -> {} partitioned+leased",
                        base.map_or_else(|| "n/a".to_string(), |s| q(&s.master_lookup, 0.5)),
                        q(&snap.master_lookup, 0.5),
                    ),
                );
                p(
                    &mut out,
                    format!(
                        "  master_lookup p99: {} unpartitioned -> {} partitioned+leased (residual misses)",
                        base.map_or_else(|| "n/a".to_string(), |s| q(&s.master_lookup, 0.99)),
                        q(&snap.master_lookup, 0.99),
                    ),
                );
            }
        }
        p(
            &mut out,
            format!(
                "  partition logs: {}",
                self.leased
                    .partition_logs
                    .iter()
                    .map(|(p, len)| format!("p{p}={len}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
        );
        p(
            &mut out,
            format!(
                "  determinism: leased traced digest {:016x} {} untraced {:016x}",
                self.leased.digest,
                if self.leased_digest_matches {
                    "=="
                } else {
                    "!="
                },
                self.leased_untraced_digest
            ),
        );
        out
    }
}

/// Renders the slowest request's stage timeline, one attributed interval
/// per line, offsets relative to issue time.
fn worst_exemplar_timeline(w: &TraceRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "worst request: id {} ({}{}, {} attempt{}) — ttfb {}, dominant {}\n",
        w.id,
        w.kind.name(),
        if w.cold { ", cold" } else { "" },
        w.attempts,
        if w.attempts == 1 { "" } else { "s" },
        fmt_ms(w.ttfb_ns),
        w.dominant().name()
    ));
    for seg in &w.segments {
        out.push_str(&format!(
            "  +{:>10} {:<14} {}\n",
            fmt_ms(seg.start_ns.saturating_sub(w.start_ns)),
            seg.stage.name(),
            fmt_ms(seg.dur_ns)
        ));
    }
    let unattributed = w.ttfb_ns.saturating_sub(w.attributed_ns);
    if unattributed > 0 {
        out.push_str(&format!("  (unattributed: {})\n", fmt_ms(unattributed)));
    }
    out.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustore_sim::RequestTracer;

    #[test]
    fn quick_slo_covers_ttfb_and_keeps_digest() {
        let run = run_slo(&SloOptions {
            seed: 41,
            quick: true,
            shards: 2,
            sample_every: 16,
            exemplars: 4,
        });
        assert!(
            run.digest_matches_untraced,
            "tracing must not perturb the simulation"
        );
        assert!(
            run.leased_digest_matches,
            "tracing must not perturb the partitioned + leased simulation"
        );
        assert_eq!(
            run.leased_pod.partitions, run.pod.world_groups,
            "one metadata partition per unit-group world"
        );
        assert_eq!(run.leased.io_errors, 0, "leased pod serves all IO");
        assert!(
            run.leased.partition_logs.len() == run.leased_pod.partitions as usize
                && run.leased.partition_logs.iter().all(|&(_, l)| l > 0),
            "every metadata partition applied log entries: {:?}",
            run.leased.partition_logs
        );
        if !RequestTracer::compiled_in() {
            assert!(run.sharded.slo.is_none());
            assert!(run.lease_hit_rate.is_none());
            return;
        }
        assert!(
            run.lease_hit_rate.expect("leases consulted") > 0.0,
            "steady-state directory refreshes must hit the lease cache"
        );
        // Lease hits are served locally and recorded as zero, so with a
        // healthy hit rate the *median* directory consultation becomes
        // free; the tail (p99) is still a real Master round trip and is
        // measured under full workload, so it is not comparable with the
        // unleased baseline's bring-up-time lookups.
        let base_p50 = run
            .sharded
            .slo
            .as_ref()
            .and_then(|s| s.master_lookup.quantile(0.5))
            .expect("baseline lookups measured");
        let leased_p50 = run
            .leased
            .slo
            .as_ref()
            .and_then(|s| s.master_lookup.quantile(0.5))
            .unwrap_or(0);
        assert!(
            leased_p50 < base_p50,
            "leased master_lookup p50 ({leased_p50} ns) must beat the unleased baseline ({base_p50} ns)"
        );
        let snap = run.sharded.slo.as_ref().expect("traced run has snapshot");
        assert!(snap.seen > 0, "workload completed under trace");
        assert!(snap.worst().is_some(), "exemplars retained");
        assert!(
            run.min_coverage.expect("coverage computed") >= COVERAGE_BAR,
            "stage sums must explain >= 95% of TTFB: {:?}",
            run.min_coverage
        );
        let classic = run.classic.slo.as_ref().expect("classic traced too");
        assert!(classic.seen > 0);

        let text = run.decomposition();
        assert!(text.contains("ttfb decomposition — read"));
        assert!(text.contains("spin_up_wait"));
        assert!(text.contains("worst request"));
        assert!(text.contains("=="));
        assert!(text.contains("metadata partitions"));
        assert!(text.contains("lease consultations"));
        let json = run.to_json().to_string();
        assert!(json.contains(r#""experiment":"slo""#));
        assert!(json.contains(r#""digest_matches_untraced":true"#));
        assert!(json.contains(r#""metadata":"#));
        assert!(json.contains(r#""lease_hit_rate":"#));
        assert!(json.contains(r#""partition_log_lens":"#));
        let trace = run.request_trace().to_string();
        assert!(trace.contains("requests"));
        assert!(trace.contains("reqtrace"));
    }
}
