//! Reporting helpers: paper-vs-measured rows, text tables, and the
//! standard-format telemetry artifacts experiments attach to their runs.

use std::fmt;

use ustore_sim::{export, Json, Scraper, Sim};

/// One measured quantity compared against the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What is being measured (e.g. `"SATA 4K-S-R"`).
    pub label: String,
    /// The paper's value (None when the paper only gives a figure/shape).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit string (e.g. `"IO/s"`, `"MB/s"`, `"W"`, `"$k"`, `"s"`).
    pub unit: &'static str,
}

impl Row {
    /// Creates a row with a paper reference value.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Row {
        Row {
            label: label.into(),
            paper: Some(paper),
            measured,
            unit,
        }
    }

    /// Creates a row without a paper value (figure-only data).
    pub fn measured_only(label: impl Into<String>, measured: f64, unit: &'static str) -> Row {
        Row {
            label: label.into(),
            paper: None,
            measured,
            unit,
        }
    }

    /// Relative error vs the paper, if a paper value exists.
    pub fn error_pct(&self) -> Option<f64> {
        self.paper.map(|p| 100.0 * (self.measured - p) / p)
    }

    /// Stable JSON export: `{"label", "paper", "measured", "unit"}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("paper", self.paper.map_or(Json::Null, Json::f64)),
            ("measured", Json::f64(self.measured)),
            ("unit", Json::str(self.unit)),
        ])
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.paper {
            Some(p) => write!(
                f,
                "{:<28} paper {:>9.1} {:<5} measured {:>9.1} {:<5} ({:+.1}%)",
                self.label,
                p,
                self.unit,
                self.measured,
                self.unit,
                self.error_pct().expect("paper value present"),
            ),
            None => write!(
                f,
                "{:<28} {:>32} measured {:>9.1} {:<5}",
                self.label, "", self.measured, self.unit
            ),
        }
    }
}

/// Standard-format telemetry exports captured from one run's simulator,
/// ready to be written to disk by the `repro` binary (`--prom-out`,
/// `--trace-out`, `--ts-out`).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryArtifacts {
    /// Prometheus exposition text of the final metrics snapshot.
    pub prometheus: String,
    /// Chrome trace-event JSON of the span log (loads in Perfetto /
    /// `chrome://tracing`).
    pub chrome_trace: String,
    /// CSV dump (`component,series,t_s,value`) of the scraped time series.
    pub timeseries_csv: String,
}

impl TelemetryArtifacts {
    /// Captures all three exports from a finished run.
    pub fn capture(sim: &Sim, scraper: &Scraper) -> TelemetryArtifacts {
        let snapshot = sim.metrics_snapshot();
        TelemetryArtifacts {
            prometheus: export::prometheus(&snapshot),
            chrome_trace: sim.with_spans(|t| export::chrome_trace(t)).to_string(),
            timeseries_csv: scraper.to_csv(),
        }
    }
}

/// A titled group of rows (one table or figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Table/figure identifier (e.g. `"Table II"`).
    pub title: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates a report.
    pub fn new(title: impl Into<String>, rows: Vec<Row>) -> Report {
        Report {
            title: title.into(),
            rows,
        }
    }

    /// Largest absolute relative error across rows with paper values.
    pub fn worst_error_pct(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(Row::error_pct)
            .map(f64::abs)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Stable JSON export: `{"title", "rows": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(self.title.clone())),
            ("rows", Json::arr(self.rows.iter().map(Row::to_json))),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_error_and_display() {
        let r = Row::new("x", 100.0, 95.0, "IO/s");
        assert_eq!(r.error_pct(), Some(-5.0));
        assert!(r.to_string().contains("-5.0%"));
        let m = Row::measured_only("y", 7.0, "s");
        assert_eq!(m.error_pct(), None);
        assert!(m.to_string().contains("7.0"));
    }

    #[test]
    fn report_worst_error() {
        let rep = Report::new(
            "T",
            vec![
                Row::new("a", 100.0, 90.0, "W"),
                Row::new("b", 100.0, 104.0, "W"),
                Row::measured_only("c", 1.0, "s"),
            ],
        );
        assert_eq!(rep.worst_error_pct(), Some(10.0));
        assert!(rep.to_string().starts_with("== T =="));
    }

    #[test]
    fn json_export_schema_is_stable() {
        let rep = Report::new(
            "T",
            vec![
                Row::new("a", 100.0, 90.0, "W"),
                Row::measured_only("c", 1.5, "s"),
            ],
        );
        assert_eq!(
            rep.to_json().to_string(),
            r#"{"title":"T","rows":[{"label":"a","paper":100,"measured":90,"unit":"W"},{"label":"c","paper":null,"measured":1.5,"unit":"s"}]}"#
        );
    }
}
