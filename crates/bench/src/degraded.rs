//! Proactive recovery from a *slowly failing* disk.
//!
//! The hard-failover experiment ([`crate::failover`]) measures the path
//! the paper measures: a host dies outright and the heartbeat sweeper
//! notices. Real cold-storage drives rarely die that cleanly — they drift
//! first (seek latency creeps up, uncorrectable reads appear), and a
//! system that waits for the hard failure serves degraded IO the whole
//! while. This scenario measures the telemetry-driven alternative:
//!
//! 1. a full deployment runs a steady random-read workload with the
//!    telemetry pipeline on (scraper + Master-side health watchdog);
//! 2. at a known onset the serving disk starts degrading — its seek time
//!    is stretched in steps and it begins throwing uncorrectable reads;
//! 3. a hard failure of the same disk is scheduled for `onset +
//!    25 s` — the watchdog races it;
//! 4. the watchdog detects the drift from the scraped series, escalates
//!    through [`Master::recover_disk`](ustore::Master) into the fabric
//!    reconfiguration path, and the client remounts the moved disk.
//!
//! The detection → reconfiguration → remount breakdown is read off the
//! `degradation` span tree the watchdog emits, and the same timeline is
//! visible in the exported time series as the per-disk `watchdog.phase`
//! gauge (0 healthy … 4 recovered). The run's artifacts (Prometheus
//! text, Chrome trace JSON, time-series CSV) ship with the report.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, UStoreSystem, WatchdogConfig};
use ustore_net::BlockDevice;
use ustore_sim::{Json, ScraperConfig, SimTime, TraceLevel};

use crate::report::{Report, Row, TelemetryArtifacts};

/// Scrape cadence for the scenario (finer than the default 500 ms so the
/// phase timeline resolves sub-second transitions).
const SCRAPE_INTERVAL: Duration = Duration::from_millis(250);
/// Read workload cadence — every scrape window sees fresh samples.
const READ_INTERVAL: Duration = Duration::from_millis(100);
/// Healthy warm-up before the degradation onset (baseline learning).
const WARMUP: Duration = Duration::from_secs(8);
/// Onset-relative deadline at which the drive fails hard if the watchdog
/// has not finished recovery by then.
const HARD_FAILURE_AFTER: Duration = Duration::from_secs(25);

/// Measured breakdown of one degraded-disk recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedTiming {
    /// Degradation onset to the watchdog escalating (sustained breach).
    pub detection: Duration,
    /// Escalation to the fabric reporting the disk rerouted.
    pub reconfiguration: Duration,
    /// Reroute completion to the client's IO flowing again.
    pub remount: Duration,
    /// Onset to recovered, end to end.
    pub total: Duration,
    /// How long before the scheduled hard failure recovery completed
    /// (zero if the race was lost and the drive died).
    pub margin: Duration,
    /// Health events the watchdog recorded during the run.
    pub events: usize,
    /// Whether recovery beat the hard failure.
    pub recovered: bool,
}

/// One scenario run: timing, machine-readable telemetry, and the
/// standard-format exports.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRun {
    /// The phase breakdown.
    pub timing: DegradedTiming,
    /// `{"experiment", "seed", "disk", …, "phase_timeline", "metrics",
    /// "spans"}`.
    pub telemetry: Json,
    /// Prometheus / Chrome-trace / CSV exports of the run.
    pub artifacts: TelemetryArtifacts,
    /// Engine events processed over the whole run (perf harness input).
    pub events_processed: u64,
    /// Peak live event-queue depth over the run.
    pub peak_queue_depth: f64,
}

/// Runs the degraded-disk scenario once.
pub fn run_degraded_traced(seed: u64) -> DegradedRun {
    let s = UStoreSystem::prototype(seed);
    s.sim.with_trace(|t| t.set_min_level(TraceLevel::Info));
    s.settle();

    // Telemetry pipeline + watchdog. The slow EWMA keeps the baseline from
    // chasing the ramp between breaching windows.
    let scraper = s.start_telemetry(ScraperConfig {
        interval: SCRAPE_INTERVAL,
        retention: 8192,
    });
    let dog = s
        .install_watchdog(
            &scraper,
            WatchdogConfig {
                ewma_alpha: 0.1,
                ..WatchdogConfig::default()
            },
        )
        .expect("active master after settle");

    // Allocate and mount the space the workload will hammer.
    let client = s.client("app-1");
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&s.sim, "bench", 1 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocate"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(5));
    let info = info.borrow().clone().expect("allocated");
    let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(10));
    let mounted = mounted.borrow().clone().expect("mounted");

    let disk = s.runtime.disk(info.name.disk);
    let component = format!("{}", info.name.disk);

    // Steady random-read workload. Each successful read checks whether the
    // watchdog's remount phase is waiting on it and, if so, closes it —
    // exactly how the hard-failover scenario closes `failover.remount`.
    let recovered_at: Rc<Cell<SimTime>> = Rc::new(Cell::new(SimTime::ZERO));
    {
        let mounted = mounted.clone();
        let comp = component.clone();
        let rec = recovered_at.clone();
        let k = Cell::new(0u64);
        s.sim.every(READ_INTERVAL, READ_INTERVAL, move |sim| {
            let n = k.get();
            k.set(n + 1);
            // Deterministic scattered offsets: every read seeks.
            let offset = (n.wrapping_mul(7919) % (1 << 18)) * 4096;
            let comp = comp.clone();
            let rec = rec.clone();
            mounted.read(
                sim,
                offset,
                4096,
                Box::new(move |sim, r| {
                    if r.is_ok() && rec.get() == SimTime::ZERO {
                        if let Some(rm) =
                            sim.with_spans(|t| t.find_open_by("degradation.remount", "disk", &comp))
                        {
                            sim.span_end(rm);
                            rec.set(sim.now());
                        }
                    }
                }),
            );
        });
    }
    s.sim.run_until(s.sim.now() + WARMUP);
    let onset = s.sim.now();

    // The degradation ramp: seek time ×1.5, ×3, ×6, ×8 at 2 s intervals;
    // uncorrectable reads start at the second step. The ramp outruns the
    // EWMA baseline, as a failing spindle outruns a capacity plan.
    for (i, (factor, err)) in [(1.5, 0.0), (3.0, 0.05), (6.0, 0.10), (8.0, 0.15)]
        .into_iter()
        .enumerate()
    {
        let d = disk.clone();
        s.sim
            .schedule_at(onset + Duration::from_secs(2 * i as u64), move |sim| {
                d.set_latency_factor(factor);
                d.set_read_error_rate(sim, err);
            });
    }
    // The race: if recovery has not finished by the deadline, the drive
    // dies hard and the ordinary failover path takes over.
    {
        let d = disk.clone();
        let rec = recovered_at.clone();
        s.sim.schedule_at(onset + HARD_FAILURE_AFTER, move |sim| {
            if rec.get() == SimTime::ZERO {
                sim.trace(
                    TraceLevel::Warn,
                    "bench",
                    "degraded disk reached hard failure before recovery",
                );
                d.set_failed(sim, true);
            }
        });
    }
    s.sim
        .run_until(onset + HARD_FAILURE_AFTER + Duration::from_secs(7));

    // Phase boundaries from the watchdog's degradation span tree.
    let (detection, reconfiguration, remount) = s.sim.with_spans(|t| {
        let root = t
            .by_name("degradation")
            .filter(|sp| sp.start >= onset)
            .last()
            .expect("degradation root span")
            .id;
        let child = |n: &str| t.children(root).find(|c| &*c.name == n).cloned();
        (
            child("degradation.detection"),
            child("degradation.reconfiguration"),
            child("degradation.remount"),
        )
    });
    let escalated = detection
        .expect("detection span")
        .end
        .expect("watchdog escalated");
    let rerouted = reconfiguration
        .expect("reconfiguration span")
        .end
        .expect("fabric rerouted the disk");
    let end = recovered_at.get();
    let recovered = end > SimTime::ZERO;
    if recovered {
        let rm = remount.expect("remount span");
        assert_eq!(rm.end, Some(end), "remount closes at the client's read");
    }
    let deadline = onset + HARD_FAILURE_AFTER;
    let timing = DegradedTiming {
        detection: escalated.saturating_duration_since(onset),
        reconfiguration: rerouted.saturating_duration_since(escalated),
        remount: end.saturating_duration_since(rerouted),
        total: end.saturating_duration_since(onset),
        margin: if recovered {
            deadline.saturating_duration_since(end)
        } else {
            Duration::ZERO
        },
        events: dog.events().len(),
        recovered,
    };

    // The same timeline, read straight from the exported time series.
    let phase_timeline: Vec<(f64, f64)> =
        scraper.window(&component, "watchdog.phase", onset, s.sim.now());
    s.runtime.publish_residency(&s.sim);
    let telemetry = Json::obj([
        ("experiment", Json::str("degraded")),
        ("seed", Json::u64(seed)),
        ("disk", Json::str(component.clone())),
        ("detection_s", Json::f64(timing.detection.as_secs_f64())),
        (
            "reconfiguration_s",
            Json::f64(timing.reconfiguration.as_secs_f64()),
        ),
        ("remount_s", Json::f64(timing.remount.as_secs_f64())),
        ("total_s", Json::f64(timing.total.as_secs_f64())),
        ("margin_s", Json::f64(timing.margin.as_secs_f64())),
        (
            "phase_timeline",
            Json::arr(
                phase_timeline
                    .iter()
                    .map(|&(t, v)| Json::arr([Json::f64(t), Json::f64(v)])),
            ),
        ),
        ("metrics", s.sim.metrics_snapshot().to_json()),
        ("spans", s.sim.with_spans(|t| t.to_json())),
    ]);
    let artifacts = TelemetryArtifacts::capture(&s.sim, &scraper);
    let peak_queue_depth = s
        .sim
        .metrics_snapshot()
        .gauge("sim", "queue_depth_max")
        .unwrap_or(0.0);
    DegradedRun {
        timing,
        telemetry,
        artifacts,
        events_processed: s.sim.events_processed(),
        peak_queue_depth,
    }
}

/// Regenerates the degraded-disk report.
pub fn degraded_report(seed: u64) -> Report {
    degraded_report_traced(seed).0
}

/// Like [`degraded_report`], also returning the run's telemetry and
/// artifacts.
pub fn degraded_report_traced(seed: u64) -> (Report, Json, TelemetryArtifacts) {
    let run = run_degraded_traced(seed);
    let t = &run.timing;
    let rows = vec![
        Row::measured_only("detection (onset→escalate)", t.detection.as_secs_f64(), "s"),
        Row::measured_only("reconfiguration", t.reconfiguration.as_secs_f64(), "s"),
        Row::measured_only("remount", t.remount.as_secs_f64(), "s"),
        Row::measured_only("total proactive recovery", t.total.as_secs_f64(), "s"),
        Row::measured_only("margin before hard failure", t.margin.as_secs_f64(), "s"),
        Row::measured_only("health events recorded", t.events as f64, ""),
    ];
    (
        Report::new("degraded-disk watchdog recovery", rows),
        run.telemetry,
        run.artifacts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_beats_the_hard_failure() {
        let run = run_degraded_traced(501);
        let t = &run.timing;
        assert!(t.recovered, "recovery completed");
        assert!(t.events > 0, "health events recorded");
        assert!(
            t.detection > Duration::ZERO && t.detection < Duration::from_secs(10),
            "detection {:?}",
            t.detection
        );
        assert!(
            t.total < HARD_FAILURE_AFTER,
            "recovered in {:?}, before the {HARD_FAILURE_AFTER:?} deadline",
            t.total
        );
        assert!(t.margin > Duration::from_secs(5), "margin {:?}", t.margin);
    }

    #[test]
    fn phase_timeline_is_readable_from_exported_series() {
        let run = run_degraded_traced(502);
        assert!(run.timing.recovered);
        let timeline = run
            .telemetry
            .get("phase_timeline")
            .and_then(Json::as_arr)
            .expect("phase timeline");
        let at = |phase: f64| {
            timeline
                .iter()
                .filter_map(|p| {
                    let p = p.as_arr()?;
                    (p[1].as_f64()? == phase).then(|| p[0].as_f64())?
                })
                .next()
        };
        let detect = at(1.0)
            .or_else(|| at(2.0))
            .expect("detecting/reconfiguring");
        let remount = at(3.0).expect("remounting sampled");
        let recovered = at(4.0).expect("recovered sampled");
        assert!(detect < remount && remount < recovered, "phases in order");

        // And the artifacts carry the same story in standard formats.
        assert!(run
            .artifacts
            .prometheus
            .contains("ustore_watchdog_escalations"));
        assert!(run.artifacts.timeseries_csv.contains("watchdog.phase"));
        assert!(run.artifacts.chrome_trace.contains("degradation.remount"));
    }
}
