//! Figure 5 and the §VII-A duplex experiment: aggregate throughput of
//! multiple disks behind one host's USB tree.
//!
//! The paper attaches 1, 2, 4, 8 and 12 disks to a single host through the
//! prototype fabric (1–3 leaf hubs) and drives one Iometer worker per
//! disk. Small transfers scale until the root port's command rate
//! saturates ("the sequential throughput of 8 disks can saturate the USB
//! tree"); large transfers fill the ≈300 MB/s root bandwidth with just two
//! disks; and with half the disks reading while half write, the duplex
//! link carries ≈540 MB/s — 2160 MB/s across the unit's four root paths.

use std::time::Duration;

use ustore_fabric::{DiskId, FabricRuntime, HostId, RuntimeConfig, Topology};
use ustore_sim::Sim;
use ustore_usb::UsbProfile;
use ustore_workload::{fabric_issuer, AccessSpec, Worker, WorkloadStats};

use crate::report::{Report, Row};

/// Disk counts evaluated by the paper.
pub const DISK_COUNTS: [usize; 5] = [1, 2, 4, 8, 12];

/// Builds the prototype fabric and steers the first `n` disks onto host 0
/// (whole groups of four, as the paper wires 1–3 hubs to one port).
///
/// Uses a spec-conformant root controller: the paper's Intel quirk caps a
/// host below 15 devices, which is why they "report 12 disk cases"; we
/// lift the quirk so the 12-disk point (12 disks + hubs > 15 devices in
/// our tree encoding) enumerates.
pub fn disks_on_one_host(sim: &Sim, n: usize) -> (FabricRuntime, Vec<DiskId>) {
    assert!(n <= 12, "prototype experiment uses up to 12 disks");
    let (topology, config) = Topology::upper_switched(4, 16, 4);
    let rt = FabricRuntime::new(
        sim,
        topology,
        config,
        RuntimeConfig {
            usb_profile: UsbProfile::spec_conformant(),
            store_data: false,
            ..RuntimeConfig::default()
        },
    );
    sim.run_until(sim.now() + Duration::from_secs(10));
    let groups_needed = n.div_ceil(4);
    for g in 1..groups_needed {
        let pairs: Vec<(DiskId, HostId)> = (0..4)
            .map(|i| (DiskId((g * 4 + i) as u32), HostId(0)))
            .collect();
        rt.execute(sim, pairs, |_, r| r.expect("steer group to host 0"));
        sim.run_until(sim.now() + Duration::from_secs(10));
    }
    let disks: Vec<DiskId> = (0..n as u32).map(DiskId).collect();
    for d in &disks {
        assert_eq!(rt.attached_host(*d), Some(HostId(0)), "{d} on host 0");
        assert!(rt.disk_ready(*d), "{d} enumerated");
    }
    (rt, disks)
}

/// Runs `spec` with one worker per disk and returns merged stats.
pub fn aggregate(
    sim: &Sim,
    rt: &FabricRuntime,
    disks: &[DiskId],
    spec: &AccessSpec,
    window: Duration,
) -> WorkloadStats {
    let workers: Vec<Worker> = disks
        .iter()
        .map(|d| {
            Worker::new(
                spec.clone(),
                sim.fork_rng(&format!("w{}", d.0)),
                0,
                fabric_issuer(rt.clone(), *d),
            )
        })
        .collect();
    for w in &workers {
        w.run(sim, window);
    }
    sim.run_until(sim.now() + window + Duration::from_secs(2));
    let mut total = WorkloadStats::default();
    for w in &workers {
        total.merge(&w.stats());
    }
    total
}

/// One Figure 5 series: aggregate throughput vs disk count for `spec`.
pub fn series(spec: &AccessSpec, seed: u64) -> Vec<(usize, f64)> {
    DISK_COUNTS
        .iter()
        .map(|&n| {
            let sim = Sim::new(seed.wrapping_add(n as u64));
            let (rt, disks) = disks_on_one_host(&sim, n);
            let window = if spec.request_bytes >= 1 << 20 {
                Duration::from_secs(10)
            } else {
                Duration::from_secs(3)
            };
            let stats = aggregate(&sim, &rt, &disks, spec, window);
            let v = if spec.request_bytes >= 1 << 20 {
                stats.mbps()
            } else {
                stats.iops()
            };
            (n, v)
        })
        .collect()
}

/// Regenerates Figure 5 (four representative workload series).
pub fn fig5(seed: u64) -> Vec<Report> {
    let workloads = [
        AccessSpec::new(4096, 100, false),    // 4K-S-R
        AccessSpec::new(4096, 0, false),      // 4K-S-W
        AccessSpec::new(4 << 20, 100, false), // 4M-S-R
        AccessSpec::new(4 << 20, 100, true),  // 4M-R-R
    ];
    workloads
        .iter()
        .map(|spec| {
            let unit: &'static str = if spec.request_bytes >= 1 << 20 {
                "MB/s"
            } else {
                "IO/s"
            };
            let rows = series(spec, seed)
                .into_iter()
                .map(|(n, v)| Row::measured_only(format!("{spec} x{n} disks"), v, unit))
                .collect();
            Report::new(format!("Figure 5 ({spec})"), rows)
        })
        .collect()
}

/// The §VII-A duplex experiment: 12 disks on one host, half reading and
/// half writing 4 MB sequentially.
pub fn duplex(seed: u64) -> Report {
    let sim = Sim::new(seed);
    let (rt, disks) = disks_on_one_host(&sim, 12);
    let window = Duration::from_secs(10);
    let readers: Vec<Worker> = disks[..6]
        .iter()
        .map(|d| {
            Worker::new(
                AccessSpec::new(4 << 20, 100, false),
                sim.fork_rng(&format!("r{}", d.0)),
                0,
                fabric_issuer(rt.clone(), *d),
            )
        })
        .collect();
    let writers: Vec<Worker> = disks[6..]
        .iter()
        .map(|d| {
            Worker::new(
                AccessSpec::new(4 << 20, 0, false),
                sim.fork_rng(&format!("w{}", d.0)),
                0,
                fabric_issuer(rt.clone(), *d),
            )
        })
        .collect();
    for w in readers.iter().chain(writers.iter()) {
        w.run(&sim, window);
    }
    sim.run_until(sim.now() + window + Duration::from_secs(2));
    let mut total = WorkloadStats::default();
    for w in readers.iter().chain(writers.iter()) {
        total.merge(&w.stats());
    }
    let per_root = total.mbps();
    Report::new(
        "§VII-A duplex throughput",
        vec![
            Row::new("one root path, 6R+6W 4M seq", 540.0, per_root, "MB/s"),
            Row::new("whole unit (4 root paths)", 2160.0, per_root * 4.0, "MB/s"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_sequential_reads_saturate_at_two_disks() {
        let spec = AccessSpec::new(4 << 20, 100, false);
        let s = series(&spec, 201);
        let by_n: std::collections::BTreeMap<usize, f64> = s.into_iter().collect();
        assert!(
            (by_n[&1] - 185.0).abs() < 10.0,
            "single disk {:.0}",
            by_n[&1]
        );
        assert!(by_n[&2] > 280.0, "two disks fill the root: {:.0}", by_n[&2]);
        assert!(
            by_n[&12] < 320.0,
            "root bandwidth caps at ~300: {:.0}",
            by_n[&12]
        );
    }

    #[test]
    fn small_sequential_reads_scale_until_about_eight() {
        let spec = AccessSpec::new(4096, 100, false);
        let s = series(&spec, 202);
        let by_n: std::collections::BTreeMap<usize, f64> = s.into_iter().collect();
        // Linear-ish up to 4 disks...
        assert!(by_n[&4] > 3.5 * by_n[&1], "4 disks ~4x: {:.0}", by_n[&4]);
        // ...saturated by 8: adding 4 more disks buys little.
        let growth = by_n[&12] / by_n[&8];
        assert!(growth < 1.15, "8->12 grows {growth:.2}x (saturated)");
        assert!(
            by_n[&8] > 35_000.0,
            "root sustains ~43k IO/s: {:.0}",
            by_n[&8]
        );
    }

    #[test]
    fn duplex_reaches_paper_band() {
        let rep = duplex(203);
        let per_root = rep.rows[0].measured;
        assert!(
            (per_root - 540.0).abs() / 540.0 < 0.1,
            "duplex {per_root:.0} MB/s vs paper 540"
        );
    }
}
