//! # ustore-bench — experiment harness for every table and figure
//!
//! One module per paper artefact; each produces [`Report`]s comparing the
//! paper's values against measurements from the simulated system. The
//! `repro` binary prints them (and, with `--json`, the machine-readable
//! telemetry export); the benches time them; the integration tests assert
//! the shape claims.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table2`] | Table II — single-disk perf, 3 connection types |
//! | [`fig5`] | Figure 5 — multi-disk aggregate throughput; §VII-A duplex |
//! | [`fig6`] | Figure 6 — switching time vs disks switched |
//! | [`failover`] | §I/§VII headline — 5.8 s host-failure recovery |
//! | [`degraded`] | watchdog: proactive recovery from a slowly failing disk |
//! | [`hdfs`] | §VII-B — DFS over UStore with a mid-write switch |
//! | [`power`] | Tables I, III, IV, V; rolling spin-up ablation |
//! | [`ablation`] | switch placement, heartbeat timeout, allocation policy |
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod degraded;
pub mod failover;
pub mod fig5;
pub mod fig6;
pub mod fuzz;
pub mod hdfs;
pub mod megapod;
pub mod perf;
pub mod podscale;
pub mod power;
pub mod profile;
pub mod report;
pub mod slo;
pub mod table2;

pub use report::{Report, Row, TelemetryArtifacts};
