//! Wall-clock shard profiler harness (`repro profile`).
//!
//! Runs the pod-scale deployment three ways — sharded with the profiler
//! on, sharded with it off, and on the classic single-threaded engine
//! with it on — and turns the snapshots into a scaling diagnosis:
//!
//! - **where the wall time goes**: per-world `execute` / `outbox_drain` /
//!   `barrier_wait` / `merge` / `idle_jump` breakdown, with the coverage
//!   fraction (phase sums ÷ measured wall) proving the accounting tiles
//!   the run;
//! - **how well the epochs work**: events-per-epoch distribution,
//!   idle-epoch counts, and lookahead utilization (mean epoch advance ÷
//!   lookahead);
//! - **what crosses worlds**: the `src × dst` traffic matrix with slack
//!   histograms — slack is how much earlier than the lookahead bound a
//!   message could have been delivered;
//! - **what profiling costs**: sharded wall time vs the classic engine,
//!   and a digest gate proving the profiler never perturbed the
//!   simulation (profiled and unprofiled telemetry digests must be
//!   bit-identical).

use ustore_sim::{export, Json, Phase, SpanTracer};

use crate::podscale::{
    run_podscale_profiled, run_podscale_sharded, run_podscale_sharded_profiled, PodConfig,
    PodscaleRun,
};

/// Profile-run options.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Simulation seed (shared by all three runs).
    pub seed: u64,
    /// Quick mode: the shorter podscale workload window.
    pub quick: bool,
    /// Executor threads for the sharded runs.
    pub shards: usize,
}

/// Everything `repro profile` measured.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Seed the runs used.
    pub seed: u64,
    /// Quick mode flag.
    pub quick: bool,
    /// Executor threads for the sharded runs.
    pub shards: usize,
    /// Pod shape measured.
    pub pod: PodConfig,
    /// The profiled sharded run (`prof` and `traffic` populated).
    pub sharded: PodscaleRun,
    /// The profiled classic (single-threaded) run (`prof` populated).
    pub classic: PodscaleRun,
    /// Telemetry digest of the unprofiled sharded run.
    pub unprofiled_digest: u64,
    /// Whether the profiled and unprofiled digests are bit-identical —
    /// the proof that profiling is a pure wall-clock side channel.
    pub digest_matches_unprofiled: bool,
    /// Minimum over worlds of phase-sum ÷ measured run wall. The
    /// acceptance bar is ≥ 0.95: the phase taxonomy must tile the run.
    pub coverage: f64,
}

/// Phase-sum ÷ run-wall coverage, minimized over worlds. Each world's
/// phases tile its host thread's wall clock (sibling busy time is charged
/// as `barrier_wait`), so every world should individually account for
/// ~100% of the run window; the minimum is the honest headline.
pub fn coverage_fraction(run: &PodscaleRun) -> f64 {
    let Some(prof) = &run.prof else { return 0.0 };
    let wall_ns = run.run_wall_seconds * 1e9;
    if wall_ns <= 0.0 {
        return 0.0;
    }
    prof.worlds
        .iter()
        .map(|w| w.total_ns() as f64 / wall_ns)
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// Runs the profiler harness: profiled sharded, unprofiled sharded (the
/// digest gate), and profiled classic.
pub fn run_profile(opts: &ProfileOptions) -> ProfileRun {
    let pod = if opts.quick {
        PodConfig::quick()
    } else {
        PodConfig::pod()
    };
    let sharded = run_podscale_sharded_profiled(opts.seed, &pod, opts.shards);
    let unprofiled = run_podscale_sharded(opts.seed, &pod, opts.shards);
    let classic = run_podscale_profiled(opts.seed, &pod);
    let coverage = coverage_fraction(&sharded);
    ProfileRun {
        seed: opts.seed,
        quick: opts.quick,
        shards: opts.shards,
        pod,
        unprofiled_digest: unprofiled.digest,
        digest_matches_unprofiled: sharded.digest == unprofiled.digest,
        coverage,
        sharded,
        classic,
    }
}

/// The `profile` section of `BENCH_podscale.json` (schema v3, unchanged in v6): profiled
/// sharded + classic snapshots, coverage, overhead, and the digest gate.
pub fn profile_section(
    sharded: &PodscaleRun,
    classic: &PodscaleRun,
    unprofiled_digest: Option<u64>,
) -> Json {
    let mut out = Json::obj([
        (
            "sharded",
            Json::obj([
                ("run_wall_seconds", Json::f64(sharded.run_wall_seconds)),
                ("coverage", Json::f64(coverage_fraction(sharded))),
                (
                    "prof",
                    sharded.prof.as_ref().map_or(Json::Null, |p| p.to_json()),
                ),
                (
                    "traffic",
                    sharded.traffic.as_ref().map_or(Json::Null, |t| t.to_json()),
                ),
            ]),
        ),
        (
            "classic",
            Json::obj([
                ("run_wall_seconds", Json::f64(classic.run_wall_seconds)),
                (
                    "prof",
                    classic.prof.as_ref().map_or(Json::Null, |p| p.to_json()),
                ),
            ]),
        ),
        (
            "overhead_vs_classic",
            Json::f64(if classic.run_wall_seconds > 0.0 {
                sharded.run_wall_seconds / classic.run_wall_seconds
            } else {
                f64::NAN
            }),
        ),
    ]);
    if let Some(d) = unprofiled_digest {
        out.insert("digest_matches_unprofiled", Json::Bool(sharded.digest == d));
    }
    out
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.3} s", ns as f64 / 1e9)
}

impl ProfileRun {
    /// The machine-readable document (`repro profile --json`).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("experiment", Json::str("profile")),
            ("seed", Json::u64(self.seed)),
            ("mode", Json::str(if self.quick { "quick" } else { "full" })),
            ("shards", Json::u64(self.shards as u64)),
            (
                "pod",
                Json::obj([
                    ("units", Json::u64(u64::from(self.pod.units))),
                    ("hosts", Json::u64(u64::from(self.pod.hosts()))),
                    ("disks", Json::u64(u64::from(self.pod.disks()))),
                    ("clients", Json::u64(u64::from(self.pod.clients))),
                    ("world_groups", Json::u64(u64::from(self.pod.world_groups))),
                ]),
            ),
            ("digest", Json::str(format!("{:016x}", self.sharded.digest))),
            (
                "unprofiled_digest",
                Json::str(format!("{:016x}", self.unprofiled_digest)),
            ),
        ]);
        doc.insert(
            "profile",
            profile_section(&self.sharded, &self.classic, Some(self.unprofiled_digest)),
        );
        doc
    }

    /// The wall-clock Perfetto trace: one track per engine thread under a
    /// `wall-clock` process. The sim-time process is empty — podscale runs
    /// with warning-level tracing, so there are no spans to pair it with.
    pub fn wallclock_trace(&self) -> Json {
        let spans = SpanTracer::new();
        match &self.sharded.prof {
            Some(p) => export::chrome_trace_with_wallclock(&spans, p),
            None => export::chrome_trace(&spans),
        }
    }

    /// The profiler aggregates in Prometheus exposition format
    /// (`ustore_prof_` prefix).
    pub fn prometheus(&self) -> String {
        match &self.sharded.prof {
            Some(p) => export::prometheus_prof(p, self.sharded.traffic.as_ref()),
            None => String::new(),
        }
    }

    /// Human-readable scaling diagnosis.
    pub fn diagnosis(&self) -> String {
        let mut out = String::new();
        let p = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        p(
            &mut out,
            format!(
                "pod: {} units / {} hosts / {} disks, {} worlds on {} threads",
                self.pod.units,
                self.pod.hosts(),
                self.pod.disks(),
                u64::from(self.pod.world_groups) + 1,
                self.shards
            ),
        );
        p(
            &mut out,
            format!(
                "run wall: {:.3} s sharded, {:.3} s classic ({:.2}x vs classic)",
                self.sharded.run_wall_seconds,
                self.classic.run_wall_seconds,
                self.sharded.run_wall_seconds / self.classic.run_wall_seconds.max(1e-9)
            ),
        );
        p(
            &mut out,
            format!(
                "phase coverage: {:.1}% of measured wall accounted (min across worlds)",
                self.coverage * 100.0
            ),
        );

        let Some(prof) = &self.sharded.prof else {
            p(&mut out, "no profiler snapshot captured".to_string());
            return out;
        };
        let dropped = prof.dropped_slices();
        if dropped > 0 {
            p(
                &mut out,
                format!(
                    "warning: wall-clock timeline truncated — {dropped} slices dropped past \
                     the {}-per-track cap (aggregates are complete)",
                    ustore_sim::prof::SLICE_CAP
                ),
            );
        }

        // Top phase costs, aggregated across worlds, sorted descending.
        let mut totals: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .map(|&ph| (ph, prof.phase_total_ns(ph)))
            .collect();
        totals.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let grand: u64 = totals.iter().map(|(_, ns)| ns).sum();
        p(&mut out, String::new());
        p(&mut out, "top phase costs (all worlds):".to_string());
        for (ph, ns) in &totals {
            p(
                &mut out,
                format!(
                    "  {:<13} {:>12}  {:5.1}%",
                    ph.name(),
                    fmt_secs(*ns),
                    *ns as f64 / grand.max(1) as f64 * 100.0
                ),
            );
        }

        p(&mut out, String::new());
        p(
            &mut out,
            format!(
                "  {:<5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6} {:>9} {:>7} {:>8}",
                "world",
                "execute",
                "outbox",
                "barrier",
                "merge",
                "idle",
                "wait%",
                "events",
                "epochs",
                "ev/epoch"
            ),
        );
        for w in &prof.worlds {
            let ns = |ph: Phase| w.phase_ns[ph as usize] as f64 / 1e9;
            p(
                &mut out,
                format!(
                    "  {:<5} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>5.1}% {:>9} {:>7} {:>8.1}",
                    w.world,
                    ns(Phase::Execute),
                    ns(Phase::OutboxDrain),
                    ns(Phase::BarrierWait),
                    ns(Phase::Merge),
                    ns(Phase::IdleJump),
                    w.barrier_fraction() * 100.0,
                    w.events,
                    w.epochs,
                    w.events_per_epoch.mean().unwrap_or(0.0)
                ),
            );
        }

        p(&mut out, String::new());
        let epe = prof.events_per_epoch();
        p(
            &mut out,
            format!(
                "epochs: {} windows ({} sync rounds), {} idle-jump; min lookahead {} ns, utilization {}",
                prof.epochs,
                prof.sync_rounds,
                prof.idle_jump_epochs,
                prof.lookahead_ns,
                prof.lookahead_utilization()
                    .map_or_else(|| "n/a".to_string(), |u| format!("{:.1}%", u * 100.0))
            ),
        );
        let horizon_ns = self.sharded.sim_seconds * 1e9;
        let mean_advance_ns = prof.advance_ns_total as f64 / prof.epochs.max(1) as f64;
        let barrier_ns = prof.phase_total_ns(Phase::BarrierWait);
        let accounted: u64 = Phase::ALL.iter().map(|&ph| prof.phase_total_ns(ph)).sum();
        p(
            &mut out,
            format!(
                "epoch efficiency: {} windows, mean advance {:.4}% of horizon, \
                 barrier-wait {:.1}% of accounted wall",
                prof.epochs,
                if horizon_ns > 0.0 {
                    mean_advance_ns / horizon_ns * 100.0
                } else {
                    0.0
                },
                barrier_ns as f64 / accounted.max(1) as f64 * 100.0
            ),
        );
        p(
            &mut out,
            format!(
                "events/epoch (per world): mean {:.1}, p50 {}, p99 {}, max {}",
                epe.mean().unwrap_or(0.0),
                epe.quantile(0.5).unwrap_or(0),
                epe.quantile(0.99).unwrap_or(0),
                epe.max().unwrap_or(0)
            ),
        );

        if let Some(t) = &self.sharded.traffic {
            p(&mut out, String::new());
            p(
                &mut out,
                format!(
                    "cross-world traffic: {} messages over {} world pairs",
                    t.total_messages(),
                    t.cells.len()
                ),
            );
            if let Some(b) = t.busiest() {
                p(
                    &mut out,
                    format!(
                        "  busiest pair: world {} -> {} ({} messages, min slack {} ns, mean {:.0} ns)",
                        b.src,
                        b.dst,
                        b.messages,
                        b.min_slack_ns,
                        b.mean_slack_ns()
                    ),
                );
            }
        }

        p(&mut out, String::new());
        p(
            &mut out,
            format!(
                "determinism: profiled digest {:016x} {} unprofiled {:016x}",
                self.sharded.digest,
                if self.digest_matches_unprofiled {
                    "=="
                } else {
                    "!="
                },
                self.unprofiled_digest
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_covers_wall_and_keeps_digest() {
        let run = run_profile(&ProfileOptions {
            seed: 31,
            quick: true,
            shards: 2,
        });
        assert!(
            run.digest_matches_unprofiled,
            "profiling must not perturb the simulation"
        );
        let prof = run
            .sharded
            .prof
            .as_ref()
            .expect("profiled run has snapshot");
        assert!(prof.epochs > 0);
        for w in &prof.worlds {
            assert!(
                w.phase_ns[Phase::Execute as usize] > 0,
                "world {} executed",
                w.world
            );
        }
        // The coverage bar is checked loosely here (CI machines are noisy
        // and the quick run is short); `repro profile` reports the exact
        // number and the full run meets ≥0.95.
        assert!(
            run.coverage > 0.5,
            "phase sums cover most of the wall: {}",
            run.coverage
        );
        let traffic = run.sharded.traffic.as_ref().expect("traffic matrix on");
        assert!(traffic.total_messages() > 0);
        let text = run.diagnosis();
        assert!(text.contains("top phase costs"));
        assert!(text.contains("busiest pair"));
        assert!(text.contains("epoch efficiency:"));
        assert!(text.contains("sync rounds"));
        assert!(text.contains("=="));
        let json = run.to_json().to_string();
        assert!(json.contains(r#""experiment":"profile""#));
        assert!(json.contains(r#""digest_matches_unprofiled":true"#));
        assert!(
            json.contains(r#""dropped_slices""#),
            "snapshot reports timeline truncation (0 when none)"
        );
        let prom = run.prometheus();
        assert!(prom.contains("ustore_prof_phase_seconds"));
        let trace = run.wallclock_trace().to_string();
        assert!(trace.contains("wall-clock"));
    }
}
