//! Pod-scale deployment experiment: many deploy units under one Master.
//!
//! The paper's prototype (§V-B) is a single 16-disk deploy unit. A data
//! center pod is two orders of magnitude bigger: the automated fat-tree
//! design literature (Solnushkin, arXiv:1301.6179) and reallocation-free
//! cold-storage distribution (Ishikawa, arXiv:1707.00904) both assume
//! hundreds of hosts and a thousand-plus devices. This module composes
//! `N` copies of the paper's deploy unit into one two-layer pod — every
//! unit keeps its own upper-switched USB fabric (layer one), all units
//! hang off the shared Master/coordination control plane and data-center
//! network (layer two) — and drives a mixed archival workload through the
//! full Master → EndPoint → ClientLib path.
//!
//! Besides proving the system composes, the experiment is the simulator's
//! scale yardstick: [`run_podscale`] reports wall-clock engine statistics
//! (events processed, peak live queue depth) and a telemetry digest that
//! must be bit-for-bit identical across same-seed runs. The `repro perf`
//! subcommand runs it twice and records both in `BENCH_podscale.json`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::{Duration, Instant};

use ustore::{
    ClientLibConfig, MasterConfig, Mounted, ShardedPod, ShardedPodConfig, SpaceInfo, SystemConfig,
    TelemetryPlan, TracePlan, UStoreClient, UStoreSystem, WatchdogConfig,
};
use ustore_net::BlockDevice;
use ustore_sim::{
    Json, ProfSnapshot, Profiler, RequestTracer, ScraperConfig, Sim, SimTime, TraceLevel,
    TraceSnapshot, TrafficSnapshot,
};

use crate::report::{Report, Row};

/// Shape and workload of one pod-scale run.
#[derive(Debug, Clone)]
pub struct PodConfig {
    /// Deploy units composed into the pod.
    pub units: u32,
    /// Hosts per deploy unit (the paper's unit has 4).
    pub hosts_per_unit: u32,
    /// Disks per deploy unit (the paper's unit has 16).
    pub disks_per_unit: u32,
    /// USB hub fan-in inside each unit.
    pub fanin: usize,
    /// Concurrent archival clients.
    pub clients: u32,
    /// Measured workload window (virtual time) after bring-up.
    pub run: Duration,
    /// Per-client archival write cadence.
    pub write_interval: Duration,
    /// Per-client restore read cadence.
    pub read_interval: Duration,
    /// Telemetry scrape cadence (scraper + Master watchdog are installed,
    /// as they would be in production).
    pub scrape_interval: Duration,
    /// Unit-group worlds for the sharded engine ([`run_podscale_sharded`]).
    /// Part of the scenario, not the execution: the decomposition (and so
    /// the telemetry digest) depends on it, while the shard count does
    /// not. Must divide into `units` (1..=units).
    pub world_groups: u32,
    /// Metadata partitions the Master splits its namespace into. `1` is
    /// the monolithic pre-partition layout and leaves every run
    /// bit-identical with it.
    pub partitions: u32,
    /// Client-side location lease. `None` (the default) always asks the
    /// Master; `Some(d)` caches resolved locations for `d` and adds a
    /// periodic directory-refresh lookup per client so the lease cache is
    /// actually exercised. Part of the scenario: it changes the event
    /// stream, so leased digests are not comparable with unleased ones.
    pub location_lease: Option<Duration>,
}

impl PodConfig {
    /// The full pod: 64 units of the paper's 4-host/16-disk deploy unit —
    /// 256 hosts and 1024 disks under one Master.
    pub fn pod() -> PodConfig {
        PodConfig {
            units: 64,
            hosts_per_unit: 4,
            disks_per_unit: 16,
            fanin: 4,
            clients: 32,
            run: Duration::from_secs(20),
            write_interval: Duration::from_millis(200),
            read_interval: Duration::from_millis(500),
            scrape_interval: Duration::from_millis(500),
            world_groups: 8,
            partitions: 1,
            location_lease: None,
        }
    }

    /// The same pod with the control plane scaled out: one metadata
    /// partition per unit-group world (so each partition's replica group
    /// co-locates with the units it serves) and a client-side location
    /// lease long enough that steady-state directory refreshes hit cache.
    pub fn partitioned(self) -> PodConfig {
        PodConfig {
            partitions: self.world_groups,
            location_lease: Some(Duration::from_secs(2)),
            ..self
        }
    }

    /// Same 1024-disk pod with a shorter workload window and fewer
    /// clients — the CI smoke shape.
    pub fn quick() -> PodConfig {
        PodConfig {
            clients: 8,
            run: Duration::from_secs(8),
            ..PodConfig::pod()
        }
    }

    /// A small pod for unit tests (still multi-unit, still the full
    /// control plane).
    pub fn tiny() -> PodConfig {
        PodConfig {
            units: 4,
            clients: 4,
            run: Duration::from_secs(5),
            world_groups: 4,
            ..PodConfig::pod()
        }
    }

    /// Total hosts in the pod.
    pub fn hosts(&self) -> u32 {
        self.units * self.hosts_per_unit
    }

    /// Total disks in the pod.
    pub fn disks(&self) -> u32 {
        self.units * self.disks_per_unit
    }
}

/// Engine statistics specific to a sharded ([`run_podscale_sharded`]) run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Executor threads used.
    pub shards: usize,
    /// Unit-group worlds the pod was decomposed into (plus the control
    /// world).
    pub groups: u32,
    /// Epoch windows the adaptive coordinator executed (each advances
    /// the global floor by up to one coalescing quantum).
    pub epochs: u64,
    /// Inner synchronization rounds across all windows (each round runs
    /// the runnable worlds once and exchanges messages).
    pub sync_rounds: u64,
    /// Envelopes routed across world boundaries.
    pub cross_messages: u64,
    /// Peak live queue depth of the deepest single world (per-shard max).
    pub peak_queue_depth_max: f64,
    /// Sum of per-world peaks — the whole-sim queue pressure a
    /// single-world engine would have carried.
    pub peak_queue_depth_sum: f64,
}

/// Outcome of one pod-scale run.
#[derive(Debug, Clone)]
pub struct PodscaleRun {
    /// Human-readable summary rows.
    pub report: Report,
    /// FNV-1a digest over the full telemetry export (metrics snapshot
    /// JSON + span log JSON + scraped time-series CSV). Two same-seed
    /// runs must produce the same digest. Sharded runs combine per-world
    /// digests in world-id order; the result is identical for every shard
    /// count but differs from the single-world [`run_podscale`] digest
    /// (different decomposition, different RNG streams).
    pub digest: u64,
    /// Events the engine processed over the whole run (summed across
    /// worlds for sharded runs).
    pub events: u64,
    /// Virtual seconds the run simulated (bring-up + workload).
    pub sim_seconds: f64,
    /// Peak live event-queue depth (for sharded runs: the per-shard max;
    /// see [`ShardStats`] for the whole-sim sum).
    pub peak_queue_depth: f64,
    /// Sharded-engine statistics (`None` for [`run_podscale`]).
    pub sharding: Option<ShardStats>,
    /// Completed archival writes.
    pub writes_ok: u64,
    /// Completed restore reads.
    pub reads_ok: u64,
    /// Failed IOs (should be zero in a healthy pod).
    pub io_errors: u64,
    /// Machine-readable summary (`{"experiment","seed","hosts",...}`).
    pub telemetry: Json,
    /// Wall-clock profiler snapshot (profiled runs only — see
    /// [`run_podscale_profiled`] / [`run_podscale_sharded_profiled`]).
    pub prof: Option<ProfSnapshot>,
    /// Cross-world traffic matrix snapshot (profiled sharded runs only).
    pub traffic: Option<TrafficSnapshot>,
    /// Request-lifecycle trace snapshot (traced runs only — see
    /// [`run_podscale_traced`] / [`run_podscale_sharded_traced`]).
    pub slo: Option<TraceSnapshot>,
    /// Replicated-log length of every metadata partition at the end of
    /// the run, as `(partition, applied length)` pairs in partition order
    /// (partition 0 = the base cluster, which also carries elections and
    /// sessions).
    pub partition_logs: Vec<(u32, u64)>,
    /// Wall seconds spent settling and advancing the engine (world
    /// construction excluded) — the denominator for the profiler's
    /// phase-coverage check.
    pub run_wall_seconds: f64,
}

/// FNV-1a 64-bit digest, the dependency-free way to fingerprint exports.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the mixed archival workload against already-built clients:
/// allocate one space per client (distinct services), mount, then steady
/// sequential ingest writes plus scattered restore reads for the measured
/// window. `advance` runs the engine — the single-world and sharded
/// harnesses advance time differently, the workload recipe is shared
/// (and must stay identical: the digests depend on it).
///
/// Returns `(writes_ok, reads_ok, io_errors)`.
fn drive_workload(
    sim: &Sim,
    clients: &[UStoreClient],
    cfg: &PodConfig,
    mut advance: impl FnMut(Duration),
) -> (u64, u64, u64) {
    let mut mounts: Vec<(Mounted, u32)> = Vec::new();
    let infos: Rc<RefCell<Vec<Option<SpaceInfo>>>> =
        Rc::new(RefCell::new(vec![None; cfg.clients as usize]));
    for (c, client) in clients.iter().enumerate() {
        let infos = infos.clone();
        client.allocate(sim, format!("archive-svc-{c}"), 1 << 30, move |_, r| {
            infos.borrow_mut()[c] = Some(r.expect("pod allocate"));
        });
    }
    advance(Duration::from_secs(10));
    let mounted: Rc<RefCell<Vec<Option<Mounted>>>> =
        Rc::new(RefCell::new(vec![None; cfg.clients as usize]));
    for (c, client) in clients.iter().enumerate() {
        let info = infos.borrow()[c].clone().expect("pod allocation served");
        let mounted = mounted.clone();
        client.mount(sim, info.name, move |_, r| {
            mounted.borrow_mut()[c] = Some(r.expect("pod mount"));
        });
    }
    advance(Duration::from_secs(15));
    for (c, m) in mounted.borrow().iter().enumerate() {
        mounts.push((m.clone().expect("pod mount served"), c as u32));
    }

    let writes_ok = Rc::new(Cell::new(0u64));
    let reads_ok = Rc::new(Cell::new(0u64));
    let io_errors = Rc::new(Cell::new(0u64));
    for (m, c) in &mounts {
        let stagger = Duration::from_millis(7 * u64::from(*c) % 97);
        {
            let m = m.clone();
            let ok = writes_ok.clone();
            let err = io_errors.clone();
            let k = Cell::new(u64::from(*c));
            sim.every(
                cfg.write_interval + stagger,
                cfg.write_interval,
                move |sim| {
                    let n = k.get();
                    k.set(n + 1);
                    let offset = (n * 65536) % ((1 << 30) - 65536);
                    let ok = ok.clone();
                    let err = err.clone();
                    m.write(
                        sim,
                        offset,
                        vec![0xA5; 65536],
                        Box::new(move |_, r| match r {
                            Ok(()) => ok.set(ok.get() + 1),
                            Err(_) => err.set(err.get() + 1),
                        }),
                    );
                },
            );
        }
        {
            let m = m.clone();
            let ok = reads_ok.clone();
            let err = io_errors.clone();
            let k = Cell::new(u64::from(*c).wrapping_mul(131));
            sim.every(cfg.read_interval + stagger, cfg.read_interval, move |sim| {
                let n = k.get();
                k.set(n + 1);
                let offset = (n.wrapping_mul(7919) % (1 << 14)) * 4096;
                let ok = ok.clone();
                let err = err.clone();
                m.read(
                    sim,
                    offset,
                    4096,
                    Box::new(move |_, r| match r {
                        Ok(_) => ok.set(ok.get() + 1),
                        Err(_) => err.set(err.get() + 1),
                    }),
                );
            });
        }
    }
    // With a location lease configured, add the directory-refresh traffic
    // the lease exists for: each client periodically re-checks where its
    // space lives (upper layers do this before scheduling restore jobs).
    // The first check misses and asks the Master; checks inside the lease
    // window are served from cache. Unleased runs skip this entirely so
    // their event stream stays bit-identical with the pre-lease harness.
    if cfg.location_lease.is_some() {
        for ((_, c), client) in mounts.iter().zip(clients) {
            let name = infos.borrow()[*c as usize]
                .as_ref()
                .expect("pod allocation served")
                .name;
            let stagger = Duration::from_millis(11 * u64::from(*c) % 103);
            let client = client.clone();
            let err = io_errors.clone();
            sim.every(cfg.read_interval + stagger, cfg.read_interval, move |sim| {
                let err = err.clone();
                client.lookup(sim, name, move |_, r| {
                    if r.is_err() {
                        err.set(err.get() + 1);
                    }
                });
            });
        }
    }
    advance(cfg.run);
    (writes_ok.get(), reads_ok.get(), io_errors.get())
}

/// Runs the pod-scale experiment once.
///
/// # Panics
///
/// Panics if bring-up fails (no active master, allocations not served) —
/// a pod that cannot bring up is a broken system, not a measurement.
pub fn run_podscale(seed: u64, cfg: &PodConfig) -> PodscaleRun {
    run_podscale_opts(seed, cfg, false, None)
}

/// [`run_podscale`] with the wall-clock profiler attached to the classic
/// single-threaded engine (world 0, lookahead 0). The simulation itself —
/// events, telemetry, digest — is bit-identical to the unprofiled run; only
/// `prof` and `run_wall_seconds` are populated.
pub fn run_podscale_profiled(seed: u64, cfg: &PodConfig) -> PodscaleRun {
    run_podscale_opts(seed, cfg, true, None)
}

/// [`run_podscale`] with the request-lifecycle tracer attached to the
/// classic single-threaded engine. The simulation itself — events,
/// telemetry, digest — is bit-identical to the untraced run; only `slo`
/// is additionally populated.
pub fn run_podscale_traced(seed: u64, cfg: &PodConfig, plan: TracePlan) -> PodscaleRun {
    run_podscale_opts(seed, cfg, false, Some(plan))
}

fn run_podscale_opts(
    seed: u64,
    cfg: &PodConfig,
    profile: bool,
    trace: Option<TracePlan>,
) -> PodscaleRun {
    let tracer = match &trace {
        Some(plan) => RequestTracer::on(plan.sample_every, plan.exemplars),
        None => RequestTracer::off(),
    };
    let sim = ustore_sim::Sim::new(seed);
    sim.set_reqtracer(tracer.clone());
    let system = UStoreSystem::build(
        sim,
        SystemConfig {
            units: cfg.units,
            hosts: cfg.hosts_per_unit,
            disks: cfg.disks_per_unit,
            fanin: cfg.fanin,
            master: MasterConfig {
                partitions: cfg.partitions.max(1),
                ..MasterConfig::default()
            },
            clientlib: ClientLibConfig {
                location_lease: cfg.location_lease,
                ..ClientLibConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    // Pod-scale runs are about engine throughput; keep the trace buffer to
    // warnings so it measures the system, not the logger.
    system.sim.with_trace(|t| t.set_min_level(TraceLevel::Warn));
    let profiler = if profile {
        Profiler::on(1)
    } else {
        Profiler::off()
    };
    system.sim.set_wallclock_prof(profiler.clone(), 0);
    let wall0 = Instant::now();
    system.settle();
    assert!(
        system.active_master().is_some(),
        "pod bring-up must elect a master"
    );

    // Production telemetry: scraper + Master-side watchdog over every disk.
    let scraper = system.start_telemetry(ScraperConfig {
        interval: cfg.scrape_interval,
        retention: 1024,
    });
    let _dog = system
        .install_watchdog(&scraper, WatchdogConfig::default())
        .expect("watchdog installs once a master is active");

    // Allocate one space per client, spread across distinct services so
    // the allocator fans out over units instead of packing one disk, then
    // run the mixed archival workload for the measured window.
    let clients: Vec<_> = (0..cfg.clients)
        .map(|c| system.client(&format!("archive-{c}")))
        .collect();
    let (writes_ok, reads_ok, io_errors) = drive_workload(&system.sim, &clients, cfg, |d| {
        system.sim.run_until(system.sim.now() + d);
    });
    let run_wall_seconds = wall0.elapsed().as_secs_f64();

    // Telemetry digest: the full export, fingerprinted. Residency gauges
    // are published first so the snapshot is complete.
    for rt in &system.runtimes {
        rt.publish_residency(&system.sim);
    }
    let metrics_json = system.sim.metrics_snapshot().to_json().to_string();
    let spans_json = system.sim.with_spans(|t| t.to_json()).to_string();
    let csv = scraper.to_csv();
    let mut digest = fnv1a(metrics_json.as_bytes());
    digest ^= fnv1a(spans_json.as_bytes()).rotate_left(1);
    digest ^= fnv1a(csv.as_bytes()).rotate_left(2);

    let snapshot = system.sim.metrics_snapshot();
    let peak_queue_depth = snapshot.gauge("sim", "queue_depth_max").unwrap_or(0.0);
    let events = system.sim.events_processed();
    let telemetry = Json::obj([
        ("experiment", Json::str("podscale")),
        ("seed", Json::u64(seed)),
        ("units", Json::u64(u64::from(cfg.units))),
        ("hosts", Json::u64(u64::from(cfg.hosts()))),
        ("disks", Json::u64(u64::from(cfg.disks()))),
        ("clients", Json::u64(u64::from(cfg.clients))),
        ("partitions", Json::u64(u64::from(cfg.partitions.max(1)))),
        ("sim_seconds", Json::f64(system.sim.now().as_secs_f64())),
        ("events", Json::u64(events)),
        ("peak_queue_depth", Json::f64(peak_queue_depth)),
        ("writes_ok", Json::u64(writes_ok)),
        ("reads_ok", Json::u64(reads_ok)),
        ("io_errors", Json::u64(io_errors)),
        ("telemetry_digest", Json::str(format!("{digest:016x}"))),
    ]);
    let report = Report::new(
        format!(
            "podscale — {} units, {} hosts, {} disks",
            cfg.units,
            cfg.hosts(),
            cfg.disks()
        ),
        vec![
            Row::measured_only("hosts", f64::from(cfg.hosts()), ""),
            Row::measured_only("disks", f64::from(cfg.disks()), ""),
            Row::measured_only("events processed", events as f64, ""),
            Row::measured_only("peak live queue depth", peak_queue_depth, ""),
            Row::measured_only("archival writes", writes_ok as f64, ""),
            Row::measured_only("restore reads", reads_ok as f64, ""),
            Row::measured_only("io errors", io_errors as f64, ""),
        ],
    );
    let sim_seconds = system.sim.now().as_secs_f64();
    let partition_logs: Vec<(u32, u64)> = system
        .partition_log_lens()
        .into_iter()
        .enumerate()
        .map(|(k, len)| (k as u32, len))
        .collect();
    // Break the engine's Rc cycles (pending recurring timers capture the
    // sim and components) so back-to-back harness runs in one process
    // don't accumulate each run's heap.
    system.sim.teardown();
    PodscaleRun {
        report,
        digest,
        events,
        sim_seconds,
        peak_queue_depth,
        sharding: None,
        writes_ok,
        reads_ok,
        io_errors,
        telemetry,
        prof: profiler.snapshot(),
        traffic: None,
        slo: tracer.snapshot(),
        partition_logs,
        run_wall_seconds,
    }
}

/// Runs the pod-scale experiment on the sharded parallel engine: the pod
/// is decomposed into `cfg.world_groups` unit-group worlds plus a control
/// world and executed by `shards` OS threads through adaptive epoch
/// windows (the per-pair lookahead matrix encodes the pod's star-shaped
/// control-plane topology; the network base latency is the minimum
/// cross-world lookahead).
///
/// The workload recipe is [`run_podscale`]'s, driven from the control
/// world. The telemetry digest combines per-world exports in world-id
/// order and is bit-identical for every `shards` value — only wall-clock
/// changes. The Master-side watchdog is not installed (it needs
/// cross-world disk metrics; the healthy-pod benchmark does not exercise
/// it), so digests are comparable across shard counts but not with
/// [`run_podscale`].
///
/// # Panics
///
/// Panics if bring-up fails, or on a degenerate shape (`shards` 0,
/// `world_groups` outside `1..=units`).
pub fn run_podscale_sharded(seed: u64, cfg: &PodConfig, shards: usize) -> PodscaleRun {
    run_podscale_sharded_opts(seed, cfg, shards, false, None)
}

/// [`run_podscale_sharded`] with the wall-clock shard profiler and the
/// cross-world traffic matrix enabled. The simulation is bit-identical to
/// the unprofiled run (same digest); `prof`, `traffic`, and
/// `run_wall_seconds` are additionally populated.
pub fn run_podscale_sharded_profiled(seed: u64, cfg: &PodConfig, shards: usize) -> PodscaleRun {
    run_podscale_sharded_opts(seed, cfg, shards, true, None)
}

/// [`run_podscale_sharded`] with the request-lifecycle tracer installed
/// in every world. The simulation is bit-identical to the untraced run
/// (same digest); `slo` is additionally populated.
pub fn run_podscale_sharded_traced(
    seed: u64,
    cfg: &PodConfig,
    shards: usize,
    plan: TracePlan,
) -> PodscaleRun {
    run_podscale_sharded_opts(seed, cfg, shards, false, Some(plan))
}

fn run_podscale_sharded_opts(
    seed: u64,
    cfg: &PodConfig,
    shards: usize,
    profile: bool,
    trace: Option<TracePlan>,
) -> PodscaleRun {
    let mut pod = ShardedPod::build(
        seed,
        &ShardedPodConfig {
            system: SystemConfig {
                units: cfg.units,
                hosts: cfg.hosts_per_unit,
                disks: cfg.disks_per_unit,
                fanin: cfg.fanin,
                master: MasterConfig {
                    partitions: cfg.partitions.max(1),
                    ..MasterConfig::default()
                },
                clientlib: ClientLibConfig {
                    location_lease: cfg.location_lease,
                    ..ClientLibConfig::default()
                },
                ..SystemConfig::default()
            },
            groups: cfg.world_groups,
            shards,
            clients: (0..cfg.clients).map(|c| format!("archive-{c}")).collect(),
            telemetry: Some(TelemetryPlan {
                start: SimTime::from_secs(15),
                scraper: ScraperConfig {
                    interval: cfg.scrape_interval,
                    retention: 1024,
                },
            }),
            trace_level: TraceLevel::Warn,
            profile,
            trace,
        },
    );
    let wall0 = Instant::now();
    pod.run_until(SimTime::from_secs(15));
    assert!(
        pod.active_master().is_some(),
        "pod bring-up must elect a master"
    );

    let sim = pod.sim.clone();
    let clients = pod.clients.clone();
    let (writes_ok, reads_ok, io_errors) = drive_workload(&sim, &clients, cfg, |d| pod.run_for(d));
    let run_wall_seconds = wall0.elapsed().as_secs_f64();
    let prof = pod.prof_snapshot();
    let traffic = pod.traffic_snapshot();
    let slo = pod.trace_snapshot();

    let sim_seconds = pod.now().as_secs_f64();
    let epochs = pod.epochs();
    let sync_rounds = pod.sync_rounds();
    let cross_messages = pod.cross_messages();
    drop((sim, clients));
    let worlds = pod.finalize();

    // Combine per-world digests in world-id order. The per-world digest is
    // the single-world formula; the fold is order-sensitive so a swap of
    // two worlds' telemetry cannot cancel out.
    let mut digest = 0u64;
    let mut events = 0u64;
    let mut peak_max = 0f64;
    let mut peak_sum = 0f64;
    let mut partition_logs: Vec<(u32, u64)> = Vec::new();
    for w in &worlds {
        let mut d = fnv1a(w.metrics_json.as_bytes());
        d ^= fnv1a(w.spans_json.as_bytes()).rotate_left(1);
        d ^= fnv1a(w.scrape_csv.as_bytes()).rotate_left(2);
        digest = digest.rotate_left(7) ^ d;
        events += w.events;
        peak_max = peak_max.max(w.peak_queue_depth);
        peak_sum += w.peak_queue_depth;
        partition_logs.extend(w.partition_logs.iter().copied());
    }
    partition_logs.sort_unstable();
    let sharding = ShardStats {
        shards,
        groups: cfg.world_groups,
        epochs,
        sync_rounds,
        cross_messages,
        peak_queue_depth_max: peak_max,
        peak_queue_depth_sum: peak_sum,
    };

    let telemetry = Json::obj([
        ("experiment", Json::str("podscale_sharded")),
        ("seed", Json::u64(seed)),
        ("units", Json::u64(u64::from(cfg.units))),
        ("hosts", Json::u64(u64::from(cfg.hosts()))),
        ("disks", Json::u64(u64::from(cfg.disks()))),
        ("clients", Json::u64(u64::from(cfg.clients))),
        ("world_groups", Json::u64(u64::from(cfg.world_groups))),
        ("partitions", Json::u64(u64::from(cfg.partitions.max(1)))),
        ("shards", Json::u64(shards as u64)),
        ("epochs", Json::u64(epochs)),
        ("sync_rounds", Json::u64(sync_rounds)),
        ("cross_messages", Json::u64(cross_messages)),
        ("sim_seconds", Json::f64(sim_seconds)),
        ("events", Json::u64(events)),
        ("peak_queue_depth_max", Json::f64(peak_max)),
        ("peak_queue_depth_sum", Json::f64(peak_sum)),
        ("writes_ok", Json::u64(writes_ok)),
        ("reads_ok", Json::u64(reads_ok)),
        ("io_errors", Json::u64(io_errors)),
        ("telemetry_digest", Json::str(format!("{digest:016x}"))),
    ]);
    let report = Report::new(
        format!(
            "podscale (sharded) — {} units in {} worlds on {} threads",
            cfg.units, cfg.world_groups, shards
        ),
        vec![
            Row::measured_only("hosts", f64::from(cfg.hosts()), ""),
            Row::measured_only("disks", f64::from(cfg.disks()), ""),
            Row::measured_only("events processed", events as f64, ""),
            Row::measured_only("epoch windows", epochs as f64, ""),
            Row::measured_only("sync rounds", sync_rounds as f64, ""),
            Row::measured_only("cross-world messages", cross_messages as f64, ""),
            Row::measured_only("peak queue depth (per-shard max)", peak_max, ""),
            Row::measured_only("peak queue depth (whole-sim sum)", peak_sum, ""),
            Row::measured_only("archival writes", writes_ok as f64, ""),
            Row::measured_only("restore reads", reads_ok as f64, ""),
            Row::measured_only("io errors", io_errors as f64, ""),
        ],
    );
    PodscaleRun {
        report,
        digest,
        events,
        sim_seconds,
        peak_queue_depth: peak_max,
        sharding: Some(sharding),
        writes_ok,
        reads_ok,
        io_errors,
        telemetry,
        prof,
        traffic,
        slo,
        partition_logs,
        run_wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pod_brings_up_and_serves_io() {
        let run = run_podscale(901, &PodConfig::tiny());
        assert!(run.writes_ok > 0, "archival writes completed");
        assert!(run.reads_ok > 0, "restore reads completed");
        assert_eq!(run.io_errors, 0, "healthy pod serves all IO");
        assert!(run.events > 10_000, "pod generates real event volume");
    }

    #[test]
    fn sharded_tiny_pod_serves_io_and_reports_shard_stats() {
        let cfg = PodConfig::tiny();
        let run = run_podscale_sharded(904, &cfg, 2);
        assert!(run.writes_ok > 0, "archival writes completed");
        assert!(run.reads_ok > 0, "restore reads completed");
        assert_eq!(run.io_errors, 0, "healthy pod serves all IO");
        let s = run.sharding.expect("sharded run carries shard stats");
        assert_eq!(s.shards, 2);
        assert_eq!(s.groups, cfg.world_groups);
        assert!(s.epochs > 0, "coordinator ran epoch windows");
        assert!(s.sync_rounds > 0, "windows executed sync rounds");
        assert!(s.cross_messages > 0, "workload crossed world boundaries");
        assert!(s.peak_queue_depth_sum >= s.peak_queue_depth_max);
    }

    #[test]
    fn traced_tiny_pod_attributes_ttfb() {
        if !RequestTracer::compiled_in() {
            return;
        }
        let run = run_podscale_traced(905, &PodConfig::tiny(), TracePlan::default());
        let slo = run.slo.expect("traced run snapshots");
        assert!(slo.seen > 0, "workload completed under trace");
        assert!(slo.worst().is_some(), "slowest exemplar retained");
        // Acceptance invariant: stage sums explain >=95% of end-to-end
        // TTFB at every reported quantile.
        for q in [0.5, 0.99, 0.999] {
            let c = slo.min_coverage(q).expect("traffic on both kinds");
            assert!(c >= 0.95, "stage coverage {c:.3} below 0.95 at q={q}");
        }
    }

    #[test]
    fn partitioned_leased_tiny_pod_serves_io() {
        let cfg = PodConfig::tiny().partitioned();
        assert_eq!(cfg.partitions, cfg.world_groups);
        let run = run_podscale_sharded(906, &cfg, 2);
        assert!(run.writes_ok > 0, "archival writes completed");
        assert!(run.reads_ok > 0, "restore reads completed");
        assert_eq!(run.io_errors, 0, "healthy pod serves all IO and lookups");
        assert_eq!(
            run.partition_logs.len(),
            cfg.partitions as usize,
            "every metadata partition reports its log"
        );
        assert!(
            run.partition_logs.iter().all(|&(_, len)| len > 0),
            "every partition's replicated log applied entries: {:?}",
            run.partition_logs
        );
    }

    #[test]
    fn same_seed_runs_share_a_digest() {
        let cfg = PodConfig::tiny();
        let a = run_podscale(902, &cfg);
        let b = run_podscale(902, &cfg);
        assert_eq!(a.digest, b.digest, "telemetry digest is deterministic");
        assert_eq!(a.events, b.events);
        let c = run_podscale(903, &cfg);
        assert_ne!(a.digest, c.digest, "different seed, different telemetry");
    }
}
