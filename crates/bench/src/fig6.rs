//! Figure 6: switching time vs number of disks switched together.
//!
//! The paper decomposes the delay of moving disks between hosts into
//! three parts: (1) rejection on the old host until recognition by the
//! new host's USB driver, (2) recognition until the disk is exposed on
//! the network, (3) exposure until the ClientLib has remounted. Part 1
//! grows with the number of disks switched simultaneously (bus-serialized
//! enumeration); parts 2 and 3 are flat. Each point averages several
//! repetitions, as in the paper ("repeat each case 6 times").

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use ustore_fabric::{DiskId, FabricRuntime, HostId, RuntimeConfig, Topology};
use ustore_sim::{Sim, SimTime};
use ustore_usb::UsbProfile;

use crate::report::{Report, Row};

/// Disk counts of the Figure 6 sweep.
pub const SWITCH_COUNTS: [usize; 5] = [1, 2, 4, 8, 12];

/// Time from issuing a switch command for `n` disks until every moved
/// disk has re-enumerated on the new host (part 1, plus the command's
/// actuation and verification-poll overhead).
pub fn switch_time(n: usize, seed: u64) -> Duration {
    let sim = Sim::new(seed);
    // The leaf-switched (Figure 2 left) fabric moves disks individually.
    let (topology, config) = Topology::leaf_switched(16, 4);
    let rt = FabricRuntime::new(
        &sim,
        topology,
        config,
        RuntimeConfig {
            usb_profile: UsbProfile::spec_conformant(),
            store_data: false,
            verify_poll: Duration::from_millis(50),
            ..RuntimeConfig::default()
        },
    );
    sim.run_until(sim.now() + Duration::from_secs(20));
    // Consolidate every disk on host 0 first (the leaf-switched fabric
    // moves disks individually, so this always succeeds).
    let all: Vec<(DiskId, HostId)> = rt.disk_ids().into_iter().map(|d| (d, HostId(0))).collect();
    rt.execute(&sim, all, |_, r| r.expect("consolidate on host 0"));
    sim.run_until(sim.now() + Duration::from_secs(30));
    // Pick n disks and move them to host 1.
    let victims: Vec<DiskId> = rt
        .disk_ids()
        .into_iter()
        .filter(|d| rt.attached_host(*d) == Some(HostId(0)))
        .take(n)
        .collect();
    assert_eq!(victims.len(), n, "need {n} disks on host 0");
    let pairs: Vec<(DiskId, HostId)> = victims.iter().map(|d| (*d, HostId(1))).collect();
    let t0 = sim.now();
    let done = Rc::new(Cell::new(SimTime::ZERO));
    let d = done.clone();
    rt.execute(&sim, pairs, move |sim, r| {
        r.expect("switch command");
        d.set(sim.now());
    });
    sim.run_until(sim.now() + Duration::from_secs(60));
    assert!(done.get() > SimTime::ZERO, "command completed");
    // Read the duration off the command's `fabric.execute` span (which
    // covers lock → actuate → verify) rather than wall-clocking the
    // callback; the two agree, but the span is what the telemetry
    // export carries.
    sim.with_spans(|t| {
        t.by_name("fabric.execute")
            .filter(|s| s.start >= t0)
            .last()
            .and_then(|s| s.duration())
    })
    .expect("execute span closed")
}

/// Averaged part-1 time for each disk count.
pub fn part1_series(seed: u64, repeats: u64) -> Vec<(usize, Duration)> {
    SWITCH_COUNTS
        .iter()
        .map(|&n| {
            let total: Duration = (0..repeats)
                .map(|r| switch_time(n, seed.wrapping_mul(31).wrapping_add(r)))
                .sum();
            (n, total / repeats as u32)
        })
        .collect()
}

/// Fixed part-2 (target export) and part-3 (remount) times, from the
/// component configurations they are measured from in the full system.
pub fn fixed_parts() -> (Duration, Duration) {
    let export = ustore::EndpointConfig::default().export_delay;
    let cfg = ustore::ClientLibConfig::default();
    // Remount = master lookup + iSCSI login round trips (sub-ms in-DC)
    // plus the device-settle delay.
    let remount = cfg.mount_settle + Duration::from_millis(50);
    (export, remount)
}

/// Regenerates Figure 6.
pub fn fig6(seed: u64, repeats: u64) -> Report {
    let (part2, part3) = fixed_parts();
    let mut rows = Vec::new();
    for (n, part1) in part1_series(seed, repeats) {
        rows.push(Row::measured_only(
            format!("part 1 (re-enumeration) x{n}"),
            part1.as_secs_f64(),
            "s",
        ));
        rows.push(Row::measured_only(
            format!("total switch x{n}"),
            (part1 + part2 + part3).as_secs_f64(),
            "s",
        ));
    }
    rows.push(Row::measured_only(
        "part 2 (target export)",
        part2.as_secs_f64(),
        "s",
    ));
    rows.push(Row::measured_only(
        "part 3 (remount)",
        part3.as_secs_f64(),
        "s",
    ));
    Report::new("Figure 6 (switching time)", rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part1_grows_with_disk_count_parts23_flat() {
        let t1 = switch_time(1, 301);
        let t4 = switch_time(4, 302);
        let t12 = switch_time(12, 303);
        assert!(t4 > t1, "{t1:?} -> {t4:?}");
        assert!(t12 > t4, "{t4:?} -> {t12:?}");
        // Slope ~ the serialized enumeration cost (0.3 s/disk).
        let slope = (t12 - t1).as_secs_f64() / 11.0;
        assert!((slope - 0.3).abs() < 0.1, "slope {slope:.2} s/disk");
        // Single-disk switch lands in the couple-of-seconds band.
        assert!(
            t1 > Duration::from_secs(1) && t1 < Duration::from_secs(4),
            "{t1:?}"
        );
    }

    #[test]
    fn totals_fit_services_tolerance() {
        // "The delay is short enough for most services in data centers to
        // be regarded as temporary failure": total stays well under the
        // 30 s verification bound for every count.
        let (p2, p3) = fixed_parts();
        for (n, p1) in part1_series(304, 2) {
            let total = p1 + p2 + p3;
            assert!(total < Duration::from_secs(12), "x{n}: {total:?}");
        }
    }
}
