//! Seeded scenario fuzzer with deterministic replay (`repro fuzz`).
//!
//! Every fault path in this reproduction was grown against hand-scripted
//! scenarios: one disk drifts, one host dies, one hub fails. The fuzzer
//! closes the gap between those unit scenarios and what an operating
//! fleet actually experiences — *many* faults, correlated, at awkward
//! times — by running randomized campaigns and checking system-level
//! invariants after each one:
//!
//! 1. draw a [`FaultSchedule`] from the empirical fault model
//!    (`ustore_sim::faultgen`): bathtub drive failures, latent sector
//!    errors, degradation ramps, scrub passes, hub/host domain outages;
//! 2. run a full [`UStoreSystem`] (2 units / 8 hosts / 16 disks) with the
//!    telemetry pipeline and health watchdog on, under a steady tracked
//!    read/write workload, and apply the schedule through the ordinary
//!    injection hooks (`set_latency_factor`, `set_read_error_rate`,
//!    `inject_bad_page`, `set_failed`, `Disk::scrub`, fabric hub/host
//!    kill paths);
//! 3. after a repair grace window, read back every acknowledged write and
//!    probe every mount: an acked write that cannot be read back — and is
//!    not explained by an injected fault (drive loss, latent sector) — is
//!    an **invariant violation**, as is a mount that never came back on a
//!    healthy disk. Explained losses feed the durability accounting
//!    instead of failing the run.
//!
//! On a violation the fuzzer **shrinks** the schedule (greedy ddmin-style
//! chunk removal, bounded reruns) to a minimal still-failing event list,
//! then **replays** the campaign from its seed and asserts the telemetry
//! digest is bit-identical — the contract that `repro fuzz --replay
//! <seed>` reproduces exactly what the campaign saw. The replay gate also
//! runs on clean campaigns so CI always exercises it. `--synthetic-fail`
//! plants a harness-level expectation fault (no simulator state touched)
//! so the shrink + failing-replay paths stay tested even when the system
//! is healthy; its minimal schedule is empty, correctly showing the
//! failure is not schedule-dependent.
//!
//! Everything is a pure function of the root seed: campaign seeds are
//! derived with the sharded engine's own SplitMix64 mixer, schedules are
//! keyed per-(world, unit) exactly like the shard decomposition (thread
//! count never enters — goldened in `tests/determinism.rs`), and each
//! campaign runs on one seeded [`Sim`].

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, SystemConfig, UStoreSystem, UnitId, WatchdogConfig};
use ustore_fabric::{DiskId, UpRef};
use ustore_net::BlockDevice;
use ustore_sim::faultgen::mix_seed;
use ustore_sim::{
    FaultKind, FaultModelConfig, FaultSchedule, FleetShape, Json, ScraperConfig, Sim,
};

use crate::podscale::fnv1a;

/// 4 KiB pages, matching the disk model's sector-error granularity.
const PAGE: u64 = 4096;
/// Tracked write size (two whole pages — a full-page overwrite repairs).
const WRITE_LEN: u64 = 2 * PAGE;
/// Space size each fuzz client allocates.
const SPACE_SIZE: u64 = 256 << 20;
/// Tracked mounts (one per fuzz client).
const MOUNTS: u32 = 2;
/// Steady-state write cadence per mount.
const WRITE_INTERVAL: Duration = Duration::from_millis(400);
/// Steady-state read cadence per mount.
const READ_INTERVAL: Duration = Duration::from_millis(150);
/// Healthy warm-up before the fault window (watchdog baseline learning).
const WARMUP: Duration = Duration::from_secs(8);
/// Per-disk background patrol-read cadence: keeps every disk's latency
/// series alive so the watchdog can see drift on disks the tracked
/// workload never touches.
const PATROL_INTERVAL: Duration = Duration::from_millis(700);
/// Post-horizon repair grace: domain repairs dwell 10 s, then remounts.
const GRACE: Duration = Duration::from_secs(20);
/// Settle window after the final probes are issued (a probe of a latent
/// bad page exhausts the client's remount-retry loop before failing).
const PROBE_WINDOW: Duration = Duration::from_secs(20);
/// Acked writes probed per mount (evenly sampled; all are counted for
/// durability, the probe set bounds the readback traffic).
const PROBES_PER_MOUNT: usize = 40;
/// Campaign reruns the shrinker may spend minimizing one failure.
const SHRINK_BUDGET: u32 = 16;

/// Fuzzer options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOptions {
    /// Root seed; campaign seeds derive from it.
    pub seed: u64,
    /// Quick mode: the shorter, denser fault model (what CI runs).
    pub quick: bool,
    /// Executor threads the equivalent sharded run would use. Schedule
    /// generation provably ignores it; carried so the report states the
    /// invariance it was checked under.
    pub shards: usize,
    /// Campaigns to run (ignored when `replay` is set).
    pub campaigns: u32,
    /// Plant a harness-level self-test fault in every campaign.
    pub synthetic_fail: bool,
    /// Replay exactly one campaign by its campaign seed.
    pub replay: Option<u64>,
}

impl FuzzOptions {
    /// The fault model matching the mode.
    pub fn model(&self) -> FaultModelConfig {
        if self.quick {
            FaultModelConfig::quick()
        } else {
            FaultModelConfig::reference()
        }
    }
}

/// The fleet every campaign runs: 2 units × (4 hosts, 8 disks, fan-in 4),
/// decomposed one unit per world like the sharded pod would be.
pub fn campaign_shape() -> FleetShape {
    FleetShape {
        units: 2,
        hosts_per_unit: 4,
        disks_per_unit: 8,
        fanin: 4,
        world_groups: 2,
    }
}

fn campaign_system_config() -> SystemConfig {
    let shape = campaign_shape();
    SystemConfig {
        units: shape.units,
        hosts: shape.hosts_per_unit,
        disks: shape.disks_per_unit,
        fanin: shape.fanin as usize,
        ..SystemConfig::default()
    }
}

/// Campaign seed for campaign index `i` under a root seed — the same
/// SplitMix64 mixing the sharded engine keys world streams with.
pub fn campaign_seed(root: u64, i: u32) -> u64 {
    mix_seed(root, 0xFA07_0000 + u64::from(i))
}

/// One acknowledged tracked write.
#[derive(Debug, Clone, Copy)]
struct AckedWrite {
    offset: u64,
    fill: u8,
}

/// What the harness injected, so the oracle can tell bug from fault.
#[derive(Default)]
struct Tracker {
    /// Disks the schedule hard-failed, by (unit, disk).
    hard_failed: BTreeSet<(u32, u32)>,
    /// Latent-sector pages injected per (unit, disk).
    lse: BTreeMap<(u32, u32), BTreeSet<u64>>,
    /// Disks already marked as watchdog ground truth.
    marked: BTreeSet<String>,
    scrub_scanned_pages: u64,
    scrub_found: u64,
    scrub_repaired_pages: u64,
    io_errors: u64,
}

/// Outcome of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The campaign seed (feed it to `--replay`).
    pub seed: u64,
    /// Digest of the applied schedule.
    pub schedule_digest: u64,
    /// Events in the applied schedule.
    pub schedule_events: usize,
    /// Schedule composition by kind label.
    pub counts: Vec<(&'static str, u64)>,
    /// Campaign digest: telemetry digest ⊕ rotated schedule digest.
    pub digest: u64,
    /// Acknowledged tracked writes.
    pub acked: u64,
    /// Probed acked writes read back with the right bytes.
    pub survived: u64,
    /// Acked writes on drives the schedule hard-failed (explained loss).
    pub lost_hard: u64,
    /// Probed acked writes lost to injected latent sectors (explained).
    pub lost_latent: u64,
    /// Invariant violations (empty = campaign passed).
    pub violations: Vec<String>,
    /// Watchdog escalations over the campaign.
    pub escalations: u64,
    /// Watchdog false positives (escalated never-degraded disks).
    pub false_pos: u64,
    /// Watchdog false negatives (degraded disks never escalated).
    pub false_neg: u64,
    /// Disks the schedule actually put on a degradation ramp.
    pub truth_marked: u64,
    /// Pages covered by background scrub passes.
    pub scrub_scanned_pages: u64,
    /// Latent pages scrub repaired.
    pub scrub_repaired_pages: u64,
    /// Workload IO errors observed mid-campaign (expected under faults).
    pub io_errors: u64,
    /// Virtual seconds the campaign simulated.
    pub sim_seconds: f64,
    /// Engine events processed.
    pub events_processed: u64,
}

impl CampaignOutcome {
    fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A failing campaign, minimized and replayed.
#[derive(Debug, Clone)]
pub struct FailingCase {
    /// The failing campaign's seed.
    pub seed: u64,
    /// Its violations.
    pub violations: Vec<String>,
    /// Events in the original schedule.
    pub original_events: usize,
    /// The minimal still-failing schedule.
    pub minimized: FaultSchedule,
    /// Campaign reruns the shrinker spent.
    pub shrink_runs: u32,
}

/// The replay determinism gate.
#[derive(Debug, Clone, Copy)]
pub struct ReplayCheck {
    /// Seed that was replayed.
    pub seed: u64,
    /// Digest of the first run.
    pub digest: u64,
    /// Digest of the replay.
    pub replay_digest: u64,
    /// Bit-identical?
    pub matches: bool,
}

/// A full fuzz run: campaigns, the (optional) minimized failure, and the
/// replay gate.
#[derive(Debug, Clone)]
pub struct FuzzRun {
    /// Options the run used.
    pub options: FuzzOptions,
    /// The fleet shape every campaign ran.
    pub shape: FleetShape,
    /// Per-campaign outcomes, in seed-derivation order.
    pub campaigns: Vec<CampaignOutcome>,
    /// First failing campaign, shrunk — `None` when all passed.
    pub failing: Option<FailingCase>,
    /// The replay gate (failing campaign's seed when there is one).
    pub replay: ReplayCheck,
}

/// One campaign: build the system, run the tracked workload, apply the
/// schedule, then let the oracle judge the wreckage.
fn run_campaign(
    seed: u64,
    model: &FaultModelConfig,
    schedule: &FaultSchedule,
    synthetic_fail: bool,
) -> CampaignOutcome {
    let s = Rc::new(UStoreSystem::build(
        Sim::new(seed),
        campaign_system_config(),
    ));
    s.settle();

    let scraper = s.start_telemetry(ScraperConfig {
        interval: Duration::from_millis(500),
        retention: 8192,
    });
    let dog = s
        .install_watchdog(
            &scraper,
            WatchdogConfig {
                ewma_alpha: 0.1,
                ..WatchdogConfig::default()
            },
        )
        .expect("active master after settle");

    // Allocate and mount one tracked space per client.
    let mut mounts: Vec<(Mounted, SpaceInfo)> = Vec::new();
    {
        let infos: Rc<RefCell<Vec<SpaceInfo>>> = Rc::new(RefCell::new(Vec::new()));
        let clients: Vec<_> = (0..MOUNTS)
            .map(|c| s.client(&format!("fuzz-{c}")))
            .collect();
        for client in &clients {
            let i2 = infos.clone();
            client.allocate(&s.sim, "fuzz", SPACE_SIZE, move |_, r| {
                i2.borrow_mut().push(r.expect("allocate"));
            });
        }
        s.sim.run_until(s.sim.now() + Duration::from_secs(5));
        let mut infos = infos.borrow_mut();
        infos.sort_by_key(|i| (i.name.unit, i.name.disk, i.name.space));
        for (client, info) in clients.iter().zip(infos.drain(..)) {
            let slot: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
            let m2 = slot.clone();
            client.mount(&s.sim, info.name, move |_, r| {
                *m2.borrow_mut() = Some(r.expect("mount"));
            });
            s.sim.run_until(s.sim.now() + Duration::from_secs(5));
            let mounted = slot.borrow_mut().take().expect("mounted");
            mounts.push((mounted, info));
        }
    }

    let tracker: Rc<RefCell<Tracker>> = Rc::new(RefCell::new(Tracker::default()));
    let stop = Rc::new(Cell::new(false));
    let mut acked_lists: Vec<Rc<RefCell<Vec<AckedWrite>>>> = Vec::new();

    // Tracked workload: append-style writes (distinct fill bytes, never
    // reusing an offset, so an acked write has exactly one expected
    // payload) and scattered reads that keep every disk's latency series
    // alive for the watchdog.
    for (mi, (mounted, info)) in mounts.iter().enumerate() {
        let acked: Rc<RefCell<Vec<AckedWrite>>> = Rc::new(RefCell::new(Vec::new()));
        acked_lists.push(acked.clone());
        let disk_key = (info.name.unit.0, info.name.disk.0);
        {
            let mounted = mounted.clone();
            let acked = acked.clone();
            let tracker = tracker.clone();
            let stop = stop.clone();
            let n = Cell::new(0u64);
            s.sim.every(WRITE_INTERVAL, WRITE_INTERVAL, move |sim| {
                if stop.get() || tracker.borrow().hard_failed.contains(&disk_key) {
                    return;
                }
                let k = n.get();
                n.set(k + 1);
                let offset = k * WRITE_LEN;
                if offset + WRITE_LEN > SPACE_SIZE {
                    return;
                }
                let fill = 1 + ((k + 13 * mi as u64) % 250) as u8;
                let acked = acked.clone();
                let tracker = tracker.clone();
                mounted.write(
                    sim,
                    offset,
                    vec![fill; WRITE_LEN as usize],
                    Box::new(move |_, r| match r {
                        Ok(()) => acked.borrow_mut().push(AckedWrite { offset, fill }),
                        Err(_) => tracker.borrow_mut().io_errors += 1,
                    }),
                );
            });
        }
        {
            let mounted = mounted.clone();
            let tracker = tracker.clone();
            let stop = stop.clone();
            let n = Cell::new(0u64);
            s.sim.every(READ_INTERVAL, READ_INTERVAL, move |sim| {
                if stop.get() || tracker.borrow().hard_failed.contains(&disk_key) {
                    return;
                }
                let k = n.get();
                n.set(k + 1);
                let offset = (k.wrapping_mul(7919) % (SPACE_SIZE / PAGE / 4)) * PAGE;
                let tracker = tracker.clone();
                mounted.read(
                    sim,
                    offset,
                    PAGE,
                    Box::new(move |_, r| {
                        if r.is_err() {
                            tracker.borrow_mut().io_errors += 1;
                        }
                    }),
                );
            });
        }
    }

    // Patrol reads: a light background read against every disk in the
    // fleet. Without them a drifting idle disk has no latency series for
    // the watchdog to breach (a guaranteed false negative), and latent
    // sector errors could only surface on the one restore read that
    // needed them — patrol is how production fleets find both.
    for (u, rt) in s.runtimes.iter().enumerate() {
        for d in rt.disk_ids() {
            let rt = rt.clone();
            let tracker = tracker.clone();
            let stop = stop.clone();
            let key = (u as u32, d.0);
            let n = Cell::new(0u64);
            let first = PATROL_INTERVAL + Duration::from_millis(37 * (u64::from(d.0) + 1));
            s.sim.every(first, PATROL_INTERVAL, move |sim| {
                if stop.get() || tracker.borrow().hard_failed.contains(&key) {
                    return;
                }
                let k = n.get();
                n.set(k + 1);
                let offset = (k.wrapping_mul(7919) % ((64 << 20) / PAGE)) * PAGE;
                rt.read(sim, d, offset, PAGE, |_, _| {});
            });
        }
    }
    s.sim.run_until(s.sim.now() + WARMUP);

    // Apply the schedule. Indices are logical (unit-relative); resolve
    // them against the runtimes here, at the only layer that knows both.
    let fault_start = s.sim.now();
    for ev in &schedule.events {
        let at = fault_start + Duration::from_nanos(ev.at.as_nanos());
        match ev.kind.clone() {
            FaultKind::DriveFailure { unit, disk } => {
                let d = s.runtimes[unit as usize].disk(DiskId(disk));
                let tracker = tracker.clone();
                s.sim.schedule_at(at, move |sim| {
                    tracker.borrow_mut().hard_failed.insert((unit, disk));
                    d.set_failed(sim, true);
                });
            }
            FaultKind::LatencyDrift {
                unit,
                disk,
                factor,
                error_rate,
            } => {
                let d = s.runtimes[unit as usize].disk(DiskId(disk));
                let dog = dog.clone();
                let tracker = tracker.clone();
                let component = format!("{}", DiskId(disk));
                s.sim.schedule_at(at, move |sim| {
                    // Ground truth for FP/FN accounting: a drifting disk
                    // is what the watchdog is *supposed* to escalate.
                    // (Components are name-keyed; units sharing disk
                    // names share one watch, like their metrics merge.)
                    if tracker.borrow_mut().marked.insert(component.clone()) {
                        dog.mark_degraded(&component);
                    }
                    d.set_latency_factor(factor);
                    d.set_read_error_rate(sim, error_rate);
                });
            }
            FaultKind::LatentSector { unit, disk, offset } => {
                let d = s.runtimes[unit as usize].disk(DiskId(disk));
                let tracker = tracker.clone();
                s.sim.schedule_at(at, move |_| {
                    tracker
                        .borrow_mut()
                        .lse
                        .entry((unit, disk))
                        .or_default()
                        .insert(offset / PAGE);
                    d.inject_bad_page(offset);
                });
            }
            FaultKind::ScrubPass { unit, disk } => {
                let d = s.runtimes[unit as usize].disk(DiskId(disk));
                let tracker = tracker.clone();
                let span = model.region_bytes;
                s.sim.schedule_at(at, move |sim| {
                    let tracker = tracker.clone();
                    d.scrub(sim, 0, span, move |_, r| {
                        if let Ok(rep) = r {
                            let mut t = tracker.borrow_mut();
                            t.scrub_scanned_pages += rep.scanned_pages;
                            t.scrub_found += rep.bad_found;
                            t.scrub_repaired_pages += rep.repaired;
                        }
                    });
                });
            }
            FaultKind::HubFailure { unit, group } | FaultKind::HubRepair { unit, group } => {
                let repair = matches!(ev.kind, FaultKind::HubRepair { .. });
                let rt = s.runtimes[unit as usize].clone();
                let first_disk = DiskId(group * campaign_shape().fanin);
                s.sim.schedule_at(at, move |sim| {
                    let hub = rt.with_state(|st| match st.topology().disk_upstream(first_disk) {
                        Some(UpRef::Hub(h)) => Some(h),
                        _ => None,
                    });
                    if let Some(h) = hub {
                        if repair {
                            rt.hub_repaired(sim, h);
                        } else {
                            rt.hub_failed(sim, h);
                        }
                    }
                });
            }
            FaultKind::HostFailure { unit, host } | FaultKind::HostRepair { unit, host } => {
                let repair = matches!(ev.kind, FaultKind::HostRepair { .. });
                let s2 = s.clone();
                s.sim.schedule_at(at, move |_| {
                    if repair {
                        s2.restore_unit_host(UnitId(unit), ustore_fabric::HostId(host));
                    } else {
                        s2.kill_unit_host(UnitId(unit), ustore_fabric::HostId(host));
                    }
                });
            }
        }
    }
    s.sim.run_until(fault_start + schedule.horizon + GRACE);
    stop.set(true);

    // The oracle. Every acked write on a surviving drive must read back
    // with its exact payload; a failure is explained (durability loss,
    // not a bug) only by an injected latent sector on that drive.
    let mut violations: Vec<String> = Vec::new();
    let mut acked_total = 0u64;
    let mut lost_hard = 0u64;
    let probe_ok = Rc::new(Cell::new(0u64));
    let lost_latent = Rc::new(Cell::new(0u64));
    let probe_violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    for (mi, (mounted, info)) in mounts.iter().enumerate() {
        let mut acked = acked_lists[mi].borrow().clone();
        if synthetic_fail && mi == 0 && !acked.is_empty() {
            // Harness self-test: corrupt one expectation (the simulator
            // is untouched, so the telemetry digest is unchanged). The
            // probe below now reports a guaranteed unexplained mismatch.
            acked[0].fill ^= 0xFF;
        }
        acked_total += acked.len() as u64;
        let disk_key = (info.name.unit.0, info.name.disk.0);
        if tracker.borrow().hard_failed.contains(&disk_key) {
            lost_hard += acked.len() as u64;
            continue;
        }
        let stride = (acked.len() / PROBES_PER_MOUNT).max(1);
        let lse_hit = tracker.borrow().lse.contains_key(&disk_key);
        for w in acked.iter().step_by(stride) {
            let w = *w;
            let space = info.name;
            let ok = probe_ok.clone();
            let lost = lost_latent.clone();
            let bad = probe_violations.clone();
            mounted.read(
                &s.sim,
                w.offset,
                WRITE_LEN,
                Box::new(move |_, r| match r {
                    Ok(data) if data == vec![w.fill; WRITE_LEN as usize] => ok.set(ok.get() + 1),
                    Ok(_) => bad.borrow_mut().push(format!(
                        "acked write {space}+{} read back corrupt (expected fill {:#04x})",
                        w.offset, w.fill
                    )),
                    Err(e) => {
                        let why = e.to_string();
                        if lse_hit && why.contains("medium error") {
                            lost.set(lost.get() + 1);
                        } else {
                            bad.borrow_mut().push(format!(
                                "acked write {space}+{} lost on healthy disk: {why}",
                                w.offset
                            ));
                        }
                    }
                }),
            );
        }
        // Remount-deadline liveness probe: after the grace window every
        // mount on a surviving disk must serve reads again.
        let space = info.name;
        let bad = probe_violations.clone();
        mounted.read(
            &s.sim,
            SPACE_SIZE - PAGE,
            PAGE,
            Box::new(move |_, r| {
                if let Err(e) = r {
                    bad.borrow_mut()
                        .push(format!("mount {space} still dead after repair grace: {e}"));
                }
            }),
        );
    }
    s.sim.run_until(s.sim.now() + PROBE_WINDOW);
    violations.extend(probe_violations.borrow().iter().cloned());

    // Watchdog audit (records false negatives) and the telemetry digest.
    let (false_pos, false_neg) = dog.audit(&s.sim);
    for rt in &s.runtimes {
        rt.publish_residency(&s.sim);
    }
    let metrics_json = s.sim.metrics_snapshot().to_json().to_string();
    let spans_json = s.sim.with_spans(|t| t.to_json()).to_string();
    let csv = scraper.to_csv();
    let mut digest = fnv1a(metrics_json.as_bytes());
    digest ^= fnv1a(spans_json.as_bytes()).rotate_left(1);
    digest ^= fnv1a(csv.as_bytes()).rotate_left(2);
    digest ^= schedule.digest().rotate_left(3);

    let t = tracker.borrow();
    CampaignOutcome {
        seed,
        schedule_digest: schedule.digest(),
        schedule_events: schedule.events.len(),
        counts: schedule.counts(),
        digest,
        acked: acked_total,
        survived: probe_ok.get(),
        lost_hard,
        lost_latent: lost_latent.get(),
        violations,
        escalations: dog.escalations(),
        false_pos,
        false_neg,
        truth_marked: t.marked.len() as u64,
        scrub_scanned_pages: t.scrub_scanned_pages,
        scrub_repaired_pages: t.scrub_repaired_pages,
        io_errors: t.io_errors,
        sim_seconds: s.sim.now().as_nanos() as f64 / 1e9,
        events_processed: s.sim.events_processed(),
    }
}

/// Greedy ddmin-style shrink: drop chunks (halves, then smaller) as long
/// as the campaign keeps failing, within a bounded rerun budget.
fn shrink(
    seed: u64,
    model: &FaultModelConfig,
    base: &FaultSchedule,
    synthetic_fail: bool,
) -> (FaultSchedule, u32) {
    let mut cur = base.events.clone();
    let mut runs = 0u32;
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        let mut any = false;
        while i < cur.len() && runs < SHRINK_BUDGET {
            let mut cand = cur.clone();
            cand.drain(i..(i + chunk).min(cand.len()));
            let candidate = FaultSchedule {
                events: cand,
                horizon: base.horizon,
            };
            runs += 1;
            if run_campaign(seed, model, &candidate, synthetic_fail).failed() {
                cur = candidate.events;
                any = true;
            } else {
                i += chunk;
            }
        }
        if runs >= SHRINK_BUDGET || cur.is_empty() || (chunk == 1 && !any) {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    (
        FaultSchedule {
            events: cur,
            horizon: base.horizon,
        },
        runs,
    )
}

/// Runs the fuzzer.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzRun {
    assert!(opts.shards >= 1, "need at least one executor thread");
    let model = opts.model();
    let shape = campaign_shape();
    let seeds: Vec<u64> = match opts.replay {
        Some(seed) => vec![seed],
        None => (0..opts.campaigns.max(1))
            .map(|i| campaign_seed(opts.seed, i))
            .collect(),
    };
    let campaigns: Vec<CampaignOutcome> = seeds
        .iter()
        .map(|&seed| {
            let schedule = FaultSchedule::generate_for(seed, &shape, &model, opts.shards);
            run_campaign(seed, &model, &schedule, opts.synthetic_fail)
        })
        .collect();

    let failing = campaigns.iter().find(|c| c.failed()).map(|c| {
        let schedule = FaultSchedule::generate_for(c.seed, &shape, &model, opts.shards);
        let (minimized, shrink_runs) = shrink(c.seed, &model, &schedule, opts.synthetic_fail);
        FailingCase {
            seed: c.seed,
            violations: c.violations.clone(),
            original_events: schedule.events.len(),
            minimized,
            shrink_runs,
        }
    });

    // Replay gate: rerun one campaign (the failing one when there is
    // one) from nothing but its seed; the digest must be bit-identical.
    let target = failing
        .as_ref()
        .map(|f| f.seed)
        .unwrap_or(campaigns[0].seed);
    let first = campaigns
        .iter()
        .find(|c| c.seed == target)
        .expect("replay target is one of the campaigns");
    let schedule = FaultSchedule::generate_for(target, &shape, &model, opts.shards);
    let replayed = run_campaign(target, &model, &schedule, opts.synthetic_fail);
    let replay = ReplayCheck {
        seed: target,
        digest: first.digest,
        replay_digest: replayed.digest,
        matches: first.digest == replayed.digest,
    };

    FuzzRun {
        options: *opts,
        shape,
        campaigns,
        failing,
        replay,
    }
}

/// Durability nines over a set of campaigns: `log10(acked / lost)`, with
/// a resolution-limited cap of `log10(acked + 1)` when nothing was lost
/// (the campaigns bound the loss rate, they cannot prove it zero).
pub fn durability_nines(acked: u64, lost: u64) -> f64 {
    if acked == 0 {
        return 0.0;
    }
    if lost == 0 {
        return (acked as f64 + 1.0).log10();
    }
    (acked as f64 / lost as f64).log10()
}

impl FuzzRun {
    fn totals(&self) -> (u64, u64, u64, u64) {
        let acked = self.campaigns.iter().map(|c| c.acked).sum();
        let lost_hard = self.campaigns.iter().map(|c| c.lost_hard).sum();
        let lost_latent = self.campaigns.iter().map(|c| c.lost_latent).sum();
        let violations = self
            .campaigns
            .iter()
            .map(|c| c.violations.len() as u64)
            .sum();
        (acked, lost_hard, lost_latent, violations)
    }

    /// Machine-readable report (the `--fuzz-out` document).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("schema", Json::str("ustore-fuzz-v1")),
            ("seed", Json::u64(self.options.seed)),
            (
                "mode",
                Json::str(if self.options.quick { "quick" } else { "full" }),
            ),
            ("shards", Json::u64(self.options.shards as u64)),
            ("synthetic_fail", Json::Bool(self.options.synthetic_fail)),
            (
                "shape",
                Json::obj([
                    ("units", Json::u64(u64::from(self.shape.units))),
                    (
                        "hosts_per_unit",
                        Json::u64(u64::from(self.shape.hosts_per_unit)),
                    ),
                    (
                        "disks_per_unit",
                        Json::u64(u64::from(self.shape.disks_per_unit)),
                    ),
                    ("fanin", Json::u64(u64::from(self.shape.fanin))),
                    (
                        "world_groups",
                        Json::u64(u64::from(self.shape.world_groups)),
                    ),
                ]),
            ),
            ("faults", faults_section(self)),
            (
                "campaigns",
                Json::arr(self.campaigns.iter().map(|c| {
                    Json::obj([
                        ("seed", Json::str(format!("{:#018x}", c.seed))),
                        (
                            "schedule_digest",
                            Json::str(format!("{:016x}", c.schedule_digest)),
                        ),
                        ("schedule_events", Json::u64(c.schedule_events as u64)),
                        (
                            "schedule_counts",
                            Json::obj(c.counts.iter().map(|&(k, v)| (k, Json::u64(v)))),
                        ),
                        ("digest", Json::str(format!("{:016x}", c.digest))),
                        ("acked_writes", Json::u64(c.acked)),
                        ("survived_probes", Json::u64(c.survived)),
                        ("lost_hard", Json::u64(c.lost_hard)),
                        ("lost_latent", Json::u64(c.lost_latent)),
                        ("violations", Json::arr(c.violations.iter().map(Json::str))),
                        ("escalations", Json::u64(c.escalations)),
                        ("watchdog_false_pos", Json::u64(c.false_pos)),
                        ("watchdog_false_neg", Json::u64(c.false_neg)),
                        ("io_errors", Json::u64(c.io_errors)),
                        ("sim_seconds", Json::f64(c.sim_seconds)),
                        ("events_processed", Json::u64(c.events_processed)),
                    ])
                })),
            ),
        ]);
        if let Some(f) = &self.failing {
            doc.insert(
                "failing",
                Json::obj([
                    ("seed", Json::str(format!("{:#018x}", f.seed))),
                    ("violations", Json::arr(f.violations.iter().map(Json::str))),
                    ("original_events", Json::u64(f.original_events as u64)),
                    (
                        "minimized_events",
                        Json::u64(f.minimized.events.len() as u64),
                    ),
                    ("shrink_runs", Json::u64(u64::from(f.shrink_runs))),
                    ("minimized_schedule", f.minimized.to_json()),
                ]),
            );
        }
        doc
    }

    /// Human summary.
    pub fn summary(&self) -> String {
        let (acked, lost_hard, lost_latent, violations) = self.totals();
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "{} campaign(s), {} fault events total, {} sim-seconds",
                self.campaigns.len(),
                self.campaigns
                    .iter()
                    .map(|c| c.schedule_events as u64)
                    .sum::<u64>(),
                self.campaigns.iter().map(|c| c.sim_seconds).sum::<f64>()
            ),
        );
        push(
            &mut out,
            format!(
                "durability: {acked} acked writes, {lost_hard} lost to drive failures, {lost_latent} to latent sectors => {:.2} nines{}",
                durability_nines(acked, lost_hard + lost_latent),
                if lost_hard + lost_latent == 0 { " (resolution-limited)" } else { "" }
            ),
        );
        let scrub: u64 = self.campaigns.iter().map(|c| c.scrub_scanned_pages).sum();
        let repaired: u64 = self.campaigns.iter().map(|c| c.scrub_repaired_pages).sum();
        push(
            &mut out,
            format!("scrub: {scrub} pages scanned, {repaired} latent pages repaired"),
        );
        let esc: u64 = self.campaigns.iter().map(|c| c.escalations).sum();
        let fp: u64 = self.campaigns.iter().map(|c| c.false_pos).sum();
        let fneg: u64 = self.campaigns.iter().map(|c| c.false_neg).sum();
        push(
            &mut out,
            format!("watchdog: {esc} escalations, {fp} false positives, {fneg} false negatives"),
        );
        match &self.failing {
            Some(f) => {
                push(
                    &mut out,
                    format!(
                        "FAIL: campaign seed {:#018x} violated {} invariant(s); schedule minimized {} -> {} events in {} rerun(s)",
                        f.seed,
                        f.violations.len(),
                        f.original_events,
                        f.minimized.events.len(),
                        f.shrink_runs
                    ),
                );
                for v in &f.violations {
                    push(&mut out, format!("  violation: {v}"));
                }
                push(
                    &mut out,
                    format!("  reproduce with: repro fuzz --replay {:#x}", f.seed),
                );
            }
            None => push(
                &mut out,
                format!("all invariants held ({violations} violations)"),
            ),
        }
        push(
            &mut out,
            format!(
                "replay gate: seed {:#018x} digest {:016x} vs {:016x} => {}",
                self.replay.seed,
                self.replay.digest,
                self.replay.replay_digest,
                if self.replay.matches {
                    "bit-identical"
                } else {
                    "DIVERGED"
                }
            ),
        );
        out
    }
}

/// The `faults` section of `BENCH_podscale.json` (schema v5, unchanged in v6): durability
/// nines, repair bandwidth, scrub coverage, watchdog FP/FN rates, and the
/// replay determinism gate.
pub fn faults_section(run: &FuzzRun) -> Json {
    let (acked, lost_hard, lost_latent, violations) = run.totals();
    let lost = lost_hard + lost_latent;
    let scrub_scanned: u64 = run.campaigns.iter().map(|c| c.scrub_scanned_pages).sum();
    let scrub_repaired: u64 = run.campaigns.iter().map(|c| c.scrub_repaired_pages).sum();
    let sim_seconds: f64 = run.campaigns.iter().map(|c| c.sim_seconds).sum();
    let fleet_region_pages = u64::from(run.shape.units)
        * u64::from(run.shape.disks_per_unit)
        * (run.options.model().region_bytes / PAGE);
    let esc: u64 = run.campaigns.iter().map(|c| c.escalations).sum();
    let fp: u64 = run.campaigns.iter().map(|c| c.false_pos).sum();
    let fneg: u64 = run.campaigns.iter().map(|c| c.false_neg).sum();
    let truth: u64 = run.campaigns.iter().map(|c| c.truth_marked).sum();
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for c in &run.campaigns {
        for &(k, v) in &c.counts {
            *counts.entry(k).or_insert(0) += v;
        }
    }
    Json::obj([
        ("campaigns", Json::u64(run.campaigns.len() as u64)),
        (
            "fault_events",
            Json::obj(counts.into_iter().map(|(k, v)| (k, Json::u64(v)))),
        ),
        (
            "durability",
            Json::obj([
                ("acked_writes", Json::u64(acked)),
                ("lost_hard", Json::u64(lost_hard)),
                ("lost_latent", Json::u64(lost_latent)),
                ("nines", Json::f64(durability_nines(acked, lost))),
                ("resolution_limited", Json::Bool(lost == 0)),
            ]),
        ),
        (
            "repair",
            Json::obj([
                ("scrub_scanned_pages", Json::u64(scrub_scanned)),
                ("scrub_repaired_pages", Json::u64(scrub_repaired)),
                (
                    "repair_bandwidth_bytes_per_s",
                    Json::f64(if sim_seconds > 0.0 {
                        scrub_repaired as f64 * PAGE as f64 / sim_seconds
                    } else {
                        0.0
                    }),
                ),
                (
                    "scrub_coverage_x",
                    Json::f64(scrub_scanned as f64 / fleet_region_pages.max(1) as f64),
                ),
            ]),
        ),
        (
            "watchdog",
            Json::obj([
                ("escalations", Json::u64(esc)),
                ("false_pos", Json::u64(fp)),
                ("false_neg", Json::u64(fneg)),
                ("degraded_truth", Json::u64(truth)),
                ("false_pos_rate", Json::f64(fp as f64 / esc.max(1) as f64)),
                (
                    "false_neg_rate",
                    Json::f64(fneg as f64 / truth.max(1) as f64),
                ),
            ]),
        ),
        ("violations", Json::u64(violations)),
        (
            "replay",
            Json::obj([
                ("seed", Json::str(format!("{:#018x}", run.replay.seed))),
                ("digest", Json::str(format!("{:016x}", run.replay.digest))),
                (
                    "replay_digest",
                    Json::str(format!("{:016x}", run.replay.replay_digest)),
                ),
                ("digest_matches", Json::Bool(run.replay.matches)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(campaigns: u32, synthetic: bool) -> FuzzOptions {
        FuzzOptions {
            seed: 0xF0CC_1A7E,
            quick: true,
            shards: 2,
            campaigns,
            synthetic_fail: synthetic,
            replay: None,
        }
    }

    #[test]
    fn clean_campaign_holds_invariants_and_replays_bit_identically() {
        let run = run_fuzz(&quick_opts(1, false));
        assert_eq!(run.campaigns.len(), 1);
        let c = &run.campaigns[0];
        assert!(
            c.violations.is_empty(),
            "unexpected violations: {:?}",
            c.violations
        );
        assert!(c.acked > 0, "tracked writes were acknowledged");
        assert!(c.schedule_events > 0, "quick model generated faults");
        assert!(c.scrub_scanned_pages > 0, "scrub passes ran");
        assert!(run.failing.is_none());
        assert!(run.replay.matches, "replay digest diverged");
        let doc = run.to_json().to_string();
        assert!(doc.contains(r#""schema":"ustore-fuzz-v1""#));
        assert!(doc.contains(r#""digest_matches":true"#));
    }

    #[test]
    fn synthetic_fault_is_caught_shrunk_and_replayed() {
        let run = run_fuzz(&quick_opts(1, true));
        let f = run.failing.as_ref().expect("synthetic fault detected");
        assert!(!f.violations.is_empty());
        // The planted fault is schedule-independent, so the minimal
        // still-failing schedule is empty.
        assert!(
            f.minimized.events.is_empty(),
            "minimized to {} events",
            f.minimized.events.len()
        );
        assert!(f.shrink_runs <= SHRINK_BUDGET);
        assert!(run.replay.matches, "failing replay digest diverged");
        assert!(run.summary().contains("FAIL"));
    }

    #[test]
    fn durability_nines_formula() {
        assert_eq!(durability_nines(0, 0), 0.0);
        assert!((durability_nines(999, 0) - 3.0).abs() < 0.01);
        assert!((durability_nines(1000, 1) - 3.0).abs() < 0.01);
        assert!((durability_nines(1000, 10) - 2.0).abs() < 0.01);
    }
}
