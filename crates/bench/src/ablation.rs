//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Switch placement** (Figure 2 left vs right): component count and
//!    cost vs reconfiguration granularity.
//! 2. **Heartbeat timeout**: failure-detection latency vs the total
//!    failover time (the 5.8 s budget's biggest knob).
//! 3. **Allocation policy**: the paper's affinity+locality rules vs
//!    random placement, measured by how many disks a service's
//!    power-management action must touch (§IV-A's stated motivation).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use ustore::{Allocator, MasterConfig, SystemConfig, UnitId};
use ustore_cost::{fabric_retail, PriceCatalog};
use ustore_fabric::{DiskId, HostId, Topology};
use ustore_net::BlockDevice;
use ustore_sim::{Sim, SimRng, SimTime};

use crate::report::{Report, Row};

/// Switch-placement ablation: Figure 2 left (leaf switching) vs right
/// (upper-level switching) for a 16-disk, 2-host unit.
pub fn topology_ablation() -> Report {
    let catalog = PriceCatalog::default();
    let (leaf, leaf_cfg) = Topology::leaf_switched(16, 4);
    let (upper, upper_cfg) = Topology::upper_switched(2, 16, 4);
    let lc = leaf.component_counts();
    let uc = upper.component_counts();
    let mut rows = vec![
        Row::measured_only("leaf: hubs", lc.hubs as f64, "pcs"),
        Row::measured_only("leaf: switches", lc.switches as f64, "pcs"),
        Row::measured_only("leaf: fabric retail", fabric_retail(&catalog, &leaf), "$"),
        Row::measured_only("upper: hubs", uc.hubs as f64, "pcs"),
        Row::measured_only("upper: switches", uc.switches as f64, "pcs"),
        Row::measured_only("upper: fabric retail", fabric_retail(&catalog, &upper), "$"),
    ];
    // Granularity: smallest reconfigurable unit (disks that must move
    // together when one disk is re-homed).
    let leaf_state = ustore_fabric::FabricState::new(leaf, leaf_cfg);
    let upper_state = ustore_fabric::FabricState::new(upper, upper_cfg);
    let granularity = |st: &ustore_fabric::FabricState| -> f64 {
        let d = DiskId(0);
        let target = HostId(1);
        let path = st.path_switches(d, target).expect("path");
        let turns: Vec<_> = path
            .into_iter()
            .filter(|(s, p)| st.switch_pos(*s) != Some(*p))
            .collect();
        st.displaced_by(&turns).len() as f64
    };
    rows.push(Row::measured_only(
        "leaf: disks moved per re-home",
        granularity(&leaf_state),
        "disks",
    ));
    rows.push(Row::measured_only(
        "upper: disks moved per re-home",
        granularity(&upper_state),
        "disks",
    ));
    Report::new("Ablation: switch placement (Fig. 2 left vs right)", rows)
}

/// Heartbeat-timeout sweep: total host-failure recovery time as the
/// Master's detection timeout varies.
pub fn heartbeat_sweep(seed: u64) -> Report {
    let mut rows = Vec::new();
    for timeout_ms in [500u64, 1000, 2000, 4000] {
        let cfg = SystemConfig {
            master: MasterConfig {
                heartbeat_timeout: Duration::from_millis(timeout_ms),
                ..MasterConfig::default()
            },
            ..SystemConfig::default()
        };
        let s = ustore::UStoreSystem::build(Sim::new(seed.wrapping_add(timeout_ms)), cfg);
        s.settle();
        let client = s.client("sweep");
        // Allocate + mount.
        let info = Rc::new(RefCell::new(None));
        let i2 = info.clone();
        client.allocate(&s.sim, "svc", 1 << 30, move |_, r| {
            *i2.borrow_mut() = Some(r.expect("allocate"));
        });
        s.sim.run_until(s.sim.now() + Duration::from_secs(5));
        let info = info.borrow().clone().expect("allocated");
        let mounted = Rc::new(RefCell::new(None));
        let m2 = mounted.clone();
        client.mount(&s.sim, info.name, move |_, r| {
            *m2.borrow_mut() = Some(r.expect("mount"));
        });
        s.sim.run_until(s.sim.now() + Duration::from_secs(10));
        let mounted = mounted.borrow().clone().expect("mounted");
        mounted.write(&s.sim, 0, b"x".to_vec(), Box::new(|_, r| r.expect("write")));
        s.sim.run_until(s.sim.now() + Duration::from_secs(2));
        // Kill and measure read recovery.
        let victim = s.runtime.attached_host(info.name.disk).expect("attached");
        let t0 = s.sim.now();
        s.kill_host(victim);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = done.clone();
        mounted.read(
            &s.sim,
            0,
            1,
            Box::new(move |sim, r| {
                r.expect("recovered read");
                d.set(sim.now());
            }),
        );
        s.sim.run_until(s.sim.now() + Duration::from_secs(40));
        let total = done.get().saturating_duration_since(t0);
        rows.push(Row::measured_only(
            format!("recovery @ timeout {timeout_ms} ms"),
            total.as_secs_f64(),
            "s",
        ));
    }
    Report::new("Ablation: heartbeat timeout vs recovery time", rows)
}

/// Allocation-policy ablation: after allocating many spaces for a few
/// services, how many distinct disks does each service span? Fewer disks
/// means a service's spin-down decision touches less hardware (§IV-A).
pub fn allocation_ablation(seed: u64) -> Report {
    const SERVICES: usize = 4;
    const SPACES_PER_SERVICE: usize = 8;
    const GB: u64 = 50_000_000_000; // 50 GB spaces on 3 TB disks

    let spread = |policy_paper: bool| -> f64 {
        let mut alloc = Allocator::new();
        for d in 0..16u32 {
            alloc.register_disk(UnitId(0), DiskId(d), 3_000_000_000_000);
        }
        let mut rng = SimRng::seed_from(seed);
        let attachments: BTreeMap<(UnitId, DiskId), HostId> = (0..16u32)
            .map(|d| ((UnitId(0), DiskId(d)), HostId(d / 4)))
            .collect();
        for svc in 0..SERVICES {
            for _ in 0..SPACES_PER_SERVICE {
                if policy_paper {
                    alloc
                        .allocate(&format!("svc{svc}"), GB, &attachments, None)
                        .expect("allocate");
                } else {
                    // Random placement: pick any disk with room by hand.
                    loop {
                        let d = DiskId(rng.u64_below(16) as u32);
                        if alloc.free_on(UnitId(0), d).unwrap_or(0) >= GB {
                            // Emulate randomness by allocating under a
                            // per-disk unique service so affinity never
                            // kicks in, then releasing nothing.
                            let unique = format!("rand-{svc}-{}", rng.next_u64());
                            let got = alloc
                                .allocate(&unique, GB, &attachments, Some(HostId(d.0 / 4)))
                                .expect("allocate");
                            let _ = got;
                            break;
                        }
                    }
                }
            }
        }
        if policy_paper {
            let total: usize = (0..SERVICES)
                .map(|svc| alloc.disks_of_service(&format!("svc{svc}")).len())
                .sum();
            total as f64 / SERVICES as f64
        } else {
            // Random: count disks carrying each pseudo-service's spaces by
            // sampling disk usage spread.
            let used: usize = (0..16u32)
                .filter(|d| alloc.free_on(UnitId(0), DiskId(*d)) != Some(3_000_000_000_000))
                .count();
            used as f64 / SERVICES as f64
        }
    };
    Report::new(
        "Ablation: allocation policy (disks per service)",
        vec![
            Row::measured_only("paper policy (affinity+locality)", spread(true), "disks"),
            Row::measured_only("random placement", spread(false), "disks"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_switching_is_cheaper_but_coarser() {
        let rep = topology_ablation();
        let get = |label: &str| {
            rep.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label}"))
                .measured
        };
        assert!(get("upper: fabric retail") < get("leaf: fabric retail"));
        assert_eq!(
            get("leaf: disks moved per re-home"),
            1.0,
            "leaf moves one disk"
        );
        assert!(
            get("upper: disks moved per re-home") >= 4.0,
            "upper moves a group"
        );
    }

    #[test]
    fn shorter_heartbeat_timeouts_recover_faster() {
        let rep = heartbeat_sweep(801);
        let first = rep.rows.first().expect("rows").measured;
        let last = rep.rows.last().expect("rows").measured;
        assert!(
            last > first + 2.0,
            "4000 ms timeout ({last:.1}s) should be clearly slower than 500 ms ({first:.1}s)"
        );
        // And the difference is roughly the timeout delta (3.5 s).
        assert!(
            (last - first - 3.5).abs() < 1.5,
            "delta {:.1}",
            last - first
        );
    }

    #[test]
    fn paper_allocation_policy_concentrates_services() {
        let rep = allocation_ablation(802);
        let paper = rep.rows[0].measured;
        let random = rep.rows[1].measured;
        assert!(
            paper <= 2.0,
            "affinity packs a service on few disks: {paper}"
        );
        assert!(random > paper, "random placement spreads more: {random}");
    }
}
