//! The §VII-B upper-layer experiment: a replicated DFS over UStore
//! storage, with a disk switch injected mid-write.
//!
//! Paper: "When writing a file in HDFS, we switch one disk, the HDFS
//! client encounters error only for several seconds, then it resumes the
//! operation again. Read operation is not interrupted at all since there
//! are three replicas."

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, UStoreSystem};
use ustore_net::{Addr, RpcNode};
use ustore_workload::{DataNode, DfsClient, DfsConfig, NameNode};

use crate::report::{Report, Row};

/// Outcome of the DFS-over-UStore experiment.
#[derive(Debug, Clone)]
pub struct DfsOutcome {
    /// Whether the interrupted write eventually completed.
    pub write_completed: bool,
    /// Client-visible error window during the switch.
    pub error_window: Duration,
    /// Block-level errors the writer saw.
    pub write_errors: u64,
    /// Whether a concurrent read (after recovery) returned correct data.
    pub read_ok: bool,
    /// Replica failovers the reader needed (0 = reads "not interrupted").
    pub read_failovers: u64,
}

fn allocate_and_mount(s: &UStoreSystem, client: &ustore::UStoreClient, service: &str) -> Mounted {
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&s.sim, service, 2 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocate"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(5));
    let info = info.borrow().clone().expect("allocated");
    let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(10));
    let m = mounted.borrow().clone().expect("mounted");
    m
}

/// Runs the experiment: three datanodes on mounted UStore spaces, a file
/// written while the host serving one datanode's disk dies.
pub fn run_dfs_experiment(seed: u64) -> DfsOutcome {
    let s = UStoreSystem::prototype(seed);
    s.settle();

    let dfs_config = DfsConfig {
        block_bytes: 4 << 20,
        ..DfsConfig::default()
    };
    let nn_addr = Addr::new("nn");
    let _nn = NameNode::new(RpcNode::new(&s.net, nn_addr.clone()), dfs_config.clone());
    // Three datanodes, each on its own mounted UStore space. Distinct
    // service names spread them across disks (the balance rule).
    let mut backing = Vec::new();
    for i in 0..3 {
        let c = s.client(&format!("dn-client-{i}"));
        let m = allocate_and_mount(&s, &c, &format!("dfs-dn{i}"));
        backing.push(m);
    }
    let _dns: Vec<DataNode> = backing
        .iter()
        .enumerate()
        .map(|(i, m)| {
            DataNode::new(
                &s.sim,
                RpcNode::new(&s.net, Addr::new(format!("dn-{i}"))),
                Rc::new(m.clone()),
                &nn_addr,
                dfs_config.clone(),
            )
        })
        .collect();
    let client = DfsClient::new(
        RpcNode::new(&s.net, Addr::new("dfs-writer")),
        nn_addr.clone(),
        dfs_config.clone(),
    );
    s.sim.run_until(s.sim.now() + Duration::from_secs(2));

    // Start a 32-block write; mid-way, kill the host serving datanode 1's
    // disk (the paper switches a disk during the write).
    let data: Vec<u8> = (0..(32usize << 22)).map(|i| (i % 253) as u8).collect();
    let expect = data.clone();
    let write_done = Rc::new(Cell::new(false));
    let wd = write_done.clone();
    client.put(&s.sim, "/bigfile", data, move |_, r| {
        r.expect("put completes despite the switch");
        wd.set(true);
    });
    // Let a few blocks land, then kill.
    s.sim.run_until(s.sim.now() + Duration::from_millis(300));
    let victim_disk = backing[1].name().disk;
    let victim_host = s
        .runtime
        .attached_host(victim_disk)
        .expect("dn1 disk attached");
    s.kill_host(victim_host);
    // Run until the write finishes.
    let mut waited = 0;
    while !write_done.get() && waited < 120 {
        s.sim.run_until(s.sim.now() + Duration::from_secs(1));
        waited += 1;
    }
    let stats = client.stats();
    let error_window = stats.error_window().unwrap_or(Duration::ZERO);

    // Read the file back (replica failover makes this uninterrupted).
    let reader = DfsClient::new(
        RpcNode::new(&s.net, Addr::new("dfs-reader")),
        nn_addr,
        dfs_config,
    );
    let read_ok = Rc::new(Cell::new(false));
    let ro = read_ok.clone();
    reader.get(&s.sim, "/bigfile", move |_, r| {
        let got = r.expect("get");
        assert_eq!(got.len(), expect.len());
        ro.set(got == expect);
    });
    s.sim.run_until(s.sim.now() + Duration::from_secs(120));

    DfsOutcome {
        write_completed: write_done.get(),
        error_window,
        write_errors: stats.errors,
        read_ok: read_ok.get(),
        read_failovers: reader.stats().read_failovers,
    }
}

/// Regenerates the §VII-B observations.
pub fn hdfs_report(seed: u64) -> Report {
    let o = run_dfs_experiment(seed);
    Report::new(
        "§VII-B DFS over UStore (disk switch mid-write)",
        vec![
            Row::measured_only(
                "write completed despite switch",
                if o.write_completed { 1.0 } else { 0.0 },
                "bool",
            ),
            Row::measured_only(
                "client error window (paper: 'several seconds')",
                o.error_window.as_secs_f64(),
                "s",
            ),
            Row::measured_only("block write errors", o.write_errors as f64, "ops"),
            Row::measured_only(
                "read returned correct data",
                if o.read_ok { 1.0 } else { 0.0 },
                "bool",
            ),
            Row::measured_only("reader replica failovers", o.read_failovers as f64, "ops"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_mid_write_matches_paper_story() {
        let o = run_dfs_experiment(501);
        assert!(o.write_completed, "write resumed and finished");
        assert!(o.write_errors > 0, "client saw transient errors");
        assert!(
            o.error_window > Duration::from_millis(500) && o.error_window < Duration::from_secs(20),
            "'several seconds' of errors, got {:?}",
            o.error_window
        );
        assert!(o.read_ok, "read back correct data");
    }
}
