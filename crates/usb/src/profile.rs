//! USB 3.0 timing, bandwidth and power constants.
//!
//! Calibrated against the paper's component measurements: the ≈300 MB/s
//! effective per-direction payload rate and the ≈43 k commands/s root
//! saturation visible in Figure 5, the ≈540 MB/s duplex sum of §VII-A, the
//! enumeration latencies behind Figure 6's part-1 curve, and the hub power
//! numbers of Table IV.

use std::time::Duration;

/// Parameters of one root controller (xHCI) port and its USB 3.0 tree.
#[derive(Debug, Clone, PartialEq)]
pub struct UsbProfile {
    /// Effective payload rate per direction when only that direction is
    /// active, bytes/s. (5 Gb/s raw, 8b/10b encoded, protocol overhead.)
    pub link_rate: f64,
    /// Per-direction rate multiplier while both directions stream
    /// (§VII-A: reads + writes sum to ≈540 MB/s, not 600).
    pub duplex_factor: f64,
    /// Fixed root-controller occupancy per command (DMA setup, interrupt).
    /// This is what caps small-transfer IOPS at ≈43 k/s per root port.
    pub per_command_overhead: Duration,
    /// Transfers are split into URBs of at most this many bytes.
    pub urb_bytes: u64,
    /// Per-URB protocol overhead beyond the first URB of a command.
    pub per_urb_overhead: Duration,
    /// Time for a host to notice a device left the bus.
    pub disconnect_detect: Duration,
    /// Per-device enumeration work that is serialized on the bus
    /// (reset + address assignment). Figure 6 part 1 grows by this slope.
    pub enum_serial: Duration,
    /// Per-device enumeration work that overlaps across devices
    /// (descriptor reads, driver probe).
    pub enum_parallel: Duration,
    /// Maximum devices (hubs + functions) one root port enumerates.
    /// The spec allows 127; the paper's Intel xHCI recognized fewer than
    /// 15 (§V-B), which is the prototype default.
    pub max_devices: usize,
    /// Maximum hub tiers below the root port (USB 3.0 spec: 5).
    pub max_hub_tiers: u8,
    /// Hub base power with no downstream devices, watts (Table IV).
    pub hub_power_base: f64,
    /// Extra hub power for the first connected device, watts (Table IV).
    pub hub_power_first: f64,
    /// Extra hub power per additional connected device, watts (Table IV).
    pub hub_power_per_extra: f64,
    /// Power of one 2:1 USB switch, watts (§VII-C: ≈0.06 W).
    pub switch_power: f64,
    /// Power of one USB 3.0 host adaptor, watts (§VII-C estimate: 2.5 W).
    pub host_adaptor_power: f64,
}

impl UsbProfile {
    /// The paper's prototype configuration (Intel xHCI, commodity hubs).
    pub fn prototype() -> Self {
        UsbProfile {
            link_rate: 300.0e6,
            duplex_factor: 0.9,
            per_command_overhead: Duration::from_micros(10),
            urb_bytes: 256 * 1024,
            per_urb_overhead: Duration::from_micros(10),
            disconnect_detect: Duration::from_millis(400),
            enum_serial: Duration::from_millis(300),
            enum_parallel: Duration::from_millis(1100),
            max_devices: 15,
            max_hub_tiers: 5,
            hub_power_base: 0.21,
            hub_power_first: 0.85,
            hub_power_per_extra: 0.20,
            switch_power: 0.06,
            host_adaptor_power: 2.5,
        }
    }

    /// A spec-conformant controller without the Intel device-count quirk.
    pub fn spec_conformant() -> Self {
        UsbProfile {
            max_devices: 127,
            ..Self::prototype()
        }
    }

    /// Root-link occupancy of one command of `bytes` payload.
    pub fn command_occupancy(&self, bytes: u64) -> Duration {
        let urbs = bytes.div_ceil(self.urb_bytes).max(1);
        self.per_command_overhead
            + self.per_urb_overhead * (urbs - 1) as u32
            + Duration::from_secs_f64(bytes as f64 / self.link_rate)
    }

    /// Hub power draw with `active_ports` devices connected (Table IV).
    pub fn hub_power(&self, active_ports: usize) -> f64 {
        if active_ports == 0 {
            self.hub_power_base
        } else {
            self.hub_power_base
                + self.hub_power_first
                + self.hub_power_per_extra * (active_ports - 1) as f64
        }
    }
}

impl Default for UsbProfile {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_command_occupancy_caps_iops() {
        let p = UsbProfile::prototype();
        let occ = p.command_occupancy(4096);
        // 10 us overhead + 13.65 us transfer -> ~42 k commands/s.
        let iops = 1.0 / occ.as_secs_f64();
        assert!((iops - 42_000.0).abs() < 2500.0, "iops {iops}");
    }

    #[test]
    fn large_command_occupancy_is_rate_bound() {
        let p = UsbProfile::prototype();
        let occ = p.command_occupancy(4 * 1024 * 1024).as_secs_f64();
        let rate = 4.0 * 1024.0 * 1024.0 / occ;
        assert!(rate < p.link_rate && rate > p.link_rate * 0.97);
    }

    #[test]
    fn table4_hub_power() {
        let p = UsbProfile::prototype();
        let expected = [0.21, 1.06, 1.26, 1.46, 1.66]; // paper: .21/1.06/1.23/1.47/1.67
        for (n, e) in expected.iter().enumerate() {
            assert!(
                (p.hub_power(n) - e).abs() < 0.05,
                "hub power with {n} disks: {} vs {e}",
                p.hub_power(n)
            );
        }
    }

    #[test]
    fn occupancy_of_zero_bytes_is_at_least_overhead() {
        let p = UsbProfile::prototype();
        assert!(p.command_occupancy(0) >= p.per_command_overhead);
    }
}
