//! One host's USB 3.0 root controller and its device tree.
//!
//! [`UsbHost`] models the view a single server has of one of its USB 3.0
//! root ports: which hubs and storage bridges are attached (the fabric
//! rewires these at switch flips), enumeration timing (serialized on the
//! bus, which makes Figure 6's part 1 grow with the number of disks
//! switched together), the Intel device-count quirk, tier limits, and the
//! shared per-direction payload links whose reservation discipline produces
//! the saturation behaviour of Figure 5.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use ustore_sim::{CounterHandle, Sim, SimTime, TraceLevel};

use crate::profile::UsbProfile;

/// Globally unique identifier of a USB device (hub or storage bridge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usb{}", self.0)
    }
}

/// What kind of device sits at a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// An aggregation hub.
    Hub,
    /// A SATA↔USB mass-storage bridge (i.e. a disk).
    Storage,
}

/// Description of a device being attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDesc {
    /// The device's identity.
    pub id: DeviceId,
    /// Hub or storage.
    pub kind: DeviceKind,
    /// Upstream hub, or `None` when plugged directly into the root port.
    pub parent: Option<DeviceId>,
}

/// Enumeration outcome problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumError {
    /// The root controller's device limit was reached (§V-B quirk).
    TooManyDevices,
    /// The device sits deeper than the allowed hub tiers.
    TierTooDeep,
    /// The named parent hub is not attached to this host.
    ParentMissing,
    /// A device with this id is already attached.
    DuplicateId,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::TooManyDevices => write!(f, "root controller device limit reached"),
            EnumError::TierTooDeep => write!(f, "device exceeds hub tier limit"),
            EnumError::ParentMissing => write!(f, "parent hub not attached"),
            EnumError::DuplicateId => write!(f, "device id already attached"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Lifecycle state of an attached device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Attached, still enumerating.
    Enumerating,
    /// Enumerated and usable.
    Ready,
    /// Enumeration failed.
    Failed(EnumError),
}

/// Hot-plug notifications delivered to subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsbEvent {
    /// A device appeared on the bus (enumeration begins).
    Attached(DeviceId),
    /// A device finished enumeration and is usable.
    Ready(DeviceId),
    /// A device left the bus (fired after the disconnect-detect delay).
    Detached(DeviceId),
    /// Enumeration failed.
    EnumFailed(DeviceId, EnumError),
}

/// Errors for data transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsbError {
    /// The device is not attached to this host.
    NoSuchDevice,
    /// The device has not (yet) enumerated.
    NotReady,
    /// The device is a hub, not a storage function.
    NotStorage,
}

impl fmt::Display for UsbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsbError::NoSuchDevice => write!(f, "no such usb device"),
            UsbError::NotReady => write!(f, "usb device not enumerated"),
            UsbError::NotStorage => write!(f, "usb device is not a storage function"),
        }
    }
}

impl std::error::Error for UsbError {}

/// Transfer direction over the bus, from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusDir {
    /// Device-to-host (disk reads).
    In,
    /// Host-to-device (disk writes).
    Out,
}

/// One row of an `lsusb -t`-style snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsbTreeNode {
    /// Device identity.
    pub id: DeviceId,
    /// Hub or storage.
    pub kind: DeviceKind,
    /// Upstream hub (`None` = root port).
    pub parent: Option<DeviceId>,
    /// Hub tiers below the root port (direct attach = 1).
    pub tier: u8,
    /// Lifecycle state.
    pub state: DeviceState,
}

struct Node {
    desc: DeviceDesc,
    tier: u8,
    state: DeviceState,
    epoch: u64,
}

/// Per-transfer metric handles, resolved lazily ([`UsbHost::new`] has no
/// simulator handle) so the streaming path never re-hashes metric names.
#[derive(Debug, Clone)]
struct HostMetrics {
    transfers: CounterHandle,
    bytes: CounterHandle,
    link_in_busy: CounterHandle,
    link_out_busy: CounterHandle,
}

struct Inner {
    name: String,
    profile: UsbProfile,
    nodes: HashMap<DeviceId, Node>,
    enum_tail: SimTime,
    in_busy: SimTime,
    out_busy: SimTime,
    listeners: Vec<Rc<dyn Fn(&Sim, UsbEvent)>>,
    next_epoch: u64,
    /// Bumped on every attach/detach/state change; consumers (the
    /// EndPoint's heartbeat) cache derived views keyed by this and skip
    /// re-snapshotting an unchanged tree.
    topo_gen: u64,
    metrics: Option<HostMetrics>,
}

impl Inner {
    fn metrics(&mut self, sim: &Sim) -> &HostMetrics {
        if self.metrics.is_none() {
            self.metrics = Some(HostMetrics {
                transfers: sim.counter(&self.name, "usb.transfers"),
                bytes: sim.counter(&self.name, "usb.bytes"),
                link_in_busy: sim.counter(&self.name, "usb.link_in_busy_ns"),
                link_out_busy: sim.counter(&self.name, "usb.link_out_busy_ns"),
            });
        }
        self.metrics.as_ref().expect("metrics just initialized")
    }
}

/// A host's root controller. Cloning shares the controller.
#[derive(Clone)]
pub struct UsbHost {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for UsbHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("UsbHost")
            .field("name", &i.name)
            .field("devices", &i.nodes.len())
            .finish()
    }
}

impl UsbHost {
    /// Creates a root controller with the given profile.
    pub fn new(name: impl Into<String>, profile: UsbProfile) -> Self {
        UsbHost {
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                profile,
                nodes: HashMap::new(),
                enum_tail: SimTime::ZERO,
                in_busy: SimTime::ZERO,
                out_busy: SimTime::ZERO,
                listeners: Vec::new(),
                next_epoch: 0,
                topo_gen: 0,
                metrics: None,
            })),
        }
    }

    /// The controller's name (host it belongs to).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Registers a hot-plug listener.
    pub fn subscribe(&self, f: impl Fn(&Sim, UsbEvent) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }

    /// Drops every registered hot-plug listener.
    ///
    /// Listeners capture the component that subscribed, which usually
    /// holds (a handle to) this host back — an `Rc` cycle outside the
    /// event queue. Harness teardown calls this so repeated in-process
    /// builds don't accumulate whole deployments.
    pub fn clear_listeners(&self) {
        self.inner.borrow_mut().listeners.clear();
    }

    fn emit(&self, sim: &Sim, ev: UsbEvent) {
        let listeners: Vec<_> = self.inner.borrow().listeners.clone();
        for l in listeners {
            l(sim, ev);
        }
    }

    /// Attaches a device; enumeration proceeds asynchronously and ends with
    /// a [`UsbEvent::Ready`] or [`UsbEvent::EnumFailed`] notification.
    pub fn attach(&self, sim: &Sim, desc: DeviceDesc) {
        let verdict: Result<(SimTime, u64), EnumError> = {
            let mut i = self.inner.borrow_mut();
            if i.nodes.contains_key(&desc.id) {
                Err(EnumError::DuplicateId)
            } else {
                let tier = match desc.parent {
                    None => 1,
                    Some(p) => match i.nodes.get(&p) {
                        Some(n) if n.desc.kind == DeviceKind::Hub => n.tier + 1,
                        _ => {
                            drop(i);
                            self.emit(sim, UsbEvent::EnumFailed(desc.id, EnumError::ParentMissing));
                            return;
                        }
                    },
                };
                let tier_limit = match desc.kind {
                    DeviceKind::Hub => i.profile.max_hub_tiers,
                    DeviceKind::Storage => i.profile.max_hub_tiers + 1,
                };
                if tier > tier_limit {
                    Err(EnumError::TierTooDeep)
                } else if i.nodes.len() >= i.profile.max_devices {
                    Err(EnumError::TooManyDevices)
                } else {
                    let epoch = i.next_epoch;
                    i.next_epoch += 1;
                    // Serialize the bus-level part of enumeration.
                    let debounce = sim.now() + i.profile.disconnect_detect;
                    let start = debounce.max(i.enum_tail);
                    let serial_done = start + i.profile.enum_serial;
                    i.enum_tail = serial_done;
                    let ready_at = serial_done + i.profile.enum_parallel;
                    i.nodes.insert(
                        desc.id,
                        Node {
                            desc,
                            tier,
                            state: DeviceState::Enumerating,
                            epoch,
                        },
                    );
                    i.topo_gen += 1;
                    Ok((ready_at, epoch))
                }
            }
        };
        match verdict {
            Ok((ready_at, epoch)) => {
                self.emit(sim, UsbEvent::Attached(desc.id));
                let this = self.clone();
                sim.schedule_at(ready_at, move |sim| {
                    let became_ready = {
                        let mut i = this.inner.borrow_mut();
                        match i.nodes.get_mut(&desc.id) {
                            Some(n) if n.epoch == epoch => {
                                n.state = DeviceState::Ready;
                                true
                            }
                            _ => false,
                        }
                    };
                    if became_ready {
                        this.inner.borrow_mut().topo_gen += 1;
                    }
                    if became_ready {
                        sim.count(&this.name(), "usb.enumerations", 1);
                        sim.trace(
                            TraceLevel::Debug,
                            "usb",
                            format!("{}: {} ready", this.name(), desc.id),
                        );
                        this.emit(sim, UsbEvent::Ready(desc.id));
                    }
                });
            }
            Err(e) => {
                // Record the failed device so the operator can see it in
                // the tree snapshot (mirrors the paper's ">15 devices not
                // recognized" symptom).
                if e == EnumError::TooManyDevices || e == EnumError::TierTooDeep {
                    let mut i = self.inner.borrow_mut();
                    let epoch = i.next_epoch;
                    i.next_epoch += 1;
                    let tier = desc
                        .parent
                        .and_then(|p| i.nodes.get(&p))
                        .map_or(1, |n| n.tier + 1);
                    i.nodes.insert(
                        desc.id,
                        Node {
                            desc,
                            tier,
                            state: DeviceState::Failed(e),
                            epoch,
                        },
                    );
                    i.topo_gen += 1;
                }
                sim.trace(
                    TraceLevel::Warn,
                    "usb",
                    format!("{}: {} enumeration failed: {e}", self.name(), desc.id),
                );
                self.emit(sim, UsbEvent::EnumFailed(desc.id, e));
            }
        }
    }

    /// Detaches a device and its entire subtree. [`UsbEvent::Detached`]
    /// notifications fire after the disconnect-detect delay.
    pub fn detach(&self, sim: &Sim, id: DeviceId) {
        let removed = {
            let mut i = self.inner.borrow_mut();
            let mut to_remove = vec![id];
            let mut k = 0;
            while k < to_remove.len() {
                let cur = to_remove[k];
                k += 1;
                let children: Vec<DeviceId> = i
                    .nodes
                    .values()
                    .filter(|n| n.desc.parent == Some(cur))
                    .map(|n| n.desc.id)
                    .collect();
                to_remove.extend(children);
            }
            let mut removed = Vec::new();
            for d in to_remove {
                if i.nodes.remove(&d).is_some() {
                    removed.push(d);
                }
            }
            if !removed.is_empty() {
                i.topo_gen += 1;
            }
            removed
        };
        if removed.is_empty() {
            return;
        }
        sim.count(&self.name(), "usb.detaches", removed.len() as u64);
        let delay = self.inner.borrow().profile.disconnect_detect;
        let this = self.clone();
        sim.schedule_in(delay, move |sim| {
            for d in &removed {
                this.emit(sim, UsbEvent::Detached(*d));
            }
        });
    }

    /// Number of attached devices (any state).
    pub fn device_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// State of one device, if attached.
    pub fn device_state(&self, id: DeviceId) -> Option<DeviceState> {
        self.inner.borrow().nodes.get(&id).map(|n| n.state)
    }

    /// Topology generation: changes whenever any device attaches, detaches
    /// or changes state. Cache keys for derived views of the tree.
    pub fn topology_gen(&self) -> u64 {
        self.inner.borrow().topo_gen
    }

    /// `lsusb -t`-style snapshot, sorted by (tier, id).
    pub fn snapshot(&self) -> Vec<UsbTreeNode> {
        let i = self.inner.borrow();
        let mut v: Vec<UsbTreeNode> = i
            .nodes
            .values()
            .map(|n| UsbTreeNode {
                id: n.desc.id,
                kind: n.desc.kind,
                parent: n.desc.parent,
                tier: n.tier,
                state: n.state,
            })
            .collect();
        v.sort_by_key(|n| (n.tier, n.id));
        v
    }

    /// Renders the tree like `lsusb -t` — the view the paper's USB
    /// Monitor ships to the Controller (§IV-B).
    ///
    /// ```text
    /// /:  root hub (host-0)
    ///     |__ usb100000 [hub] ready
    ///         |__ usb0 [storage] ready
    /// ```
    pub fn format_tree(&self) -> String {
        let snap = self.snapshot();
        let mut out = format!(
            "/:  root hub ({})
",
            self.name()
        );
        fn emit(out: &mut String, snap: &[UsbTreeNode], parent: Option<DeviceId>, depth: usize) {
            for n in snap.iter().filter(|n| n.parent == parent) {
                let kind = match n.kind {
                    DeviceKind::Hub => "hub",
                    DeviceKind::Storage => "storage",
                };
                let state = match n.state {
                    DeviceState::Ready => "ready".to_owned(),
                    DeviceState::Enumerating => "enumerating".to_owned(),
                    DeviceState::Failed(e) => format!("FAILED: {e}"),
                };
                out.push_str(&"    ".repeat(depth));
                out.push_str(&format!(
                    "|__ {} [{kind}] {state}
",
                    n.id
                ));
                emit(out, snap, Some(n.id), depth + 1);
            }
        }
        emit(&mut out, &snap, None, 1);
        out
    }

    /// Number of ready storage devices downstream of hub `hub` (for the
    /// Table IV hub power model).
    pub fn hub_active_ports(&self, hub: DeviceId) -> usize {
        let i = self.inner.borrow();
        i.nodes
            .values()
            .filter(|n| n.desc.parent == Some(hub) && !matches!(n.state, DeviceState::Failed(_)))
            .count()
    }

    /// Reserves the shared payload link for a `bytes`-sized command to or
    /// from `id`, invoking `cb` when the bus transfer would complete.
    ///
    /// The caller overlaps this with the disk's own service time (the
    /// completion is the max of the two), so under no contention the bus
    /// adds nothing — matching Table II's H&S ≈ USB observation.
    pub fn transfer(
        &self,
        sim: &Sim,
        id: DeviceId,
        dir: BusDir,
        bytes: u64,
        cb: impl FnOnce(&Sim, Result<(), UsbError>) + 'static,
    ) {
        let res: Result<SimTime, UsbError> = {
            let mut i = self.inner.borrow_mut();
            match i.nodes.get(&id) {
                None => Err(UsbError::NoSuchDevice),
                Some(n) if n.desc.kind != DeviceKind::Storage => Err(UsbError::NotStorage),
                Some(n) if n.state != DeviceState::Ready => Err(UsbError::NotReady),
                Some(_) => {
                    let now = sim.now();
                    let other_busy = match dir {
                        BusDir::In => i.out_busy,
                        BusDir::Out => i.in_busy,
                    };
                    let mut occ = i.profile.command_occupancy(bytes);
                    if other_busy > now {
                        // Both directions streaming: duplex derating.
                        occ = Duration::from_secs_f64(occ.as_secs_f64() / i.profile.duplex_factor);
                    }
                    let busy = match dir {
                        BusDir::In => &mut i.in_busy,
                        BusDir::Out => &mut i.out_busy,
                    };
                    let start = now.max(*busy);
                    let done = start + occ;
                    *busy = done;
                    // Link utilization telemetry: summing busy_ns over a
                    // window gives the per-direction duty cycle.
                    let m = i.metrics(sim);
                    m.transfers.inc();
                    m.bytes.add(bytes);
                    match dir {
                        BusDir::In => &m.link_in_busy,
                        BusDir::Out => &m.link_out_busy,
                    }
                    .add(occ.as_nanos().min(u128::from(u64::MAX)) as u64);
                    Ok(done)
                }
            }
        };
        match res {
            Ok(done) => {
                sim.schedule_at(done, move |sim| cb(sim, Ok(())));
            }
            Err(e) => {
                sim.schedule_now(move |sim| cb(sim, Err(e)));
            }
        }
    }

    /// The controller's profile.
    pub fn profile(&self) -> UsbProfile {
        self.inner.borrow().profile.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn host() -> (Sim, UsbHost) {
        (Sim::new(3), UsbHost::new("h0", UsbProfile::prototype()))
    }

    fn hub(id: u32, parent: Option<u32>) -> DeviceDesc {
        DeviceDesc {
            id: DeviceId(id),
            kind: DeviceKind::Hub,
            parent: parent.map(DeviceId),
        }
    }

    fn stor(id: u32, parent: Option<u32>) -> DeviceDesc {
        DeviceDesc {
            id: DeviceId(id),
            kind: DeviceKind::Storage,
            parent: parent.map(DeviceId),
        }
    }

    #[test]
    fn single_device_enumerates_in_expected_time() {
        let (sim, h) = host();
        let ready_at = Rc::new(Cell::new(SimTime::ZERO));
        let r = ready_at.clone();
        h.subscribe(move |sim, ev| {
            if matches!(ev, UsbEvent::Ready(_)) {
                r.set(sim.now());
            }
        });
        h.attach(&sim, stor(1, None));
        sim.run();
        // debounce 0.4 + serial 0.3 + parallel 1.1 = 1.8 s
        assert_eq!(ready_at.get(), SimTime::from_millis(1800));
        assert_eq!(h.device_state(DeviceId(1)), Some(DeviceState::Ready));
    }

    #[test]
    fn simultaneous_enumeration_serializes() {
        let (sim, h) = host();
        let last = Rc::new(Cell::new(SimTime::ZERO));
        let l = last.clone();
        h.subscribe(move |sim, ev| {
            if matches!(ev, UsbEvent::Ready(_)) {
                l.set(sim.now());
            }
        });
        for d in 0..4 {
            h.attach(&sim, stor(d, None));
        }
        sim.run();
        // 0.4 + 4 * 0.3 + 1.1 = 2.7 s — the Figure 6 part-1 slope.
        assert_eq!(last.get(), SimTime::from_millis(2700));
    }

    #[test]
    fn device_limit_quirk() {
        let (sim, h) = host();
        let failed = Rc::new(Cell::new(0u32));
        let f = failed.clone();
        h.subscribe(move |_, ev| {
            if matches!(ev, UsbEvent::EnumFailed(_, EnumError::TooManyDevices)) {
                f.set(f.get() + 1);
            }
        });
        for d in 0..20 {
            h.attach(&sim, stor(d, None));
        }
        sim.run();
        assert_eq!(failed.get(), 5, "15-device quirk rejects the rest");
        // Spec-conformant controller takes all 20.
        let h2 = UsbHost::new("h1", UsbProfile::spec_conformant());
        for d in 0..20 {
            h2.attach(&sim, stor(100 + d, None));
        }
        sim.run();
        let ready = h2
            .snapshot()
            .iter()
            .filter(|n| n.state == DeviceState::Ready)
            .count();
        assert_eq!(ready, 20);
    }

    #[test]
    fn tier_limit_enforced() {
        let (sim, h) = host();
        let mut parent = None;
        for t in 0..5 {
            h.attach(&sim, hub(t, parent));
            parent = Some(t);
        }
        sim.run();
        // 6th tier hub fails.
        h.attach(&sim, hub(5, parent));
        sim.run();
        assert_eq!(
            h.device_state(DeviceId(5)),
            Some(DeviceState::Failed(EnumError::TierTooDeep))
        );
        // Storage on tier-5 hub is fine (it is the 6th level = device level).
        h.attach(&sim, stor(10, Some(4)));
        sim.run();
        assert_eq!(h.device_state(DeviceId(10)), Some(DeviceState::Ready));
    }

    #[test]
    fn parent_missing_and_duplicate() {
        let (sim, h) = host();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        h.subscribe(move |_, ev| e.borrow_mut().push(ev));
        h.attach(&sim, stor(1, Some(99)));
        h.attach(&sim, stor(2, None));
        h.attach(&sim, stor(2, None));
        sim.run();
        let evs = events.borrow();
        assert!(evs.contains(&UsbEvent::EnumFailed(DeviceId(1), EnumError::ParentMissing)));
        assert!(evs.contains(&UsbEvent::EnumFailed(DeviceId(2), EnumError::DuplicateId)));
    }

    #[test]
    fn detach_removes_subtree_and_notifies() {
        let (sim, h) = host();
        h.attach(&sim, hub(1, None));
        h.attach(&sim, stor(2, Some(1)));
        h.attach(&sim, stor(3, Some(1)));
        sim.run();
        assert_eq!(h.device_count(), 3);
        let detached = Rc::new(RefCell::new(Vec::new()));
        let d = detached.clone();
        h.subscribe(move |_, ev| {
            if let UsbEvent::Detached(id) = ev {
                d.borrow_mut().push(id);
            }
        });
        h.detach(&sim, DeviceId(1));
        assert_eq!(h.device_count(), 0, "subtree gone immediately");
        sim.run();
        assert_eq!(detached.borrow().len(), 3, "all three notified");
        assert_eq!(
            sim.metrics_snapshot().counter(&h.name(), "usb.detaches"),
            3,
            "detach storms are countable per host"
        );
    }

    #[test]
    fn detach_mid_enumeration_cancels_ready() {
        let (sim, h) = host();
        h.attach(&sim, stor(1, None));
        h.detach(&sim, DeviceId(1));
        let got_ready = Rc::new(Cell::new(false));
        let g = got_ready.clone();
        h.subscribe(move |_, ev| {
            if matches!(ev, UsbEvent::Ready(_)) {
                g.set(true);
            }
        });
        sim.run();
        assert!(!got_ready.get());
    }

    #[test]
    fn transfer_requires_ready_storage() {
        let (sim, h) = host();
        h.attach(&sim, hub(1, None));
        h.attach(&sim, stor(2, Some(1)));
        h.transfer(&sim, DeviceId(9), BusDir::In, 4096, |_, r| {
            assert_eq!(r.unwrap_err(), UsbError::NoSuchDevice);
        });
        h.transfer(&sim, DeviceId(2), BusDir::In, 4096, |_, r| {
            assert_eq!(r.unwrap_err(), UsbError::NotReady);
        });
        sim.run();
        h.transfer(&sim, DeviceId(1), BusDir::In, 4096, |_, r| {
            assert_eq!(r.unwrap_err(), UsbError::NotStorage);
        });
        h.transfer(&sim, DeviceId(2), BusDir::In, 4096, |_, r| {
            r.expect("ready now")
        });
        sim.run();
    }

    #[test]
    fn link_is_shared_fifo() {
        let (sim, h) = host();
        h.attach(&sim, stor(1, None));
        h.attach(&sim, stor(2, None));
        sim.run();
        let t0 = sim.now();
        let done = Rc::new(RefCell::new(Vec::new()));
        for d in [1u32, 2] {
            let dn = done.clone();
            h.transfer(
                &sim,
                DeviceId(d),
                BusDir::In,
                4 * 1024 * 1024,
                move |sim, r| {
                    r.expect("transfer");
                    dn.borrow_mut().push(sim.now());
                },
            );
        }
        sim.run();
        let done = done.borrow();
        let occ = UsbProfile::prototype().command_occupancy(4 * 1024 * 1024);
        assert_eq!(done[0], t0 + occ);
        assert_eq!(
            done[1],
            t0 + occ + occ,
            "second transfer queued behind first"
        );
    }

    #[test]
    fn duplex_directions_overlap_with_derating() {
        let (sim, h) = host();
        h.attach(&sim, stor(1, None));
        h.attach(&sim, stor(2, None));
        sim.run();
        let t0 = sim.now();
        let done_in = Rc::new(Cell::new(SimTime::ZERO));
        let done_out = Rc::new(Cell::new(SimTime::ZERO));
        let di = done_in.clone();
        h.transfer(&sim, DeviceId(1), BusDir::In, 4 << 20, move |sim, _| {
            di.set(sim.now())
        });
        let do_ = done_out.clone();
        h.transfer(&sim, DeviceId(2), BusDir::Out, 4 << 20, move |sim, _| {
            do_.set(sim.now())
        });
        sim.run();
        let occ = UsbProfile::prototype().command_occupancy(4 << 20);
        // IN started first with the OUT side idle: full rate.
        assert_eq!(done_in.get(), t0 + occ);
        // OUT sees the IN side busy: derated by the duplex factor.
        let derated = Duration::from_secs_f64(occ.as_secs_f64() / 0.9);
        assert_eq!(done_out.get(), t0 + derated);
        // Both complete far sooner than serialized (2x occ).
        assert!(done_out.get() < t0 + occ + occ);
    }

    #[test]
    fn format_tree_renders_hierarchy_and_states() {
        let (sim, h) = host();
        h.attach(&sim, hub(5, None));
        h.attach(&sim, stor(3, Some(5)));
        sim.run();
        for d in 0..20 {
            h.attach(&sim, stor(50 + d, None));
        }
        sim.run();
        let tree = h.format_tree();
        assert!(tree.starts_with("/:  root hub (h0)"), "{tree}");
        assert!(tree.contains("|__ usb5 [hub] ready"));
        assert!(tree.contains("    |__ usb3 [storage] ready"), "{tree}");
        assert!(
            tree.contains("FAILED"),
            "over-limit devices visible: {tree}"
        );
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let (sim, h) = host();
        h.attach(&sim, hub(5, None));
        h.attach(&sim, stor(3, Some(5)));
        h.attach(&sim, stor(4, Some(5)));
        sim.run();
        let snap = h.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].id, DeviceId(5));
        assert_eq!(snap[0].tier, 1);
        assert_eq!(snap[1].tier, 2);
        assert_eq!(h.hub_active_ports(DeviceId(5)), 2);
    }
}
