//! # ustore-usb — USB 3.0 bus and device-tree model
//!
//! Models what the UStore hardware substitutes for physical USB 3.0: root
//! controllers ([`UsbHost`]) with enumeration timing, hot-plug events, the
//! spec's tier/device limits (including the Intel "<15 devices" quirk the
//! paper hit in §V-B), shared per-direction payload links with duplex
//! derating, and the hub power model of Table IV ([`UsbProfile`]).
//!
//! The interconnect *fabric* (hubs + 2:1 switches, Figure 2) lives in
//! `ustore-fabric`; this crate only models each host's view of its tree.
//!
//! ## Example
//!
//! ```
//! use ustore_sim::Sim;
//! use ustore_usb::{DeviceDesc, DeviceId, DeviceKind, UsbHost, UsbProfile};
//!
//! let sim = Sim::new(0);
//! let host = UsbHost::new("host-0", UsbProfile::prototype());
//! host.attach(&sim, DeviceDesc {
//!     id: DeviceId(1),
//!     kind: DeviceKind::Storage,
//!     parent: None,
//! });
//! sim.run();
//! assert_eq!(host.snapshot().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod profile;

pub use host::{
    BusDir, DeviceDesc, DeviceId, DeviceKind, DeviceState, EnumError, UsbError, UsbEvent, UsbHost,
    UsbTreeNode,
};
pub use profile::UsbProfile;
