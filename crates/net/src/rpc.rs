//! Request/response RPC over the simulated network.
//!
//! The network itself is lossy (like UDP); [`RpcNode`] adds correlation ids
//! and per-call timeouts so callers observe either a typed response or a
//! [`RpcError::Timeout`]. This is the transport used by heartbeats, the
//! Master↔Controller/EndPoint command channels, the coordination service
//! and the iSCSI layer.

use std::any::Any;
use std::cell::RefCell;

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_sim::{CounterHandle, EventId, FastMap, HistogramHandle, ReqStamp, Sim, SimTime, Stage};

use crate::network::{Addr, Envelope, Network, Payload};

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline (lost message, dead peer, partition).
    Timeout,
    /// The peer answered with an unexpected payload type.
    BadType,
    /// The peer has no handler for the method.
    NoSuchMethod,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::BadType => write!(f, "rpc response had unexpected type"),
            RpcError::NoSuchMethod => write!(f, "rpc method not served by peer"),
        }
    }
}

impl std::error::Error for RpcError {}

enum RpcMsg {
    Request {
        id: u64,
        method: String,
        body: Payload,
        /// Request-lifecycle stamp riding this hop (no wire bytes: the
        /// simulated message size is unchanged, so tracing cannot perturb
        /// network timing or telemetry).
        stamp: Option<ReqStamp>,
    },
    Response {
        id: u64,
        body: Result<Payload, RpcError>,
        stamp: Option<ReqStamp>,
    },
}

type ResponseCb = Box<dyn FnOnce(&Sim, Result<Payload, RpcError>)>;

struct Pending {
    cb: ResponseCb,
    timeout_event: EventId,
    started: SimTime,
}

type Handler = Rc<dyn Fn(&Sim, Payload, Responder)>;

/// Per-endpoint metric handles, resolved once (lazily: [`RpcNode::new`]
/// has no simulator handle) so per-call accounting neither formats the
/// address nor hashes metric names.
#[derive(Debug, Clone)]
struct RpcMetrics {
    calls: CounterHandle,
    timeouts: CounterHandle,
    round_trips: CounterHandle,
    errors: CounterHandle,
    rtt: HistogramHandle,
}

struct Inner {
    next_id: u64,
    pending: FastMap<u64, Pending>,
    handlers: FastMap<String, Handler>,
    metrics: Option<RpcMetrics>,
}

/// An RPC endpoint bound to one network address.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use ustore_sim::Sim;
/// use ustore_net::{Addr, NetConfig, Network, RpcNode};
///
/// let sim = Sim::new(1);
/// let net = Network::new(NetConfig::default());
/// let server = RpcNode::new(&net, Addr::new("server"));
/// let client = RpcNode::new(&net, Addr::new("client"));
/// server.serve("add1", |sim, req, responder| {
///     let n: &u32 = req.downcast_ref().expect("u32 request");
///     responder.reply(sim, Arc::new(n + 1), 8);
/// });
/// client.call::<u32>(
///     &sim,
///     &Addr::new("server"),
///     "add1",
///     Arc::new(41u32),
///     8,
///     Duration::from_secs(1),
///     |_, resp| assert_eq!(*resp.expect("reply"), 42),
/// );
/// sim.run();
/// ```
#[derive(Clone)]
pub struct RpcNode {
    net: Network,
    addr: Addr,
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for RpcNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcNode")
            .field("addr", &self.addr)
            .field("pending", &self.inner.borrow().pending.len())
            .finish()
    }
}

/// Capability to answer one request.
pub struct Responder {
    net: Network,
    from: Addr,
    to: Addr,
    id: u64,
    /// Trace stamp the request carried; travels back on the response.
    stamp: Option<ReqStamp>,
}

impl fmt::Debug for Responder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Responder").field("id", &self.id).finish()
    }
}

impl Responder {
    /// The address of the requester this responder answers to.
    pub fn peer(&self) -> &Addr {
        &self.to
    }

    /// Sends the response payload (with `bytes` wire size).
    pub fn reply(self, sim: &Sim, body: Payload, bytes: u64) {
        if self.stamp.is_some() {
            // Whatever server-side time since the last mark was not
            // explicitly absorbed (device stages) counts as transfer.
            sim.reqtracer().mark(self.stamp, Stage::Transfer, sim.now());
        }
        let msg = RpcMsg::Response {
            id: self.id,
            body: Ok(body),
            stamp: self.stamp,
        };
        self.net
            .send(sim, &self.from, &self.to, bytes + 48, Arc::new(msg));
    }

    /// Sends an error response.
    pub fn reply_err(self, sim: &Sim, err: RpcError) {
        let msg = RpcMsg::Response {
            id: self.id,
            body: Err(err),
            stamp: self.stamp,
        };
        self.net.send(sim, &self.from, &self.to, 48, Arc::new(msg));
    }
}

impl RpcNode {
    /// Creates an endpoint at `addr`, registering and binding it on `net`.
    pub fn new(net: &Network, addr: Addr) -> Self {
        net.register(&addr);
        let node = RpcNode {
            net: net.clone(),
            addr: addr.clone(),
            inner: Rc::new(RefCell::new(Inner {
                next_id: 0,
                pending: FastMap::default(),
                handlers: FastMap::default(),
                metrics: None,
            })),
        };
        let n = node.clone();
        net.bind(&addr, move |sim, env| n.on_message(sim, env));
        // The handler map is a cycle anchor independent of the network
        // bind: served closures capture component clones which hold this
        // RpcNode back. Register a weak breaker so `Network::teardown`
        // clears the map (and any orphaned pending callbacks) without the
        // registry itself keeping the endpoint alive.
        let weak = Rc::downgrade(&node.inner);
        net.on_teardown(move || {
            if let Some(inner) = weak.upgrade() {
                let (handlers, pending) = {
                    let mut i = inner.borrow_mut();
                    (
                        std::mem::take(&mut i.handlers),
                        std::mem::take(&mut i.pending),
                    )
                };
                drop(handlers);
                drop(pending);
            }
        });
        node
    }

    /// This endpoint's address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Registers a handler for `method` (replacing any previous one).
    pub fn serve(&self, method: &str, handler: impl Fn(&Sim, Payload, Responder) + 'static) {
        self.inner
            .borrow_mut()
            .handlers
            .insert(method.to_owned(), Rc::new(handler));
    }

    /// Issues a call; `cb` receives the typed response or an error.
    pub fn call<Resp: Any + Send + Sync>(
        &self,
        sim: &Sim,
        to: &Addr,
        method: &str,
        body: Payload,
        bytes: u64,
        timeout: Duration,
        cb: impl FnOnce(&Sim, Result<Arc<Resp>, RpcError>) + 'static,
    ) {
        let id = {
            let mut i = self.inner.borrow_mut();
            let id = i.next_id;
            i.next_id += 1;
            id
        };
        let typed_cb: ResponseCb = Box::new(move |sim, res| {
            let typed = res.and_then(|body| body.downcast::<Resp>().map_err(|_| RpcError::BadType));
            cb(sim, typed);
        });
        let timeouts = self.with_metrics(sim, |m| {
            m.calls.inc();
            m.timeouts.clone()
        });
        let inner = self.inner.clone();
        let timeout_event = sim.schedule_in(timeout, move |sim| {
            // Drop the borrow before invoking the callback: it may issue a
            // retry through this same endpoint.
            let pending = inner.borrow_mut().pending.remove(&id);
            if let Some(p) = pending {
                timeouts.inc();
                (p.cb)(sim, Err(RpcError::Timeout));
            }
        });
        self.inner.borrow_mut().pending.insert(
            id,
            Pending {
                cb: typed_cb,
                timeout_event,
                started: sim.now(),
            },
        );
        let msg = RpcMsg::Request {
            id,
            method: method.to_owned(),
            body,
            stamp: sim.current_stamp(),
        };
        self.net
            .send(sim, &self.addr, to, bytes + 48, Arc::new(msg));
    }

    /// Runs `f` with the endpoint's metric handles, resolving the address
    /// label exactly once over the node's lifetime. Borrowing (instead of
    /// cloning the handle set out) keeps per-call accounting to plain
    /// counter bumps.
    fn with_metrics<R>(&self, sim: &Sim, f: impl FnOnce(&RpcMetrics) -> R) -> R {
        let mut i = self.inner.borrow_mut();
        if i.metrics.is_none() {
            let c = self.addr.to_string();
            i.metrics = Some(RpcMetrics {
                calls: sim.counter(&c, "rpc.calls"),
                timeouts: sim.counter(&c, "rpc.timeouts"),
                round_trips: sim.counter(&c, "rpc.round_trips"),
                errors: sim.counter(&c, "rpc.errors"),
                rtt: sim.histogram(&c, "rpc.rtt_ns"),
            });
        }
        f(i.metrics.as_ref().expect("metrics just initialized"))
    }

    fn on_message(&self, sim: &Sim, env: Envelope) {
        let Some(msg) = env.payload.downcast_ref::<RpcMsg>() else {
            return; // not RPC traffic
        };
        match msg {
            RpcMsg::Request {
                id,
                method,
                body,
                stamp,
            } => {
                let handler = self.inner.borrow().handlers.get(method).cloned();
                let responder = Responder {
                    net: self.net.clone(),
                    from: self.addr.clone(),
                    to: env.from.clone(),
                    id: *id,
                    stamp: *stamp,
                };
                match handler {
                    Some(h) => {
                        if let Some(stamp) = *stamp {
                            // Close the request hop, then expose the stamp
                            // to the synchronous handler chain (iSCSI →
                            // exposed space → fabric → disk submit).
                            sim.reqtracer()
                                .mark(Some(stamp), Stage::NetTransit, sim.now());
                            sim.set_current_stamp(Some(stamp));
                            h(sim, body.clone(), responder);
                            sim.set_current_stamp(None);
                        } else {
                            h(sim, body.clone(), responder);
                        }
                    }
                    None => responder.reply_err(sim, RpcError::NoSuchMethod),
                }
            }
            RpcMsg::Response { id, body, stamp } => {
                let pending = self.inner.borrow_mut().pending.remove(id);
                if let Some(p) = pending {
                    sim.cancel(p.timeout_event);
                    if stamp.is_some() {
                        // Close the response hop. Late responses (timeout
                        // already fired) never reach here, and the stamp's
                        // attempt guard drops them anyway.
                        sim.reqtracer().mark(*stamp, Stage::NetTransit, sim.now());
                    }
                    self.with_metrics(sim, |m| {
                        m.round_trips.inc();
                        m.rtt.observe_duration(sim.now().duration_since(p.started));
                        if body.is_err() {
                            m.errors.inc();
                        }
                    });
                    (p.cb)(sim, body.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use std::cell::Cell;

    fn setup() -> (Sim, Network, RpcNode, RpcNode) {
        let sim = Sim::new(2);
        let net = Network::new(NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        });
        let server = RpcNode::new(&net, Addr::new("server"));
        let client = RpcNode::new(&net, Addr::new("client"));
        (sim, net, server, client)
    }

    #[test]
    fn request_response_roundtrip() {
        let (sim, _net, server, client) = setup();
        server.serve("echo", |sim, req, r| {
            let s: &String = req.downcast_ref().expect("string");
            r.reply(sim, Arc::new(s.clone()), s.len() as u64);
        });
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        client.call::<String>(
            &sim,
            &Addr::new("server"),
            "echo",
            Arc::new("ping".to_string()),
            4,
            Duration::from_secs(1),
            move |_, resp| {
                assert_eq!(*resp.expect("echo"), "ping");
                o.set(true);
            },
        );
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn timeout_on_dead_server() {
        let (sim, net, _server, client) = setup();
        net.set_down(&sim, &Addr::new("server"));
        let got = Rc::new(Cell::new(None));
        let g = got.clone();
        client.call::<()>(
            &sim,
            &Addr::new("server"),
            "x",
            Arc::new(()),
            4,
            Duration::from_millis(500),
            move |_, resp| g.set(Some(resp.unwrap_err())),
        );
        sim.run();
        assert_eq!(got.get(), Some(RpcError::Timeout));
        assert_eq!(sim.now().as_secs_f64(), 0.5);
    }

    #[test]
    fn no_such_method() {
        let (sim, _net, _server, client) = setup();
        let got = Rc::new(Cell::new(None));
        let g = got.clone();
        client.call::<()>(
            &sim,
            &Addr::new("server"),
            "nope",
            Arc::new(()),
            4,
            Duration::from_secs(1),
            move |_, resp| g.set(Some(resp.unwrap_err())),
        );
        sim.run();
        assert_eq!(got.get(), Some(RpcError::NoSuchMethod));
    }

    #[test]
    fn bad_response_type() {
        let (sim, _net, server, client) = setup();
        server.serve("m", |sim, _req, r| r.reply(sim, Arc::new(1u8), 1));
        let got = Rc::new(Cell::new(None));
        let g = got.clone();
        client.call::<String>(
            &sim,
            &Addr::new("server"),
            "m",
            Arc::new(()),
            4,
            Duration::from_secs(1),
            move |_, resp| g.set(Some(resp.unwrap_err())),
        );
        sim.run();
        assert_eq!(got.get(), Some(RpcError::BadType));
    }

    #[test]
    fn concurrent_calls_are_correlated() {
        let (sim, _net, server, client) = setup();
        server.serve("double", |sim, req, r| {
            let n: u32 = *req.downcast_ref::<u32>().expect("u32");
            r.reply(sim, Arc::new(n * 2), 4);
        });
        let sum = Rc::new(Cell::new(0u32));
        for n in 1..=5u32 {
            let s = sum.clone();
            client.call::<u32>(
                &sim,
                &Addr::new("server"),
                "double",
                Arc::new(n),
                4,
                Duration::from_secs(1),
                move |_, resp| s.set(s.get() + *resp.expect("doubled")),
            );
        }
        sim.run();
        assert_eq!(sum.get(), 2 * (1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn rpc_metrics_count_round_trips_and_timeouts() {
        let (sim, net, server, client) = setup();
        server.serve("echo", |sim, _req, r| r.reply(sim, Arc::new(()), 1));
        client.call::<()>(
            &sim,
            &Addr::new("server"),
            "echo",
            Arc::new(()),
            4,
            Duration::from_secs(1),
            |_, resp| {
                resp.expect("echo");
            },
        );
        sim.run();
        net.set_down(&sim, &Addr::new("server"));
        client.call::<()>(
            &sim,
            &Addr::new("server"),
            "echo",
            Arc::new(()),
            4,
            Duration::from_millis(100),
            |_, resp| {
                resp.unwrap_err();
            },
        );
        sim.run();
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("client", "rpc.calls"), 2);
        assert_eq!(m.counter("client", "rpc.round_trips"), 1);
        assert_eq!(m.counter("client", "rpc.timeouts"), 1);
        let h = m.histogram("client", "rpc.rtt_ns").expect("rtt histogram");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn late_response_after_timeout_is_ignored() {
        let (sim, net, server, client) = setup();
        // Server replies, but we partition so the response path is blocked
        // until after the timeout; then heal. The response arrives while no
        // pending call exists — must not panic or double-call.
        server.serve("slow", move |sim, _req, r| {
            r.reply(sim, Arc::new(7u32), 4);
        });
        net.block(&Addr::new("server"), &Addr::new("client"));
        let outcomes = Rc::new(RefCell::new(Vec::new()));
        let o = outcomes.clone();
        client.call::<u32>(
            &sim,
            &Addr::new("server"),
            "slow",
            Arc::new(()),
            4,
            Duration::from_millis(10),
            move |_, resp| o.borrow_mut().push(resp.map(|v| *v)),
        );
        sim.run();
        assert_eq!(*outcomes.borrow(), vec![Err(RpcError::Timeout)]);
    }
}
