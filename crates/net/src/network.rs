//! Message-level data-center network simulation.
//!
//! A flat L2/L3 fabric: every registered node has a NIC with a serialization
//! rate, and every pair of nodes is connected with a base propagation
//! latency plus jitter. Failure injection covers node crashes, link
//! partitions and random message loss — enough to exercise the UStore
//! stack's heartbeating, failover and retry behaviour.

use std::any::Any;
use std::cell::RefCell;

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_sim::{
    FastMap, FastSet, LookaheadMatrix, Routed, Sim, SimTime, TraceLevel, TrafficMatrix,
};

/// A network address (host name). Cheap to clone and safe to move across
/// shard threads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(Arc<str>);

impl Addr {
    /// Creates an address from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Addr(Arc::from(name.as_ref()))
    }

    /// The address as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Addr {
    fn from(s: &str) -> Self {
        Addr::new(s)
    }
}

/// A message payload: typed, reference-counted, and `Send + Sync` so
/// envelopes can cross shard boundaries. Receivers downcast to the
/// expected type.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// A delivered message.
#[derive(Clone)]
pub struct Envelope {
    /// Sender address.
    pub from: Addr,
    /// Destination address.
    pub to: Addr,
    /// Wire size used for serialization-delay accounting.
    pub bytes: u64,
    /// The typed payload; receivers downcast to the expected type.
    pub payload: Payload,
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Network-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// One-way propagation latency between any two nodes.
    pub base_latency: Duration,
    /// Uniform extra latency in `[0, jitter]`.
    pub jitter: Duration,
    /// NIC serialization rate, bytes/s (default 10 GbE).
    pub nic_rate: f64,
    /// Probability an individual message is silently lost.
    pub loss_probability: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_latency: Duration::from_micros(100),
            jitter: Duration::from_micros(20),
            nic_rate: 1.25e9,
            loss_probability: 0.0,
        }
    }
}

struct Node {
    handler: Option<Rc<dyn Fn(&Sim, Envelope)>>,
    nic_busy: SimTime,
    up: bool,
}

/// Shard-routing state: when a `Network` is one world of a sharded
/// simulation, sends whose destination lives in another world are
/// buffered here instead of being scheduled locally.
struct Routing {
    /// This network's world id.
    world: usize,
    /// Static address → world-id placement map, shared by every world.
    placement: Arc<FastMap<Addr, usize>>,
    /// Cross-world sends buffered since the last drain, in send order.
    outbox: Vec<Routed<Envelope>>,
    /// Monotone per-world sequence for the canonical merge.
    seq: u64,
    /// Optional wall-clock profiler hook: every cross-world send is
    /// recorded as `(src_world, dst_world, slack)` where slack is
    /// `deliver_at − send_time − base_latency` — the margin by which the
    /// message clears the conservative lookahead bound.
    traffic: Option<Arc<TrafficMatrix>>,
    /// Optional per-world-pair lookahead matrix shared with the shard
    /// coordinator. When present, every cross-world send is checked
    /// against it: the pair must be reachable (hard assert — an
    /// unreachable pair means the matrix mis-modeled the topology and
    /// the conservative bounds are unsound) and the delivery latency
    /// must clear the pair's minimum (debug assert).
    lookahead: Option<Arc<LookaheadMatrix>>,
}

struct Inner {
    config: NetConfig,
    nodes: FastMap<Addr, Node>,
    blocked: FastSet<(Addr, Addr)>,
    routing: Option<Routing>,
    sent: u64,
    delivered: u64,
    dropped: u64,
    /// Endpoint teardown hooks, run once by [`Network::teardown`].
    /// Endpoints whose handler tables cycle back to their owning
    /// components (see [`Network::on_teardown`]) register breakers here.
    teardown_hooks: Vec<Box<dyn FnOnce()>>,
}

/// Handle to the shared network fabric.
///
/// # Examples
///
/// ```
/// use ustore_sim::Sim;
/// use ustore_net::{Addr, NetConfig, Network};
///
/// let sim = Sim::new(1);
/// let net = Network::new(NetConfig::default());
/// let a = Addr::new("a");
/// let b = Addr::new("b");
/// net.register(&a);
/// net.register(&b);
/// net.bind(&b, |_, env| {
///     let msg: &String = env.payload.downcast_ref().expect("typed payload");
///     assert_eq!(msg, "hello");
/// });
/// net.send(&sim, &a, &b, 64, std::sync::Arc::new("hello".to_string()));
/// sim.run();
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("Network")
            .field("nodes", &i.nodes.len())
            .field("sent", &i.sent)
            .field("delivered", &i.delivered)
            .finish()
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new(config: NetConfig) -> Self {
        Network {
            inner: Rc::new(RefCell::new(Inner {
                config,
                nodes: FastMap::default(),
                blocked: FastSet::default(),
                routing: None,
                sent: 0,
                delivered: 0,
                dropped: 0,
                teardown_hooks: Vec::new(),
            })),
        }
    }

    /// Registers a node (idempotent). Nodes start up.
    pub fn register(&self, addr: &Addr) {
        self.inner
            .borrow_mut()
            .nodes
            .entry(addr.clone())
            .or_insert(Node {
                handler: None,
                nic_busy: SimTime::ZERO,
                up: true,
            });
    }

    /// Installs the receive handler for `addr` (replacing any previous).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never registered.
    pub fn bind(&self, addr: &Addr, handler: impl Fn(&Sim, Envelope) + 'static) {
        let mut i = self.inner.borrow_mut();
        let node = i.nodes.get_mut(addr).expect("bind: node not registered");
        node.handler = Some(Rc::new(handler));
    }

    /// Sends a message. Delivery is asynchronous; lost/blocked messages
    /// vanish silently (like UDP — reliability belongs to the RPC layer).
    ///
    /// With shard routing enabled, a destination placed in another world
    /// is buffered into the outbox (with the delivery instant already
    /// computed, so the sender-side NIC/jitter accounting is identical to
    /// a local send) instead of being scheduled here.
    pub fn send(&self, sim: &Sim, from: &Addr, to: &Addr, bytes: u64, payload: Payload) {
        // None = dropped; Some((at, Some(dst))) = route to world `dst`.
        let disposition = {
            let mut i = self.inner.borrow_mut();
            i.sent += 1;
            let now = sim.now();
            let remote_dst = i.routing.as_ref().and_then(|r| {
                let dst = r.placement.get(to).copied()?;
                (dst != r.world).then_some(dst)
            });
            let up_from = i.nodes.get(from).is_some_and(|n| n.up);
            // A destination in another world is liveness-checked at
            // delivery time by its own Network.
            let up_to = remote_dst.is_some() || i.nodes.get(to).is_some_and(|n| n.up);
            // No partitions installed (the common case) skips the tuple
            // hash entirely.
            let blocked = !i.blocked.is_empty() && i.blocked.contains(&(from.clone(), to.clone()));
            // Down/blocked links drop unconditionally; live links draw the
            // loss dice (short-circuit keeps the RNG stream identical).
            if !up_from
                || !up_to
                || blocked
                || (i.config.loss_probability > 0.0
                    && sim.with_rng(|r| r.chance(i.config.loss_probability)))
            {
                i.dropped += 1;
                None
            } else {
                let ser = Duration::from_secs_f64(bytes as f64 / i.config.nic_rate);
                let jitter = if i.config.jitter > Duration::ZERO {
                    let j = sim.with_rng(|r| r.f64());
                    Duration::from_secs_f64(i.config.jitter.as_secs_f64() * j)
                } else {
                    Duration::ZERO
                };
                let sender = i.nodes.get_mut(from).expect("sender exists");
                let start = now.max(sender.nic_busy);
                sender.nic_busy = start + ser;
                Some((start + ser + i.config.base_latency + jitter, remote_dst))
            }
        };
        let Some((at, remote_dst)) = disposition else {
            return;
        };
        let env = Envelope {
            from: from.clone(),
            to: to.clone(),
            bytes,
            payload,
        };
        match remote_dst {
            None => self.schedule_delivery(sim, at, env),
            Some(dst_world) => {
                let mut i = self.inner.borrow_mut();
                let base_latency = i.config.base_latency;
                let r = i.routing.as_mut().expect("routing enabled");
                if let Some(m) = &r.lookahead {
                    assert!(
                        m.reachable(r.world, dst_world),
                        "cross-world send {} -> {} but the lookahead matrix says the pair \
                         cannot talk (conservative bounds would be unsound)",
                        r.world,
                        dst_world
                    );
                    debug_assert!(
                        at.duration_since(sim.now()).as_nanos()
                            >= u128::from(m.get_ns(r.world, dst_world)),
                        "cross-world delivery latency undercuts the lookahead matrix"
                    );
                }
                if let Some(m) = &r.traffic {
                    let slack = at
                        .duration_since(sim.now())
                        .saturating_sub(base_latency)
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64;
                    m.record(r.world, dst_world, slack);
                }
                let seq = r.seq;
                r.seq += 1;
                r.outbox.push(Routed {
                    deliver_at: at,
                    src_world: r.world,
                    dst_world,
                    seq,
                    msg: env,
                });
            }
        }
    }

    /// Schedules the destination-side half of a delivery: liveness and
    /// handler checks plus the delivered/dropped accounting happen at the
    /// delivery instant.
    fn schedule_delivery(&self, sim: &Sim, at: SimTime, env: Envelope) {
        let this = self.clone();
        sim.schedule_at(at, move |sim| {
            let handler = {
                let mut i = this.inner.borrow_mut();
                match i.nodes.get(&env.to) {
                    Some(n) if n.up => {
                        let h = n.handler.clone();
                        if h.is_some() {
                            i.delivered += 1;
                        } else {
                            i.dropped += 1;
                        }
                        h
                    }
                    _ => {
                        i.dropped += 1;
                        None
                    }
                }
            };
            if let Some(h) = handler {
                h(sim, env);
            }
        });
    }

    /// Marks this network as world `world` of a sharded simulation, using
    /// the shared address placement map to split local from cross-world
    /// sends. The `sent` counter stays source-side; `delivered`/`dropped`
    /// are accounted by the destination world, so summing the per-world
    /// gauges reproduces the single-world totals.
    pub fn enable_shard_routing(&self, world: usize, placement: Arc<FastMap<Addr, usize>>) {
        self.inner.borrow_mut().routing = Some(Routing {
            world,
            placement,
            outbox: Vec::new(),
            seq: 0,
            traffic: None,
            lookahead: None,
        });
    }

    /// Like [`Self::enable_shard_routing`], but also pins the per-pair
    /// [`LookaheadMatrix`] the shard coordinator schedules with. Every
    /// cross-world send is then validated against the matrix: sends
    /// between pairs the matrix declares unreachable panic (the adaptive
    /// scheduler's safety proof would be void), and in debug builds the
    /// computed delivery latency is checked against the pair's minimum.
    pub fn enable_shard_routing_with_lookahead(
        &self,
        world: usize,
        placement: Arc<FastMap<Addr, usize>>,
        lookahead: Arc<LookaheadMatrix>,
    ) {
        self.inner.borrow_mut().routing = Some(Routing {
            world,
            placement,
            outbox: Vec::new(),
            seq: 0,
            traffic: None,
            lookahead: Some(lookahead),
        });
    }

    /// Attaches a shared cross-world [`TrafficMatrix`]: every subsequent
    /// cross-world send records its `(src, dst)` pair and lookahead slack.
    /// Recording is lock-free and never touches simulation state, so
    /// results are bit-identical with or without a matrix attached.
    ///
    /// # Panics
    ///
    /// Panics if shard routing was not enabled first (the matrix is
    /// meaningless without world placement).
    pub fn set_traffic_matrix(&self, matrix: Arc<TrafficMatrix>) {
        let mut i = self.inner.borrow_mut();
        let r = i
            .routing
            .as_mut()
            .expect("set_traffic_matrix: enable_shard_routing first");
        r.traffic = Some(matrix);
    }

    /// Drains the buffered cross-world sends, in send order. Returns an
    /// empty vector when shard routing is not enabled.
    pub fn drain_outbox(&self) -> Vec<Routed<Envelope>> {
        self.inner
            .borrow_mut()
            .routing
            .as_mut()
            .map(|r| std::mem::take(&mut r.outbox))
            .unwrap_or_default()
    }

    /// Appends the buffered cross-world sends to `out` in send order,
    /// keeping the outbox's capacity (the zero-allocation epoch-exchange
    /// path). A no-op when shard routing is not enabled.
    pub fn drain_outbox_into(&self, out: &mut Vec<Routed<Envelope>>) {
        if let Some(r) = self.inner.borrow_mut().routing.as_mut() {
            out.append(&mut r.outbox);
        }
    }

    /// Injects a message routed from another world. The delivery instant
    /// was computed at the source; destination liveness, handler dispatch
    /// and the delivered/dropped counters are evaluated here exactly as
    /// for a local send.
    pub fn deliver_remote(&self, sim: &Sim, routed: Routed<Envelope>) {
        debug_assert!(
            routed.deliver_at >= sim.now(),
            "remote delivery in the past"
        );
        self.schedule_delivery(sim, routed.deliver_at, routed.msg);
    }

    /// Crashes a node: in-flight messages to it are dropped on arrival and
    /// it can no longer send.
    pub fn set_down(&self, sim: &Sim, addr: &Addr) {
        if let Some(n) = self.inner.borrow_mut().nodes.get_mut(addr) {
            n.up = false;
        }
        sim.trace(TraceLevel::Warn, "net", format!("{addr} is down"));
    }

    /// Restores a crashed node.
    pub fn set_up(&self, sim: &Sim, addr: &Addr) {
        if let Some(n) = self.inner.borrow_mut().nodes.get_mut(addr) {
            n.up = true;
        }
        sim.trace(TraceLevel::Info, "net", format!("{addr} is up"));
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, addr: &Addr) -> bool {
        self.inner.borrow().nodes.get(addr).is_some_and(|n| n.up)
    }

    /// Blocks the directed link `from -> to` (one direction of a partition).
    pub fn block(&self, from: &Addr, to: &Addr) {
        self.inner
            .borrow_mut()
            .blocked
            .insert((from.clone(), to.clone()));
    }

    /// Blocks both directions between two nodes.
    pub fn partition(&self, a: &Addr, b: &Addr) {
        self.block(a, b);
        self.block(b, a);
    }

    /// Removes all link blocks.
    pub fn heal(&self) {
        self.inner.borrow_mut().blocked.clear();
    }

    /// `(sent, delivered, dropped)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let i = self.inner.borrow();
        (i.sent, i.delivered, i.dropped)
    }

    /// Publishes the fabric-wide message totals as gauges under component
    /// `"net"` (gauges, not counter deltas, so re-publishing on every
    /// scrape is idempotent). A rising `net.dropped` between scrapes is a
    /// watchdog-visible sign of partitions or crashed peers.
    pub fn publish_metrics(&self, sim: &Sim) {
        let (sent, delivered, dropped) = self.stats();
        sim.gauge_set("net", "net.sent", sent as f64);
        sim.gauge_set("net", "net.delivered", delivered as f64);
        sim.gauge_set("net", "net.dropped", dropped as f64);
    }

    /// The configured parameters.
    pub fn config(&self) -> NetConfig {
        self.inner.borrow().config.clone()
    }

    /// Registers a hook to run once at [`Network::teardown`] time.
    ///
    /// Every bound handler is an `Rc` closure capturing its endpoint, and
    /// endpoints in turn hold handler tables capturing the components that
    /// own them — reference cycles the event-queue teardown cannot reach.
    /// Endpoints register a breaker here (capturing their state weakly so
    /// the registry itself keeps nothing alive) to clear those tables.
    pub fn on_teardown(&self, hook: impl FnOnce() + 'static) {
        self.inner.borrow_mut().teardown_hooks.push(Box::new(hook));
    }

    /// Drops every node's receive handler, the routing outbox, and runs
    /// the registered endpoint teardown hooks — breaking the component
    /// `Rc` cycles rooted in this fabric. The network stays usable for
    /// counter reads (`stats`, `publish_metrics`) but delivers nothing
    /// afterwards. Harnesses arm this via `sim.on_teardown(..)` so one
    /// `Sim::teardown` call releases the whole deployment.
    pub fn teardown(&self) {
        let (handlers, outbox, hooks) = {
            let mut i = self.inner.borrow_mut();
            let handlers: Vec<_> = i
                .nodes
                .values_mut()
                .filter_map(|n| n.handler.take())
                .collect();
            let outbox = i
                .routing
                .as_mut()
                .map(|r| std::mem::take(&mut r.outbox))
                .unwrap_or_default();
            let hooks = std::mem::take(&mut i.teardown_hooks);
            (handlers, outbox, hooks)
        };
        // Run hooks (and drop closures) outside the borrow: a handler drop
        // may release the last strong ref to a component that holds this
        // network.
        for hook in hooks {
            hook();
        }
        drop(handlers);
        drop(outbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn setup() -> (Sim, Network, Addr, Addr) {
        let sim = Sim::new(5);
        let net = Network::new(NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        });
        let a = Addr::new("a");
        let b = Addr::new("b");
        net.register(&a);
        net.register(&b);
        (sim, net, a, b)
    }

    #[test]
    fn delivers_typed_payload_with_latency() {
        let (sim, net, a, b) = setup();
        let at = Rc::new(Cell::new(SimTime::ZERO));
        let at2 = at.clone();
        net.bind(&b, move |sim, env| {
            assert_eq!(*env.payload.downcast_ref::<u32>().expect("u32"), 42);
            at2.set(sim.now());
        });
        net.send(&sim, &a, &b, 1000, Arc::new(42u32));
        sim.run();
        // 1000 B / 1.25 GB/s = 0.8 us serialization + 100 us latency.
        assert_eq!(at.get(), SimTime::from_nanos(800 + 100_000));
    }

    #[test]
    fn sender_nic_serializes() {
        let (sim, net, a, b) = setup();
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        net.bind(&b, move |sim, _| t.borrow_mut().push(sim.now()));
        // Two 1.25 MB messages: 1 ms serialization each, shared NIC.
        for _ in 0..2 {
            net.send(&sim, &a, &b, 1_250_000, Arc::new(()));
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times[0], SimTime::from_micros(1100));
        assert_eq!(times[1], SimTime::from_micros(2100));
    }

    #[test]
    fn down_node_drops_messages() {
        let (sim, net, a, b) = setup();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        net.bind(&b, move |_, _| g.set(true));
        net.set_down(&sim, &b);
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        assert!(!got.get());
        net.set_up(&sim, &b);
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn crash_drops_in_flight_messages() {
        let (sim, net, a, b) = setup();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        net.bind(&b, move |_, _| g.set(true));
        net.send(&sim, &a, &b, 10, Arc::new(()));
        // Crash b while the message is in flight.
        let net2 = net.clone();
        let b2 = b.clone();
        sim.schedule_in(Duration::from_micros(1), move |sim| net2.set_down(sim, &b2));
        sim.run();
        assert!(!got.get());
    }

    #[test]
    fn partition_and_heal() {
        let (sim, net, a, b) = setup();
        let count = Rc::new(Cell::new(0));
        let c = count.clone();
        net.bind(&b, move |_, _| c.set(c.get() + 1));
        net.partition(&a, &b);
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        assert_eq!(count.get(), 0);
        net.heal();
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn loss_probability_drops_some() {
        let sim = Sim::new(9);
        let net = Network::new(NetConfig {
            loss_probability: 0.5,
            jitter: Duration::ZERO,
            ..NetConfig::default()
        });
        let a = Addr::new("a");
        let b = Addr::new("b");
        net.register(&a);
        net.register(&b);
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        net.bind(&b, move |_, _| c.set(c.get() + 1));
        for _ in 0..200 {
            net.send(&sim, &a, &b, 10, Arc::new(()));
        }
        sim.run();
        let got = count.get();
        assert!(got > 60 && got < 140, "got {got} of 200 at 50% loss");
    }

    #[test]
    fn unbound_node_counts_drop() {
        let (sim, net, a, b) = setup();
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        let (sent, delivered, dropped) = net.stats();
        assert_eq!((sent, delivered, dropped), (1, 0, 1));
    }

    #[test]
    fn publish_metrics_exports_gauges() {
        let (sim, net, a, b) = setup();
        net.bind(&b, |_, _| {});
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        net.publish_metrics(&sim);
        net.publish_metrics(&sim); // idempotent re-publish
        let m = sim.metrics_snapshot();
        assert_eq!(m.gauge("net", "net.sent"), Some(1.0));
        assert_eq!(m.gauge("net", "net.delivered"), Some(1.0));
        assert_eq!(m.gauge("net", "net.dropped"), Some(0.0));
    }

    #[test]
    fn addr_semantics() {
        let a = Addr::new("host-1");
        assert_eq!(a.to_string(), "host-1");
        assert_eq!(a, Addr::from("host-1"));
        assert_eq!(a.as_str(), "host-1");
    }

    #[test]
    fn shard_routing_buffers_and_delivers_cross_world_sends() {
        // World 0 hosts "a", world 1 hosts "b"; a cross-world send must be
        // buffered (not locally scheduled), carry a delivery instant one
        // base-latency out, and be deliverable on the destination world
        // with destination-side counters.
        let mut placement = FastMap::default();
        placement.insert(Addr::new("a"), 0usize);
        placement.insert(Addr::new("b"), 1usize);
        let placement = Arc::new(placement);

        let cfg = NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        };
        let sim0 = Sim::new(1);
        let net0 = Network::new(cfg.clone());
        net0.enable_shard_routing(0, placement.clone());
        let a = Addr::new("a");
        let b = Addr::new("b");
        net0.register(&a);

        let sim1 = Sim::new(2);
        let net1 = Network::new(cfg);
        net1.enable_shard_routing(1, placement);
        net1.register(&b);
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        net1.bind(&b, move |_, env| {
            assert_eq!(*env.payload.downcast_ref::<u32>().expect("u32"), 7);
            g.set(true);
        });

        net0.send(&sim0, &a, &b, 1000, Arc::new(7u32));
        sim0.run();
        assert!(!got.get(), "cross-world send must not deliver locally");
        let outbox = net0.drain_outbox();
        assert_eq!(outbox.len(), 1);
        let r = &outbox[0];
        assert_eq!((r.src_world, r.dst_world, r.seq), (0, 1, 0));
        // 1000 B / 1.25 GB/s = 0.8 us serialization + 100 us latency.
        assert_eq!(r.deliver_at, SimTime::from_nanos(800 + 100_000));
        assert_eq!(net0.stats().0, 1, "sent counted at source");

        let (r,) = match outbox.into_iter().next() {
            Some(r) => (r,),
            None => unreachable!(),
        };
        net1.deliver_remote(&sim1, r);
        sim1.run();
        assert!(got.get());
        let (_, delivered, dropped) = net1.stats();
        assert_eq!(
            (delivered, dropped),
            (1, 0),
            "delivery counted at destination"
        );
        assert!(net0.drain_outbox().is_empty(), "outbox drained");
    }

    #[test]
    fn traffic_matrix_records_cross_world_sends_with_slack() {
        let mut placement = FastMap::default();
        placement.insert(Addr::new("a"), 0usize);
        placement.insert(Addr::new("b"), 1usize);
        let placement = Arc::new(placement);
        let sim = Sim::new(3);
        let net = Network::new(NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        });
        net.enable_shard_routing(0, placement);
        let a = Addr::new("a");
        let b = Addr::new("b");
        net.register(&a);
        let matrix = Arc::new(TrafficMatrix::new(2));
        net.set_traffic_matrix(matrix.clone());
        // 1000 B / 1.25 GB/s = 800 ns serialization; zero jitter, so the
        // slack over the base latency is exactly the serialization time.
        net.send(&sim, &a, &b, 1000, Arc::new(7u32));
        // Local sends (none here) and drops must not be recorded.
        let snap = matrix.snapshot();
        assert_eq!(snap.total_messages(), 1);
        let cell = snap.busiest().expect("one cell");
        assert_eq!((cell.src, cell.dst), (0, 1));
        assert_eq!(cell.min_slack_ns, 800);
    }

    fn lookahead_setup(reachable: bool) -> (Sim, Network, Addr, Addr) {
        let mut placement = FastMap::default();
        placement.insert(Addr::new("a"), 0usize);
        placement.insert(Addr::new("b"), 1usize);
        let sim = Sim::new(4);
        let cfg = NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        };
        let net = Network::new(cfg.clone());
        let matrix = if reachable {
            LookaheadMatrix::uniform(2, cfg.base_latency)
        } else {
            LookaheadMatrix::disconnected(2)
        };
        net.enable_shard_routing_with_lookahead(0, Arc::new(placement), Arc::new(matrix));
        let a = Addr::new("a");
        let b = Addr::new("b");
        net.register(&a);
        (sim, net, a, b)
    }

    #[test]
    fn lookahead_matrix_admits_reachable_cross_world_sends() {
        let (sim, net, a, b) = lookahead_setup(true);
        net.send(&sim, &a, &b, 1000, Arc::new(7u32));
        let mut out = Vec::new();
        net.drain_outbox_into(&mut out);
        assert_eq!(out.len(), 1);
        // The computed latency (serialization + base latency) clears the
        // matrix's minimum (= base latency) with the serialization slack.
        assert!(out[0].deliver_at.duration_since(sim.now()) >= NetConfig::default().base_latency);
        out.clear();
        net.drain_outbox_into(&mut out);
        assert!(out.is_empty(), "outbox drained");
    }

    #[test]
    #[should_panic(expected = "cannot talk")]
    fn lookahead_matrix_rejects_unreachable_cross_world_sends() {
        let (sim, net, a, b) = lookahead_setup(false);
        net.send(&sim, &a, &b, 1000, Arc::new(7u32));
    }

    #[test]
    fn local_sends_unaffected_by_shard_routing() {
        let (sim, net, a, b) = setup();
        let mut placement = FastMap::default();
        placement.insert(a.clone(), 0usize);
        placement.insert(b.clone(), 0usize);
        net.enable_shard_routing(0, Arc::new(placement));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        net.bind(&b, move |_, _| g.set(true));
        net.send(&sim, &a, &b, 10, Arc::new(()));
        sim.run();
        assert!(got.get());
        assert!(net.drain_outbox().is_empty());
    }
}
