//! # ustore-net — simulated network, RPC and iSCSI-style block protocol
//!
//! The data-center substrate UStore assumes already exists: a [`Network`]
//! of hosts with NIC serialization and failure injection, a typed
//! request/response [`RpcNode`] layer with timeouts, the [`BlockDevice`]
//! abstraction UStore exports (§IV-D), and the iSCSI-style protocol
//! ([`IscsiServer`] / [`IscsiSession`]) EndPoints use to expose disks
//! (§IV-B).
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use std::time::Duration;
//! use ustore_sim::Sim;
//! use ustore_net::{Addr, IscsiServer, IscsiSession, MemDevice, NetConfig, Network, RpcNode};
//!
//! let sim = Sim::new(0);
//! let net = Network::new(NetConfig::default());
//! let server = IscsiServer::new(RpcNode::new(&net, Addr::new("ep0")));
//! server.expose("lun0", Rc::new(MemDevice::new(4096, Duration::ZERO)));
//! let client = RpcNode::new(&net, Addr::new("c0"));
//! IscsiSession::login(&sim, &client, &Addr::new("ep0"), "lun0",
//!     Duration::from_secs(1), |_, sess| {
//!         assert_eq!(sess.expect("login").capacity(), 4096);
//!     });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockdev;
pub mod iscsi;
pub mod network;
pub mod rpc;

pub use blockdev::{BlockDevice, BlockError, MemDevice, Partition, ReadCb, WriteCb};
pub use iscsi::{IscsiError, IscsiServer, IscsiSession};
pub use network::{Addr, Envelope, NetConfig, Network, Payload};
pub use rpc::{Responder, RpcError, RpcNode};
