//! The block-device abstraction exported over the network.
//!
//! UStore deliberately provides "the most basic storage interface, i.e. the
//! block device interface" (§IV-D). [`BlockDevice`] is that interface:
//! asynchronous reads and writes against a byte-addressed device. The core
//! crate implements it on top of fabric-attached disks; [`MemDevice`] is a
//! RAM-backed implementation for tests; [`Partition`] carves an allocated
//! window out of a bigger device ("a disk, a disk partition or a big file
//! in a disk", §IV-B).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use ustore_sim::Sim;

/// Errors surfaced by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Access beyond the device's capacity.
    OutOfRange,
    /// The backing hardware failed or is unreachable.
    Unavailable(String),
    /// Unrecoverable medium error.
    Io(String),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange => write!(f, "access beyond device capacity"),
            BlockError::Unavailable(why) => write!(f, "device unavailable: {why}"),
            BlockError::Io(why) => write!(f, "io error: {why}"),
        }
    }
}

impl std::error::Error for BlockError {}

/// Completion callback for reads.
pub type ReadCb = Box<dyn FnOnce(&Sim, Result<Vec<u8>, BlockError>)>;
/// Completion callback for writes.
pub type WriteCb = Box<dyn FnOnce(&Sim, Result<(), BlockError>)>;

/// An asynchronous, byte-addressed block device.
pub trait BlockDevice {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;
    /// Reads `len` bytes at `offset`.
    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: ReadCb);
    /// Writes `data` at `offset`.
    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: WriteCb);
}

/// A RAM-backed block device with a fixed service latency (test double).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ustore_sim::Sim;
/// use ustore_net::{BlockDevice, MemDevice};
///
/// let sim = Sim::new(0);
/// let dev = MemDevice::new(1 << 20, Duration::from_micros(50));
/// dev.write(&sim, 0, vec![9u8; 16], Box::new(|_, r| r.expect("write")));
/// dev.read(&sim, 0, 16, Box::new(|_, r| {
///     assert_eq!(r.expect("read"), vec![9u8; 16]);
/// }));
/// sim.run();
/// ```
#[derive(Clone)]
pub struct MemDevice {
    data: Rc<RefCell<Vec<u8>>>,
    latency: Duration,
}

impl fmt::Debug for MemDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemDevice")
            .field("capacity", &self.data.borrow().len())
            .finish()
    }
}

impl MemDevice {
    /// Creates a zero-filled device of `capacity` bytes.
    pub fn new(capacity: usize, latency: Duration) -> Self {
        MemDevice {
            data: Rc::new(RefCell::new(vec![0u8; capacity])),
            latency,
        }
    }
}

impl BlockDevice for MemDevice {
    fn capacity(&self) -> u64 {
        self.data.borrow().len() as u64
    }

    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: ReadCb) {
        let this = self.clone();
        sim.schedule_in(self.latency, move |sim| {
            let result = {
                let data = this.data.borrow();
                let end = offset.saturating_add(len);
                if end > data.len() as u64 {
                    Err(BlockError::OutOfRange)
                } else {
                    Ok(data[offset as usize..end as usize].to_vec())
                }
            };
            cb(sim, result);
        });
    }

    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: WriteCb) {
        let this = self.clone();
        sim.schedule_in(self.latency, move |sim| {
            let result = {
                let mut store = this.data.borrow_mut();
                let end = offset.saturating_add(data.len() as u64);
                if end > store.len() as u64 {
                    Err(BlockError::OutOfRange)
                } else {
                    store[offset as usize..end as usize].copy_from_slice(&data);
                    Ok(())
                }
            };
            cb(sim, result);
        });
    }
}

/// A window into another block device (an allocated space).
pub struct Partition {
    inner: Rc<dyn BlockDevice>,
    start: u64,
    len: u64,
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Partition")
            .field("start", &self.start)
            .field("len", &self.len)
            .finish()
    }
}

impl Partition {
    /// Creates a window of `len` bytes starting at `start` on `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the inner device's capacity.
    pub fn new(inner: Rc<dyn BlockDevice>, start: u64, len: u64) -> Self {
        assert!(
            start.saturating_add(len) <= inner.capacity(),
            "partition window exceeds device capacity"
        );
        Partition { inner, start, len }
    }
}

impl BlockDevice for Partition {
    fn capacity(&self) -> u64 {
        self.len
    }

    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: ReadCb) {
        if offset.saturating_add(len) > self.len {
            sim.schedule_now(move |sim| cb(sim, Err(BlockError::OutOfRange)));
            return;
        }
        self.inner.read(sim, self.start + offset, len, cb);
    }

    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: WriteCb) {
        if offset.saturating_add(data.len() as u64) > self.len {
            sim.schedule_now(move |sim| cb(sim, Err(BlockError::OutOfRange)));
            return;
        }
        self.inner.write(sim, self.start + offset, data, cb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn mem_device_roundtrip_and_latency() {
        let sim = Sim::new(0);
        let dev = MemDevice::new(1024, Duration::from_micros(50));
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        dev.write(&sim, 10, vec![1, 2, 3], Box::new(|_, r| r.expect("write")));
        dev.read(
            &sim,
            10,
            3,
            Box::new(move |sim, r| {
                assert_eq!(r.expect("read"), vec![1, 2, 3]);
                assert_eq!(sim.now().as_nanos(), 50_000);
                d.set(true);
            }),
        );
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn mem_device_out_of_range() {
        let sim = Sim::new(0);
        let dev = MemDevice::new(100, Duration::ZERO);
        dev.read(
            &sim,
            90,
            20,
            Box::new(|_, r| {
                assert_eq!(r.unwrap_err(), BlockError::OutOfRange);
            }),
        );
        dev.write(
            &sim,
            99,
            vec![0; 2],
            Box::new(|_, r| {
                assert_eq!(r.unwrap_err(), BlockError::OutOfRange);
            }),
        );
        sim.run();
    }

    #[test]
    fn partition_translates_and_bounds() {
        let sim = Sim::new(0);
        let base = Rc::new(MemDevice::new(1000, Duration::ZERO));
        let part = Partition::new(base.clone(), 100, 50);
        assert_eq!(part.capacity(), 50);
        part.write(&sim, 0, vec![7u8; 10], Box::new(|_, r| r.expect("write")));
        sim.run();
        // Visible at offset 100 of the base device.
        base.read(
            &sim,
            100,
            10,
            Box::new(|_, r| {
                assert_eq!(r.expect("read"), vec![7u8; 10]);
            }),
        );
        part.read(
            &sim,
            45,
            10,
            Box::new(|_, r| {
                assert_eq!(r.unwrap_err(), BlockError::OutOfRange);
            }),
        );
        sim.run();
    }

    #[test]
    #[should_panic(expected = "exceeds device capacity")]
    fn oversized_partition_panics() {
        let base = Rc::new(MemDevice::new(100, Duration::ZERO));
        let _ = Partition::new(base, 50, 51);
    }
}
