//! iSCSI-style network block protocol.
//!
//! The paper's EndPoints "expose the disks onto the network through a
//! network storage protocol … we choose iSCSI" (§IV-B). This module models
//! the protocol at the message level: a [`IscsiServer`] hosts named targets
//! backed by [`BlockDevice`]s; an [`IscsiSession`] is an initiator-side
//! login through which clients issue reads and writes. Timing comes out of
//! the RPC round trips plus the backing device's service time, which is
//! what Figure 6's parts 2–3 measure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_sim::Sim;

use crate::blockdev::{BlockDevice, BlockError};
use crate::network::Addr;
use crate::rpc::{RpcError, RpcNode};

/// iSCSI-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IscsiError {
    /// Transport failure (timeout, dead peer).
    Rpc(RpcError),
    /// The server has no target with the requested name.
    NoSuchTarget,
    /// The backing device failed the operation.
    Block(BlockError),
}

impl fmt::Display for IscsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IscsiError::Rpc(e) => write!(f, "iscsi transport: {e}"),
            IscsiError::NoSuchTarget => write!(f, "no such iscsi target"),
            IscsiError::Block(e) => write!(f, "iscsi target io: {e}"),
        }
    }
}

impl std::error::Error for IscsiError {}

impl From<RpcError> for IscsiError {
    fn from(e: RpcError) -> Self {
        IscsiError::Rpc(e)
    }
}

struct LoginReq {
    target: String,
}
type LoginResp = Result<u64, IscsiError>; // capacity

struct ReadReq {
    target: String,
    offset: u64,
    len: u64,
}
type ReadResp = Result<Vec<u8>, IscsiError>;

struct WriteReq {
    target: String,
    offset: u64,
    data: Vec<u8>,
}
type WriteResp = Result<(), IscsiError>;

/// Serves named block targets at one network address.
pub struct IscsiServer {
    rpc: RpcNode,
    targets: Rc<RefCell<HashMap<String, Rc<dyn BlockDevice>>>>,
}

impl fmt::Debug for IscsiServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IscsiServer")
            .field("addr", self.rpc.addr())
            .field("targets", &self.targets.borrow().len())
            .finish()
    }
}

impl IscsiServer {
    /// Creates a target server on an existing RPC endpoint.
    pub fn new(rpc: RpcNode) -> Self {
        let targets: Rc<RefCell<HashMap<String, Rc<dyn BlockDevice>>>> =
            Rc::new(RefCell::new(HashMap::new()));

        let t = targets.clone();
        let comp = rpc.addr().to_string();
        rpc.serve("iscsi.login", move |sim, req, responder| {
            let req: &LoginReq = req.downcast_ref().expect("LoginReq");
            sim.count(&comp, "iscsi.logins", 1);
            let resp: LoginResp = match t.borrow().get(&req.target) {
                Some(dev) => Ok(dev.capacity()),
                None => {
                    sim.count(&comp, "iscsi.login_failures", 1);
                    Err(IscsiError::NoSuchTarget)
                }
            };
            responder.reply(sim, Arc::new(resp), 64);
        });

        let t = targets.clone();
        let comp = rpc.addr().to_string();
        rpc.serve("iscsi.read", move |sim, req, responder| {
            let req: &ReadReq = req.downcast_ref().expect("ReadReq");
            sim.count(&comp, "iscsi.reads", 1);
            let dev = t.borrow().get(&req.target).cloned();
            match dev {
                None => {
                    responder.reply(sim, Arc::new(Err(IscsiError::NoSuchTarget) as ReadResp), 16)
                }
                Some(dev) => {
                    let comp = comp.clone();
                    dev.read(
                        sim,
                        req.offset,
                        req.len,
                        Box::new(move |sim, res| {
                            let bytes = res.as_ref().map_or(16, |d| d.len() as u64 + 16);
                            if let Ok(d) = &res {
                                sim.count(&comp, "iscsi.read_bytes", d.len() as u64);
                            }
                            let resp: ReadResp = res.map_err(IscsiError::Block);
                            responder.reply(sim, Arc::new(resp), bytes);
                        }),
                    );
                }
            }
        });

        let t = targets.clone();
        let comp = rpc.addr().to_string();
        rpc.serve("iscsi.write", move |sim, req, responder| {
            let req: &WriteReq = req.downcast_ref().expect("WriteReq");
            sim.count(&comp, "iscsi.writes", 1);
            let dev = t.borrow().get(&req.target).cloned();
            match dev {
                None => responder.reply(
                    sim,
                    Arc::new(Err(IscsiError::NoSuchTarget) as WriteResp),
                    16,
                ),
                Some(dev) => {
                    let len = req.data.len() as u64;
                    let comp = comp.clone();
                    dev.write(
                        sim,
                        req.offset,
                        req.data.clone(),
                        Box::new(move |sim, res| {
                            if res.is_ok() {
                                sim.count(&comp, "iscsi.write_bytes", len);
                            }
                            let resp: WriteResp = res.map_err(IscsiError::Block);
                            responder.reply(sim, Arc::new(resp), 16);
                        }),
                    );
                }
            }
        });

        IscsiServer { rpc, targets }
    }

    /// The server's network address.
    pub fn addr(&self) -> &Addr {
        self.rpc.addr()
    }

    /// Exposes `dev` as target `name` (replaces an existing target).
    pub fn expose(&self, name: impl Into<String>, dev: Rc<dyn BlockDevice>) {
        self.targets.borrow_mut().insert(name.into(), dev);
    }

    /// Withdraws a target; subsequent requests fail with
    /// [`IscsiError::NoSuchTarget`]. Returns whether it existed.
    pub fn unexpose(&self, name: &str) -> bool {
        self.targets.borrow_mut().remove(name).is_some()
    }

    /// Names of currently exposed targets, sorted.
    pub fn target_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.targets.borrow().keys().cloned().collect();
        v.sort();
        v
    }
}

/// An initiator-side session to one remote target.
#[derive(Clone)]
pub struct IscsiSession {
    rpc: RpcNode,
    server: Addr,
    target: String,
    capacity: u64,
    timeout: Duration,
}

impl fmt::Debug for IscsiSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IscsiSession")
            .field("server", &self.server)
            .field("target", &self.target)
            .finish()
    }
}

impl IscsiSession {
    /// Logs in to `target` at `server`, producing a session on success.
    ///
    /// The login is one RPC round trip; a real initiator performs a couple
    /// more (discovery, capacity), folded into the ClientLib's mount time.
    pub fn login(
        sim: &Sim,
        rpc: &RpcNode,
        server: &Addr,
        target: &str,
        timeout: Duration,
        cb: impl FnOnce(&Sim, Result<IscsiSession, IscsiError>) + 'static,
    ) {
        let rpc2 = rpc.clone();
        let server2 = server.clone();
        let target2 = target.to_owned();
        rpc.call::<LoginResp>(
            sim,
            server,
            "iscsi.login",
            Arc::new(LoginReq {
                target: target.to_owned(),
            }),
            64,
            timeout,
            move |sim, resp| {
                let session = match resp {
                    Err(e) => Err(IscsiError::Rpc(e)),
                    Ok(r) => match &*r {
                        Ok(capacity) => Ok(IscsiSession {
                            rpc: rpc2,
                            server: server2,
                            target: target2,
                            capacity: *capacity,
                            timeout,
                        }),
                        Err(e) => Err(e.clone()),
                    },
                };
                cb(sim, session);
            },
        );
    }

    /// Remote device capacity reported at login.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Target name.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Server address.
    pub fn server(&self) -> &Addr {
        &self.server
    }

    /// Reads `len` bytes at `offset` from the remote target.
    pub fn read(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, IscsiError>) + 'static,
    ) {
        self.rpc.call::<ReadResp>(
            sim,
            &self.server,
            "iscsi.read",
            Arc::new(ReadReq {
                target: self.target.clone(),
                offset,
                len,
            }),
            32,
            self.timeout,
            move |sim, resp| {
                let r = match resp {
                    Err(e) => Err(IscsiError::Rpc(e)),
                    Ok(r) => (*r).clone(),
                };
                cb(sim, r);
            },
        );
    }

    /// Writes `data` at `offset` on the remote target.
    pub fn write(
        &self,
        sim: &Sim,
        offset: u64,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, Result<(), IscsiError>) + 'static,
    ) {
        let bytes = data.len() as u64 + 32;
        self.rpc.call::<WriteResp>(
            sim,
            &self.server,
            "iscsi.write",
            Arc::new(WriteReq {
                target: self.target.clone(),
                offset,
                data,
            }),
            bytes,
            self.timeout,
            move |sim, resp| {
                let r = match resp {
                    Err(e) => Err(IscsiError::Rpc(e)),
                    Ok(r) => (*r).clone(),
                };
                cb(sim, r);
            },
        );
    }
}

/// Implements [`BlockDevice`] over a session, so remote UStore storage can
/// be used anywhere a local device is expected (§IV-D: "access UStore just
/// like accessing local disks").
impl BlockDevice for IscsiSession {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: crate::blockdev::ReadCb) {
        IscsiSession::read(self, sim, offset, len, move |sim, r| {
            cb(sim, r.map_err(|e| BlockError::Unavailable(e.to_string())));
        });
    }

    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: crate::blockdev::WriteCb) {
        IscsiSession::write(self, sim, offset, data, move |sim, r| {
            cb(sim, r.map_err(|e| BlockError::Unavailable(e.to_string())));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::MemDevice;
    use crate::network::{NetConfig, Network};
    use std::cell::Cell;

    fn setup() -> (Sim, Network, IscsiServer, RpcNode) {
        let sim = Sim::new(4);
        let net = Network::new(NetConfig {
            jitter: Duration::ZERO,
            ..NetConfig::default()
        });
        let server_rpc = RpcNode::new(&net, Addr::new("endpoint-0"));
        let server = IscsiServer::new(server_rpc);
        let client = RpcNode::new(&net, Addr::new("client-0"));
        (sim, net, server, client)
    }

    fn timeout() -> Duration {
        Duration::from_secs(5)
    }

    #[test]
    fn login_read_write_roundtrip() {
        let (sim, _net, server, client) = setup();
        server.expose(
            "unit0/disk3/space1",
            Rc::new(MemDevice::new(1 << 20, Duration::ZERO)),
        );
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "unit0/disk3/space1",
            timeout(),
            move |sim, sess| {
                let sess = sess.expect("login");
                assert_eq!(sess.capacity(), 1 << 20);
                let s2 = sess.clone();
                sess.write(sim, 0, b"cold data".to_vec(), move |sim, r| {
                    r.expect("write");
                    let d = d.clone();
                    s2.read(sim, 0, 9, move |_, r| {
                        assert_eq!(r.expect("read"), b"cold data".to_vec());
                        d.set(true);
                    });
                });
            },
        );
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn login_to_missing_target_fails() {
        let (sim, _net, _server, client) = setup();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "nope",
            timeout(),
            move |_, sess| {
                assert_eq!(sess.unwrap_err(), IscsiError::NoSuchTarget);
                g.set(true);
            },
        );
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn unexpose_breaks_session() {
        let (sim, _net, server, client) = setup();
        server.expose("t", Rc::new(MemDevice::new(4096, Duration::ZERO)));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        let server2 = Rc::new(server);
        let s_ref = server2.clone();
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "t",
            timeout(),
            move |sim, sess| {
                let sess = sess.expect("login");
                assert!(s_ref.unexpose("t"));
                sess.read(sim, 0, 16, move |_, r| {
                    assert_eq!(r.unwrap_err(), IscsiError::NoSuchTarget);
                    g.set(true);
                });
            },
        );
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn dead_server_times_out() {
        let (sim, net, server, client) = setup();
        server.expose("t", Rc::new(MemDevice::new(4096, Duration::ZERO)));
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "t",
            timeout(),
            move |sim, sess| {
                let sess = sess.expect("login");
                sess.read(sim, 0, 16, move |_, r| {
                    assert_eq!(r.unwrap_err(), IscsiError::Rpc(RpcError::Timeout));
                    g.set(true);
                });
            },
        );
        // Kill the endpoint right away; the read will time out.
        let addr = Addr::new("endpoint-0");
        sim.schedule_in(Duration::from_micros(300), move |sim| {
            net.set_down(sim, &addr);
        });
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn out_of_range_maps_to_block_error() {
        let (sim, _net, server, client) = setup();
        server.expose("t", Rc::new(MemDevice::new(100, Duration::ZERO)));
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "t",
            timeout(),
            move |sim, sess| {
                let sess = sess.expect("login");
                sess.read(sim, 90, 20, |_, r| {
                    assert_eq!(r.unwrap_err(), IscsiError::Block(BlockError::OutOfRange));
                });
            },
        );
        sim.run();
    }

    #[test]
    fn target_names_sorted() {
        let (_sim, _net, server, _client) = setup();
        server.expose("b", Rc::new(MemDevice::new(1, Duration::ZERO)));
        server.expose("a", Rc::new(MemDevice::new(1, Duration::ZERO)));
        assert_eq!(
            server.target_names(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn session_as_block_device() {
        let (sim, _net, server, client) = setup();
        server.expose("t", Rc::new(MemDevice::new(4096, Duration::ZERO)));
        IscsiSession::login(
            &sim,
            &client,
            &Addr::new("endpoint-0"),
            "t",
            timeout(),
            move |sim, sess| {
                let dev: Rc<dyn BlockDevice> = Rc::new(sess.expect("login"));
                let dev2 = dev.clone();
                dev.write(
                    sim,
                    0,
                    vec![5u8; 8],
                    Box::new(move |sim, r| {
                        r.expect("write");
                        dev2.read(
                            sim,
                            0,
                            8,
                            Box::new(|_, r| {
                                assert_eq!(r.expect("read"), vec![5u8; 8]);
                            }),
                        );
                    }),
                );
            },
        );
        sim.run();
    }
}
