//! A simple archival backup service — the second kind of upper-layer
//! workload the paper motivates ("file system backups and system logs",
//! §I): large sequential batches written on a schedule, rarely restored,
//! with integrity verification on restore.
//!
//! The service appends checksummed snapshots to any [`BlockDevice`]
//! (a mounted UStore space in the examples), keeps a catalog, and can
//! spin the underlying disks down between backup windows through the
//! ClientLib's power API.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use ustore_net::{BlockDevice, BlockError};
use ustore_sim::{Sim, SimTime};

/// FNV-1a 64-bit checksum (self-contained; good enough for integrity
/// verification in the simulation).
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Catalog entry for one stored snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Snapshot label (e.g. `"2015-03-01-full"`).
    pub label: String,
    /// Byte offset on the device.
    pub offset: u64,
    /// Snapshot length.
    pub len: u64,
    /// Integrity checksum.
    pub checksum: u64,
    /// When the snapshot finished writing.
    pub written_at: SimTime,
}

/// Backup failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// Device IO failed.
    Io(BlockError),
    /// The device has no room for the snapshot.
    OutOfSpace,
    /// Unknown snapshot label.
    NoSuchSnapshot,
    /// Restore read back different bytes than were written.
    CorruptSnapshot {
        /// Expected checksum.
        expected: u64,
        /// Checksum of the bytes read back.
        actual: u64,
    },
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::Io(e) => write!(f, "io: {e}"),
            BackupError::OutOfSpace => write!(f, "archive device is full"),
            BackupError::NoSuchSnapshot => write!(f, "no such snapshot"),
            BackupError::CorruptSnapshot { expected, actual } => {
                write!(
                    f,
                    "corrupt snapshot: expected {expected:016x}, got {actual:016x}"
                )
            }
        }
    }
}

impl std::error::Error for BackupError {}

struct Archive {
    device: Rc<dyn BlockDevice>,
    next_offset: u64,
    catalog: Vec<SnapshotMeta>,
    chunk_bytes: u64,
}

/// The backup service over one archive device.
#[derive(Clone)]
pub struct BackupService {
    inner: Rc<RefCell<Archive>>,
}

impl fmt::Debug for BackupService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.inner.borrow();
        f.debug_struct("BackupService")
            .field("snapshots", &a.catalog.len())
            .field("used", &a.next_offset)
            .finish()
    }
}

impl BackupService {
    /// Creates a service writing 4 MiB chunks to `device`.
    pub fn new(device: Rc<dyn BlockDevice>) -> Self {
        BackupService {
            inner: Rc::new(RefCell::new(Archive {
                device,
                next_offset: 0,
                catalog: Vec::new(),
                chunk_bytes: 4 << 20,
            })),
        }
    }

    /// The catalog, oldest first.
    pub fn catalog(&self) -> Vec<SnapshotMeta> {
        self.inner.borrow().catalog.clone()
    }

    /// Bytes consumed on the archive device.
    pub fn used_bytes(&self) -> u64 {
        self.inner.borrow().next_offset
    }

    /// Streams `data` to the archive as snapshot `label` (sequential
    /// chunked writes — the archival access pattern).
    pub fn backup(
        &self,
        sim: &Sim,
        label: impl Into<String>,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, Result<SnapshotMeta, BackupError>) + 'static,
    ) {
        let label = label.into();
        let (offset, chunk) = {
            let mut a = self.inner.borrow_mut();
            let len = data.len() as u64;
            if a.next_offset + len > a.device.capacity() {
                drop(a);
                sim.schedule_now(move |sim| cb(sim, Err(BackupError::OutOfSpace)));
                return;
            }
            let offset = a.next_offset;
            a.next_offset += len;
            (offset, a.chunk_bytes as usize)
        };
        let sum = checksum(&data);
        let len = data.len() as u64;
        let this = self.clone();
        self.write_chunks(
            sim,
            offset,
            data,
            0,
            chunk,
            Box::new(move |sim, r| match r {
                Err(e) => cb(sim, Err(e)),
                Ok(()) => {
                    let meta = SnapshotMeta {
                        label,
                        offset,
                        len,
                        checksum: sum,
                        written_at: sim.now(),
                    };
                    this.inner.borrow_mut().catalog.push(meta.clone());
                    cb(sim, Ok(meta));
                }
            }),
        );
    }

    fn write_chunks(
        &self,
        sim: &Sim,
        base: u64,
        data: Vec<u8>,
        written: usize,
        chunk: usize,
        cb: Box<dyn FnOnce(&Sim, Result<(), BackupError>)>,
    ) {
        if written >= data.len() {
            cb(sim, Ok(()));
            return;
        }
        let end = (written + chunk).min(data.len());
        let piece = data[written..end].to_vec();
        let device = self.inner.borrow().device.clone();
        let this = self.clone();
        device.write(
            sim,
            base + written as u64,
            piece,
            Box::new(move |sim, r| match r {
                Err(e) => cb(sim, Err(BackupError::Io(e))),
                Ok(()) => this.write_chunks(sim, base, data, end, chunk, cb),
            }),
        );
    }

    /// Restores snapshot `label`, verifying its checksum.
    pub fn restore(
        &self,
        sim: &Sim,
        label: &str,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, BackupError>) + 'static,
    ) {
        let meta = self
            .inner
            .borrow()
            .catalog
            .iter()
            .rev()
            .find(|m| m.label == label)
            .cloned();
        let Some(meta) = meta else {
            sim.schedule_now(move |sim| cb(sim, Err(BackupError::NoSuchSnapshot)));
            return;
        };
        let chunk = self.inner.borrow().chunk_bytes as usize;
        self.read_chunks(sim, meta, Vec::new(), chunk, Box::new(cb));
    }

    fn read_chunks(
        &self,
        sim: &Sim,
        meta: SnapshotMeta,
        mut acc: Vec<u8>,
        chunk: usize,
        cb: Box<dyn FnOnce(&Sim, Result<Vec<u8>, BackupError>)>,
    ) {
        if acc.len() as u64 >= meta.len {
            let actual = checksum(&acc);
            if actual != meta.checksum {
                cb(
                    sim,
                    Err(BackupError::CorruptSnapshot {
                        expected: meta.checksum,
                        actual,
                    }),
                );
            } else {
                cb(sim, Ok(acc));
            }
            return;
        }
        let start = meta.offset + acc.len() as u64;
        let want = ((meta.len - acc.len() as u64) as usize).min(chunk);
        let device = self.inner.borrow().device.clone();
        let this = self.clone();
        device.read(
            sim,
            start,
            want as u64,
            Box::new(move |sim, r| match r {
                Err(e) => cb(sim, Err(BackupError::Io(e))),
                Ok(mut data) => {
                    acc.append(&mut data);
                    this.read_chunks(sim, meta, acc, chunk, cb);
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::time::Duration;
    use ustore_net::MemDevice;
    use ustore_sim::Sim;

    fn service(capacity: usize) -> (Sim, BackupService) {
        let sim = Sim::new(91);
        let dev = Rc::new(MemDevice::new(capacity, Duration::from_micros(100)));
        (sim, BackupService::new(dev))
    }

    fn payload(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn backup_restore_roundtrip() {
        let (sim, svc) = service(64 << 20);
        let data = payload(10 << 20, 7);
        let expect = data.clone();
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let svc2 = svc.clone();
        svc.backup(&sim, "full-1", data, move |sim, r| {
            let meta = r.expect("backup");
            assert_eq!(meta.len, 10 << 20);
            svc2.restore(sim, "full-1", move |_, r| {
                assert_eq!(r.expect("restore"), expect);
                o.set(true);
            });
        });
        sim.run();
        assert!(ok.get());
        assert_eq!(svc.catalog().len(), 1);
        assert_eq!(svc.used_bytes(), 10 << 20);
    }

    #[test]
    fn snapshots_append_and_latest_wins() {
        let (sim, svc) = service(64 << 20);
        let first = payload(1 << 20, 1);
        let second = payload(1 << 20, 2);
        let expect = second.clone();
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let svc2 = svc.clone();
        svc.backup(&sim, "daily", first, move |sim, r| {
            r.expect("first");
            let svc3 = svc2.clone();
            svc2.backup(sim, "daily", second, move |sim, r| {
                r.expect("second");
                svc3.restore(sim, "daily", move |_, r| {
                    assert_eq!(r.expect("restore"), expect, "latest snapshot wins");
                    o.set(true);
                });
            });
        });
        sim.run();
        assert!(ok.get());
        assert_eq!(svc.catalog().len(), 2);
    }

    #[test]
    fn out_of_space_and_missing_label() {
        let (sim, svc) = service(1 << 20);
        svc.backup(&sim, "big", vec![0u8; 2 << 20], |_, r| {
            assert_eq!(r.unwrap_err(), BackupError::OutOfSpace);
        });
        svc.restore(&sim, "nope", |_, r| {
            assert_eq!(r.unwrap_err(), BackupError::NoSuchSnapshot);
        });
        sim.run();
    }

    #[test]
    fn corruption_is_detected() {
        let sim = Sim::new(92);
        let dev = Rc::new(MemDevice::new(8 << 20, Duration::ZERO));
        let svc = BackupService::new(dev.clone());
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        let svc2 = svc.clone();
        svc.backup(&sim, "s", payload(1 << 20, 3), move |sim, r| {
            let meta = r.expect("backup");
            // Flip a byte behind the service's back.
            dev.write(
                sim,
                meta.offset + 100,
                vec![0xFF],
                Box::new(move |sim, r| {
                    r.expect("tamper");
                    svc2.restore(sim, "s", move |_, r| {
                        assert!(matches!(
                            r.unwrap_err(),
                            BackupError::CorruptSnapshot { .. }
                        ));
                        g.set(true);
                    });
                }),
            );
        });
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"archival data");
        assert_eq!(a, checksum(b"archival data"));
        assert_ne!(a, checksum(b"archival datb"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
