//! Synthetic cold-data access traces.
//!
//! The paper characterizes cold data as "accessed rarely, but when
//! accessed, a user would expect the response ... in the range of
//! seconds" (§I) — think old emails and shared photos. No public trace of
//! such a workload exists (the substitution noted in DESIGN.md), so this
//! generator produces the standard synthetic equivalent: a large object
//! population with Zipf-skewed popularity, Poisson arrivals, and a
//! diurnal intensity profile.

use std::time::Duration;

use ustore_sim::{SimRng, SimTime, Zipf};

/// One access in a generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Object id (0 = most popular).
    pub object: usize,
    /// Whether this is a read (cold data is read-mostly).
    pub read: bool,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct objects.
    pub objects: usize,
    /// Zipf skew of object popularity (0 = uniform).
    pub skew: f64,
    /// Mean accesses per hour at peak intensity.
    pub peak_per_hour: f64,
    /// Ratio of off-peak to peak intensity (diurnal trough).
    pub trough_ratio: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            objects: 100_000,
            skew: 0.9,
            peak_per_hour: 600.0,
            trough_ratio: 0.2,
            read_fraction: 0.95,
        }
    }
}

/// Generates accesses covering `duration`, Poisson-thinned against a
/// sinusoidal diurnal intensity curve.
pub fn generate(config: &TraceConfig, duration: Duration, rng: &mut SimRng) -> Vec<TraceOp> {
    let zipf = Zipf::new(config.objects, config.skew);
    let peak_rate = config.peak_per_hour / 3600.0; // per second
    let mut ops = Vec::new();
    let mut t = 0.0f64;
    let end = duration.as_secs_f64();
    loop {
        // Homogeneous Poisson at the peak rate, then thin by the diurnal
        // intensity at the candidate instant.
        t += rng.exp(1.0 / peak_rate);
        if t >= end {
            break;
        }
        let day_phase = (t / 86_400.0) * std::f64::consts::TAU;
        let intensity =
            config.trough_ratio + (1.0 - config.trough_ratio) * 0.5 * (1.0 - day_phase.cos());
        if !rng.chance(intensity) {
            continue;
        }
        ops.push(TraceOp {
            at: SimTime::from_nanos((t * 1e9) as u64),
            object: zipf.sample(rng),
            read: rng.chance(config.read_fraction),
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xC01D)
    }

    #[test]
    fn trace_is_time_ordered_and_bounded() {
        let cfg = TraceConfig::default();
        let ops = generate(&cfg, Duration::from_secs(86_400), &mut rng());
        assert!(!ops.is_empty());
        for w in ops.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(ops.last().expect("nonempty").at < SimTime::from_secs(86_400));
        for op in &ops {
            assert!(op.object < cfg.objects);
        }
    }

    #[test]
    fn read_mostly() {
        let cfg = TraceConfig::default();
        let ops = generate(&cfg, Duration::from_secs(86_400), &mut rng());
        let reads = ops.iter().filter(|o| o.read).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.95).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = TraceConfig {
            objects: 1000,
            ..TraceConfig::default()
        };
        let ops = generate(&cfg, Duration::from_secs(7 * 86_400), &mut rng());
        let hot = ops.iter().filter(|o| o.object < 100).count();
        assert!(
            hot as f64 / ops.len() as f64 > 0.3,
            "top 10% of objects get a large share"
        );
    }

    #[test]
    fn diurnal_variation_visible() {
        let cfg = TraceConfig {
            trough_ratio: 0.1,
            ..TraceConfig::default()
        };
        let ops = generate(&cfg, Duration::from_secs(86_400), &mut rng());
        // Intensity is lowest around t=0 (cos phase) and highest at noon.
        let early = ops
            .iter()
            .filter(|o| o.at < SimTime::from_secs(3 * 3600))
            .count();
        let midday = ops
            .iter()
            .filter(|o| {
                o.at >= SimTime::from_secs(10 * 3600) && o.at < SimTime::from_secs(13 * 3600)
            })
            .count();
        assert!(midday > early * 2, "midday {midday} vs early {early}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = TraceConfig::default();
        let a = generate(&cfg, Duration::from_secs(3600), &mut rng());
        let b = generate(&cfg, Duration::from_secs(3600), &mut rng());
        assert_eq!(a, b);
    }
}
