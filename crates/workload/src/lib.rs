//! # ustore-workload — workload generation and upper-layer services
//!
//! Everything the paper's evaluation drives UStore with:
//!
//! - [`iometer`]: Iometer-style closed-loop workers (§VII-A parameter
//!   space: transfer size × read mix × access pattern).
//! - [`dfs`]: a miniature replicated DFS (the §VII-B Hadoop experiment's
//!   stand-in) with pipelined writes and replica-failover reads.
//! - [`backup`]: an archival snapshot service with integrity checking.
//! - [`traces`]: synthetic cold-data access traces (Zipf popularity,
//!   diurnal Poisson arrivals).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod dfs;
pub mod iometer;
pub mod traces;

pub use backup::{checksum, BackupError, BackupService, SnapshotMeta};
pub use dfs::{DataNode, DfsClient, DfsClientStats, DfsConfig, DfsError, NameNode};
pub use iometer::{
    blockdev_issuer, disk_issuer, fabric_issuer, AccessSpec, IoIssuer, Worker, WorkloadStats,
};
pub use traces::{generate, TraceConfig, TraceOp};
