//! A miniature replicated distributed file system (the paper's §VII-B
//! upper-layer service).
//!
//! The paper deploys Hadoop 1.2.1 over UStore disks — one namenode, three
//! datanodes, three replicas — and shows that a disk switch only causes
//! "error for several seconds, then it resumes", while reads fail over to
//! another replica without interruption. This module implements the
//! minimal HDFS-like machinery that experiment needs: a [`NameNode`]
//! tracking block locations, [`DataNode`]s storing blocks on any
//! [`BlockDevice`] (in the experiments: mounted UStore spaces), pipelined
//! replicated writes with retry, and replica-failover reads.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_net::{Addr, BlockDevice, RpcNode};
use ustore_sim::{Sim, SimTime, TraceLevel};

/// DFS tunables.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Block size (kept small to bound event counts; HDFS uses 64 MB).
    pub block_bytes: u64,
    /// Replication factor (the paper uses 3).
    pub replication: usize,
    /// RPC timeout for namenode and datanode calls.
    pub rpc_timeout: Duration,
    /// Backoff before retrying a failed block write.
    pub retry_backoff: Duration,
    /// Attempts per block before the client gives up.
    pub max_attempts: u32,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            block_bytes: 8 << 20,
            replication: 3,
            rpc_timeout: Duration::from_millis(1500),
            retry_backoff: Duration::from_millis(500),
            max_attempts: 40,
        }
    }
}

/// DFS-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The namenode is unreachable or refused.
    NameNode(String),
    /// A block could not be written within the retry budget.
    WriteFailed(String),
    /// A block could not be read from any replica.
    ReadFailed(String),
    /// Unknown file.
    NoSuchFile,
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NameNode(w) => write!(f, "namenode: {w}"),
            DfsError::WriteFailed(w) => write!(f, "block write failed: {w}"),
            DfsError::ReadFailed(w) => write!(f, "block read failed: {w}"),
            DfsError::NoSuchFile => write!(f, "no such file"),
        }
    }
}

impl std::error::Error for DfsError {}

// ---- Wire messages ---------------------------------------------------------

#[derive(Clone)]
struct RegisterReq {
    addr: Addr,
}

#[derive(Clone)]
struct CreateBlockReq {
    #[allow(dead_code)] // carried for namenode-side logging/debugging
    file: String,
}

#[derive(Debug, Clone)]
struct BlockPlan {
    id: u64,
    pipeline: Vec<Addr>,
}

type CreateBlockResp = Result<BlockPlan, String>;

#[derive(Clone)]
struct FinishBlockReq {
    file: String,
    id: u64,
    len: u64,
    replicas: Vec<Addr>,
}

#[derive(Clone)]
struct LocateReq {
    file: String,
}

#[derive(Debug, Clone)]
struct BlockMeta {
    id: u64,
    #[allow(dead_code)] // part of the metadata schema; used by tooling
    len: u64,
    replicas: Vec<Addr>,
}

type LocateResp = Result<Vec<BlockMeta>, DfsError>;

#[derive(Clone)]
struct WriteBlockReq {
    id: u64,
    data: Vec<u8>,
    rest: Vec<Addr>,
}

type WriteBlockResp = Result<(), String>;

#[derive(Clone)]
struct ReadBlockReq {
    id: u64,
}

type ReadBlockResp = Result<Vec<u8>, String>;

// ---- NameNode ----------------------------------------------------------------

struct NnState {
    config: DfsConfig,
    datanodes: Vec<Addr>,
    files: HashMap<String, Vec<BlockMeta>>,
    next_block: u64,
    rr: usize,
}

/// The metadata server: tracks datanodes and block locations.
#[derive(Clone)]
pub struct NameNode {
    rpc: RpcNode,
    inner: Rc<RefCell<NnState>>,
}

impl fmt::Debug for NameNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameNode")
            .field("addr", self.rpc.addr())
            .finish()
    }
}

impl NameNode {
    /// Starts a namenode on `rpc`.
    pub fn new(rpc: RpcNode, config: DfsConfig) -> NameNode {
        let nn = NameNode {
            rpc,
            inner: Rc::new(RefCell::new(NnState {
                config,
                datanodes: Vec::new(),
                files: HashMap::new(),
                next_block: 0,
                rr: 0,
            })),
        };
        let n = nn.clone();
        nn.rpc.serve("nn.register", move |sim, req, responder| {
            let req: &RegisterReq = req.downcast_ref().expect("RegisterReq");
            let mut s = n.inner.borrow_mut();
            if !s.datanodes.contains(&req.addr) {
                s.datanodes.push(req.addr.clone());
            }
            responder.reply(sim, Arc::new(()), 8);
        });
        let n = nn.clone();
        nn.rpc.serve("nn.create_block", move |sim, req, responder| {
            let _req: &CreateBlockReq = req.downcast_ref().expect("CreateBlockReq");
            let resp: CreateBlockResp = {
                let mut s = n.inner.borrow_mut();
                if s.datanodes.len() < s.config.replication {
                    Err(format!(
                        "need {} datanodes, have {}",
                        s.config.replication,
                        s.datanodes.len()
                    ))
                } else {
                    let id = s.next_block;
                    s.next_block += 1;
                    // Round-robin pipeline placement.
                    let n_dn = s.datanodes.len();
                    let start = s.rr;
                    s.rr = (s.rr + 1) % n_dn;
                    let pipeline: Vec<Addr> = (0..s.config.replication)
                        .map(|k| s.datanodes[(start + k) % n_dn].clone())
                        .collect();
                    Ok(BlockPlan { id, pipeline })
                }
            };
            responder.reply(sim, Arc::new(resp), 64);
        });
        let n = nn.clone();
        nn.rpc.serve("nn.finish_block", move |sim, req, responder| {
            let req: &FinishBlockReq = req.downcast_ref().expect("FinishBlockReq");
            n.inner
                .borrow_mut()
                .files
                .entry(req.file.clone())
                .or_default()
                .push(BlockMeta {
                    id: req.id,
                    len: req.len,
                    replicas: req.replicas.clone(),
                });
            responder.reply(sim, Arc::new(()), 8);
        });
        let n = nn.clone();
        nn.rpc.serve("nn.locate", move |sim, req, responder| {
            let req: &LocateReq = req.downcast_ref().expect("LocateReq");
            let resp: LocateResp = n
                .inner
                .borrow()
                .files
                .get(&req.file)
                .cloned()
                .ok_or(DfsError::NoSuchFile);
            responder.reply(sim, Arc::new(resp), 128);
        });
        nn
    }

    /// Registered datanode count.
    pub fn datanode_count(&self) -> usize {
        self.inner.borrow().datanodes.len()
    }

    /// Stored file names, sorted.
    pub fn files(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.borrow().files.keys().cloned().collect();
        v.sort();
        v
    }
}

// ---- DataNode ------------------------------------------------------------------

struct DnState {
    blocks: HashMap<u64, (u64, u64)>, // id -> (offset, len)
    next_offset: u64,
}

/// A block server over any [`BlockDevice`] (a mounted UStore space in the
/// experiments).
#[derive(Clone)]
pub struct DataNode {
    rpc: RpcNode,
    backing: Rc<dyn BlockDevice>,
    inner: Rc<RefCell<DnState>>,
    config: DfsConfig,
}

impl fmt::Debug for DataNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataNode")
            .field("addr", self.rpc.addr())
            .finish()
    }
}

impl DataNode {
    /// Starts a datanode on `rpc` storing blocks on `backing`, and
    /// registers it with the namenode at `namenode`.
    pub fn new(
        sim: &Sim,
        rpc: RpcNode,
        backing: Rc<dyn BlockDevice>,
        namenode: &Addr,
        config: DfsConfig,
    ) -> DataNode {
        let dn = DataNode {
            rpc,
            backing,
            inner: Rc::new(RefCell::new(DnState {
                blocks: HashMap::new(),
                next_offset: 0,
            })),
            config: config.clone(),
        };
        let d = dn.clone();
        dn.rpc.serve("dn.write_block", move |sim, req, responder| {
            let req: &WriteBlockReq = req.downcast_ref().expect("WriteBlockReq");
            d.handle_write(sim, req.clone(), responder);
        });
        let d = dn.clone();
        dn.rpc.serve("dn.read_block", move |sim, req, responder| {
            let req: &ReadBlockReq = req.downcast_ref().expect("ReadBlockReq");
            let slot = d.inner.borrow().blocks.get(&req.id).copied();
            match slot {
                None => responder.reply(
                    sim,
                    Arc::new(Err("no such block".to_owned()) as ReadBlockResp),
                    16,
                ),
                Some((offset, len)) => {
                    d.backing.read(
                        sim,
                        offset,
                        len,
                        Box::new(move |sim, r| {
                            let bytes = r.as_ref().map_or(16, |d| d.len() as u64 + 16);
                            let resp: ReadBlockResp = r.map_err(|e| e.to_string());
                            responder.reply(sim, Arc::new(resp), bytes);
                        }),
                    );
                }
            }
        });
        // Register with the namenode.
        let addr = dn.rpc.addr().clone();
        dn.rpc.call::<()>(
            sim,
            namenode,
            "nn.register",
            Arc::new(RegisterReq { addr }),
            32,
            config.rpc_timeout,
            |_, _| {},
        );
        dn
    }

    /// This datanode's address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    /// Number of blocks stored.
    pub fn block_count(&self) -> usize {
        self.inner.borrow().blocks.len()
    }

    fn handle_write(&self, sim: &Sim, req: WriteBlockReq, responder: ustore_net::Responder) {
        // Reserve space locally.
        let offset = {
            let mut s = self.inner.borrow_mut();
            let len = req.data.len() as u64;
            let offset = s.next_offset;
            if offset + len > self.backing.capacity() {
                drop(s);
                responder.reply(
                    sim,
                    Arc::new(Err("datanode out of space".to_owned()) as WriteBlockResp),
                    16,
                );
                return;
            }
            s.next_offset += len;
            s.blocks.insert(req.id, (offset, len));
            offset
        };
        // Pipeline: local write and downstream forwarding run in parallel;
        // ack only after both succeed (HDFS-style).
        let pending = Rc::new(RefCell::new((2u8, Ok::<(), String>(()), Some(responder))));
        let finish =
            |sim: &Sim,
             pending: &Rc<RefCell<(u8, Result<(), String>, Option<ustore_net::Responder>)>>,
             res: Result<(), String>| {
                let mut p = pending.borrow_mut();
                p.0 -= 1;
                if res.is_err() && p.1.is_ok() {
                    p.1 = res;
                }
                if p.0 == 0 {
                    let responder = p.2.take().expect("responder present");
                    let out = p.1.clone();
                    drop(p);
                    responder.reply(sim, Arc::new(out as WriteBlockResp), 16);
                }
            };
        let p1 = pending.clone();
        self.backing.write(
            sim,
            offset,
            req.data.clone(),
            Box::new(move |sim, r| {
                finish(sim, &p1, r.map_err(|e| e.to_string()));
            }),
        );
        if req.rest.is_empty() {
            finish(sim, &pending, Ok(()));
        } else {
            let next = req.rest[0].clone();
            let fwd = WriteBlockReq {
                id: req.id,
                data: req.data,
                rest: req.rest[1..].to_vec(),
            };
            let bytes = fwd.data.len() as u64 + 64;
            let p2 = pending.clone();
            // Give the whole downstream pipeline time to finish.
            let timeout = self.config.rpc_timeout * 2;
            self.rpc.call::<WriteBlockResp>(
                sim,
                &next,
                "dn.write_block",
                Arc::new(fwd),
                bytes,
                timeout,
                move |sim, r| {
                    let res = match r {
                        Ok(inner) => (*inner).clone(),
                        Err(e) => Err(e.to_string()),
                    };
                    finish(sim, &p2, res);
                },
            );
        }
    }
}

// ---- Client -----------------------------------------------------------------------

/// Statistics of one client operation stream (the §VII-B measurement).
#[derive(Debug, Clone, Default)]
pub struct DfsClientStats {
    /// Block-level errors encountered (each triggers a retry).
    pub errors: u64,
    /// Virtual times at which errors were observed.
    pub error_times: Vec<SimTime>,
    /// Replica failovers during reads.
    pub read_failovers: u64,
}

impl DfsClientStats {
    /// Span from first to last observed error (the client-visible
    /// disruption window).
    pub fn error_window(&self) -> Option<Duration> {
        match (self.error_times.first(), self.error_times.last()) {
            (Some(a), Some(b)) => Some(b.saturating_duration_since(*a)),
            _ => None,
        }
    }
}

/// A DFS client bound to one RPC node.
#[derive(Clone)]
pub struct DfsClient {
    rpc: RpcNode,
    namenode: Addr,
    config: DfsConfig,
    stats: Rc<RefCell<DfsClientStats>>,
}

impl fmt::Debug for DfsClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DfsClient")
            .field("addr", self.rpc.addr())
            .finish()
    }
}

impl DfsClient {
    /// Creates a client talking to `namenode`.
    pub fn new(rpc: RpcNode, namenode: Addr, config: DfsConfig) -> DfsClient {
        DfsClient {
            rpc,
            namenode,
            config,
            stats: Rc::new(RefCell::new(DfsClientStats::default())),
        }
    }

    /// Snapshot of the client's error statistics.
    pub fn stats(&self) -> DfsClientStats {
        self.stats.borrow().clone()
    }

    /// Writes `data` as `file` (replicated, pipelined, with retries).
    pub fn put(
        &self,
        sim: &Sim,
        file: impl Into<String>,
        data: Vec<u8>,
        cb: impl FnOnce(&Sim, Result<(), DfsError>) + 'static,
    ) {
        let file = file.into();
        let blocks: Vec<Vec<u8>> = data
            .chunks(self.config.block_bytes as usize)
            .map(<[u8]>::to_vec)
            .collect();
        self.put_blocks(sim, file, blocks, 0, Box::new(cb));
    }

    fn put_blocks(
        &self,
        sim: &Sim,
        file: String,
        blocks: Vec<Vec<u8>>,
        idx: usize,
        cb: Box<dyn FnOnce(&Sim, Result<(), DfsError>)>,
    ) {
        if idx >= blocks.len() {
            cb(sim, Ok(()));
            return;
        }
        let this = self.clone();
        self.write_one_block(
            sim,
            file.clone(),
            blocks[idx].clone(),
            0,
            Box::new(move |sim, r| match r {
                Err(e) => cb(sim, Err(e)),
                Ok(()) => this.put_blocks(sim, file, blocks, idx + 1, cb),
            }),
        );
    }

    fn write_one_block(
        &self,
        sim: &Sim,
        file: String,
        data: Vec<u8>,
        attempt: u32,
        cb: Box<dyn FnOnce(&Sim, Result<(), DfsError>)>,
    ) {
        if attempt >= self.config.max_attempts {
            cb(
                sim,
                Err(DfsError::WriteFailed("retry budget exhausted".into())),
            );
            return;
        }
        let this = self.clone();
        let retry = move |this: DfsClient,
                          sim: &Sim,
                          why: String,
                          file: String,
                          data: Vec<u8>,
                          cb: Box<dyn FnOnce(&Sim, Result<(), DfsError>)>| {
            {
                let mut s = this.stats.borrow_mut();
                s.errors += 1;
                let now = sim.now();
                s.error_times.push(now);
            }
            sim.trace(
                TraceLevel::Warn,
                "dfs-client",
                format!("block write error: {why}; retrying"),
            );
            let backoff = this.config.retry_backoff;
            let t2 = this.clone();
            sim.schedule_in(backoff, move |sim| {
                t2.write_one_block(sim, file, data, attempt + 1, cb);
            });
        };
        // Ask the namenode for a block id + pipeline.
        self.rpc.call::<CreateBlockResp>(
            sim,
            &self.namenode,
            "nn.create_block",
            Arc::new(CreateBlockReq { file: file.clone() }),
            64,
            self.config.rpc_timeout,
            move |sim, r| {
                let plan = match r {
                    Ok(resp) => match &*resp {
                        Ok(p) => p.clone(),
                        Err(e) => {
                            retry(this, sim, e.clone(), file, data, cb);
                            return;
                        }
                    },
                    Err(e) => {
                        retry(this, sim, e.to_string(), file, data, cb);
                        return;
                    }
                };
                let head = plan.pipeline[0].clone();
                let req = WriteBlockReq {
                    id: plan.id,
                    data: data.clone(),
                    rest: plan.pipeline[1..].to_vec(),
                };
                let bytes = req.data.len() as u64 + 64;
                let this2 = this.clone();
                let timeout = this.config.rpc_timeout * 3;
                this.rpc.call::<WriteBlockResp>(
                    sim,
                    &head,
                    "dn.write_block",
                    Arc::new(req),
                    bytes,
                    timeout,
                    move |sim, r| {
                        let ok = matches!(r.as_deref(), Ok(Ok(())));
                        if !ok {
                            let why = match r {
                                Ok(inner) => format!("{inner:?}"),
                                Err(e) => e.to_string(),
                            };
                            retry(this2, sim, why, file, data, cb);
                            return;
                        }
                        // Commit the block.
                        let len = data.len() as u64;
                        let fin = FinishBlockReq {
                            file: file.clone(),
                            id: plan.id,
                            len,
                            replicas: plan.pipeline.clone(),
                        };
                        let timeout = this2.config.rpc_timeout;
                        this2.rpc.call::<()>(
                            sim,
                            &this2.namenode,
                            "nn.finish_block",
                            Arc::new(fin),
                            64,
                            timeout,
                            move |sim, r| match r {
                                Ok(_) => cb(sim, Ok(())),
                                Err(e) => cb(sim, Err(DfsError::NameNode(e.to_string()))),
                            },
                        );
                    },
                );
            },
        );
    }

    /// Reads `file` back, failing over between replicas as needed.
    pub fn get(
        &self,
        sim: &Sim,
        file: impl Into<String>,
        cb: impl FnOnce(&Sim, Result<Vec<u8>, DfsError>) + 'static,
    ) {
        let file = file.into();
        let this = self.clone();
        self.rpc.call::<LocateResp>(
            sim,
            &self.namenode,
            "nn.locate",
            Arc::new(LocateReq { file }),
            64,
            self.config.rpc_timeout,
            move |sim, r| {
                let blocks = match r {
                    Ok(resp) => match &*resp {
                        Ok(b) => b.clone(),
                        Err(e) => {
                            cb(sim, Err(e.clone()));
                            return;
                        }
                    },
                    Err(e) => {
                        cb(sim, Err(DfsError::NameNode(e.to_string())));
                        return;
                    }
                };
                this.read_blocks(sim, blocks, 0, Vec::new(), Box::new(cb));
            },
        );
    }

    fn read_blocks(
        &self,
        sim: &Sim,
        blocks: Vec<BlockMeta>,
        idx: usize,
        mut acc: Vec<u8>,
        cb: Box<dyn FnOnce(&Sim, Result<Vec<u8>, DfsError>)>,
    ) {
        if idx >= blocks.len() {
            cb(sim, Ok(acc));
            return;
        }
        let this = self.clone();
        let meta = blocks[idx].clone();
        self.read_one_block(
            sim,
            meta,
            0,
            Box::new(move |sim, r| match r {
                Err(e) => cb(sim, Err(e)),
                Ok(mut data) => {
                    acc.append(&mut data);
                    this.read_blocks(sim, blocks, idx + 1, acc, cb);
                }
            }),
        );
    }

    fn read_one_block(
        &self,
        sim: &Sim,
        meta: BlockMeta,
        replica: usize,
        cb: Box<dyn FnOnce(&Sim, Result<Vec<u8>, DfsError>)>,
    ) {
        if replica >= meta.replicas.len() {
            cb(sim, Err(DfsError::ReadFailed("all replicas failed".into())));
            return;
        }
        let this = self.clone();
        let target = meta.replicas[replica].clone();
        self.rpc.call::<ReadBlockResp>(
            sim,
            &target,
            "dn.read_block",
            Arc::new(ReadBlockReq { id: meta.id }),
            32,
            self.config.rpc_timeout * 2,
            move |sim, r| {
                if let Ok(resp) = r {
                    if let Ok(data) = &*resp {
                        cb(sim, Ok(data.clone()));
                        return;
                    }
                }
                // Fail over to the next replica (reads are uninterrupted
                // from the application's perspective).
                this.stats.borrow_mut().read_failovers += 1;
                this.read_one_block(sim, meta, replica + 1, cb);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::time::Duration;
    use ustore_net::{MemDevice, NetConfig, Network};

    struct Fixture {
        sim: Sim,
        net: Network,
        nn: NameNode,
        dns: Vec<DataNode>,
        client: DfsClient,
    }

    fn fixture(seed: u64, datanodes: usize) -> Fixture {
        let sim = Sim::new(seed);
        let net = Network::new(NetConfig::default());
        let config = DfsConfig {
            block_bytes: 1 << 20,
            ..DfsConfig::default()
        };
        let nn_addr = Addr::new("nn");
        let nn = NameNode::new(RpcNode::new(&net, nn_addr.clone()), config.clone());
        let dns: Vec<DataNode> = (0..datanodes)
            .map(|i| {
                DataNode::new(
                    &sim,
                    RpcNode::new(&net, Addr::new(format!("dn-{i}"))),
                    Rc::new(MemDevice::new(64 << 20, Duration::from_micros(200))),
                    &nn_addr,
                    config.clone(),
                )
            })
            .collect();
        let client = DfsClient::new(RpcNode::new(&net, Addr::new("dfs-client")), nn_addr, config);
        sim.run_until(sim.now() + Duration::from_secs(1));
        Fixture {
            sim,
            net,
            nn,
            dns,
            client,
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn put_get_roundtrip_with_replication() {
        let f = fixture(81, 3);
        assert_eq!(f.nn.datanode_count(), 3);
        let data = payload(3 << 20); // 3 blocks
        let expect = data.clone();
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let client = f.client.clone();
        f.client
            .put(&f.sim, "/logs/2015-01.tar", data, move |sim, r| {
                r.expect("put");
                client.get(sim, "/logs/2015-01.tar", move |_, r| {
                    assert_eq!(r.expect("get"), expect);
                    o.set(true);
                });
            });
        f.sim.run_until(f.sim.now() + Duration::from_secs(60));
        assert!(ok.get());
        assert_eq!(f.nn.files(), vec!["/logs/2015-01.tar".to_string()]);
        // Every datanode holds all three blocks (3x replication on 3 nodes).
        for dn in &f.dns {
            assert_eq!(dn.block_count(), 3);
        }
        assert_eq!(f.client.stats().errors, 0);
    }

    #[test]
    fn read_fails_over_to_replica() {
        let f = fixture(82, 3);
        let data = payload(1 << 20);
        let expect = data.clone();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let client = f.client.clone();
        let net = f.net.clone();
        f.client.put(&f.sim, "/f", data, move |sim, r| {
            r.expect("put");
            // Kill the first replica's datanode; the read must still work.
            net.set_down(sim, &Addr::new("dn-0"));
            client.get(sim, "/f", move |_, r| {
                assert_eq!(r.expect("get despite dead replica"), expect);
                d.set(true);
            });
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(60));
        assert!(done.get());
        assert!(f.client.stats().read_failovers >= 1);
    }

    #[test]
    fn write_retries_through_transient_failure() {
        let f = fixture(83, 4);
        // Take one datanode down *before* writing: pipelines through it
        // fail and the client retries until a healthy pipeline works
        // (round-robin placement rotates the head).
        f.net.set_down(&f.sim, &Addr::new("dn-1"));
        let data = payload(2 << 20);
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        f.client.put(&f.sim, "/resilient", data, move |_, r| {
            r.expect("put eventually succeeds");
            o.set(true);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(120));
        assert!(ok.get());
        let stats = f.client.stats();
        assert!(stats.errors > 0, "client saw transient errors");
        assert!(stats.error_window().is_some());
    }

    #[test]
    fn missing_file_errors() {
        let f = fixture(84, 3);
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        f.client.get(&f.sim, "/nope", move |_, r| {
            assert_eq!(r.unwrap_err(), DfsError::NoSuchFile);
            g.set(true);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(5));
        assert!(got.get());
    }

    #[test]
    fn insufficient_datanodes_rejected_then_recovers() {
        let f = fixture(85, 2); // below replication factor
        let ok = Rc::new(Cell::new(None));
        let o = ok.clone();
        f.client.put(&f.sim, "/f", payload(100), move |_, r| {
            o.set(Some(r.is_ok()));
        });
        // With only 2 datanodes the create_block calls keep failing until
        // the retry budget runs out.
        f.sim.run_until(f.sim.now() + Duration::from_secs(120));
        assert_eq!(ok.get(), Some(false), "put fails without enough datanodes");
    }
}
