//! Iometer-style workload generation (§VII-A).
//!
//! The paper evaluates throughput "by combining different values of three
//! parameters: transfer size, read/write mix percentage and access
//! patterns", with one Iometer worker per disk. [`AccessSpec`] is that
//! parameter triple; [`Worker`] is a closed-loop generator (one
//! outstanding IO, like the paper's default Iometer configuration) driving
//! any asynchronous target.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use ustore_disk::Direction;
use ustore_sim::{Histogram, Sim, SimRng, SimTime, Throughput};

/// One Iometer access specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    /// Transfer request size in bytes.
    pub request_bytes: u64,
    /// Percentage of operations that are reads (0–100).
    pub read_pct: u8,
    /// Random (true) or sequential (false) access.
    pub random: bool,
    /// Span of the target region exercised (Iometer's "maximum disk size";
    /// the paper's random numbers match an ~8 GiB test region).
    pub region_bytes: u64,
}

impl AccessSpec {
    /// Creates a spec; region defaults to 8 GiB like the calibration.
    pub fn new(request_bytes: u64, read_pct: u8, random: bool) -> Self {
        assert!(read_pct <= 100, "read percentage is 0-100");
        AccessSpec {
            request_bytes,
            read_pct,
            random,
            region_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// The paper's workload naming: e.g. `4K-S-R` (4 KiB, sequential,
    /// read), `4M-R-W` (4 MiB, random, write).
    pub fn label(&self) -> String {
        let size = if self.request_bytes >= 1 << 20 {
            format!("{}M", self.request_bytes >> 20)
        } else {
            format!("{}K", self.request_bytes >> 10)
        };
        let pat = if self.random { "R" } else { "S" };
        let mix = match self.read_pct {
            100 => "R".to_owned(),
            0 => "W".to_owned(),
            p => format!("{p}"),
        };
        format!("{size}-{pat}-{mix}")
    }
}

impl fmt::Display for AccessSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// An asynchronous IO target a worker can drive: issue one operation and
/// call back on completion (`Ok` payload size ignored; errors counted).
pub type IoIssuer = Rc<dyn Fn(&Sim, Direction, u64, u64, Box<dyn FnOnce(&Sim, bool)>)>;

/// Measured outcome of one worker (or a merged set).
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    /// Completed operations and bytes.
    pub done: Throughput,
    /// Reads only.
    pub reads: Throughput,
    /// Writes only.
    pub writes: Throughput,
    /// Failed operations.
    pub errors: u64,
    /// Per-op completion latency in nanoseconds.
    pub latency: Histogram,
    /// Measurement window.
    pub window: Duration,
}

impl WorkloadStats {
    /// Operations per second over the window.
    pub fn iops(&self) -> f64 {
        self.done.over(self.window).ops_per_sec
    }

    /// Payload megabytes per second over the window (Iometer MB/s).
    pub fn mbps(&self) -> f64 {
        self.done.over(self.window).mb_per_sec
    }

    /// Merges another worker's stats (same window).
    pub fn merge(&mut self, other: &WorkloadStats) {
        self.done.merge(other.done);
        self.reads.merge(other.reads);
        self.writes.merge(other.writes);
        self.errors += other.errors;
        self.latency.merge(&other.latency);
        self.window = self.window.max(other.window);
    }
}

struct WorkerState {
    spec: AccessSpec,
    rng: SimRng,
    next_seq: u64,
    region_start: u64,
    end_at: SimTime,
    stats: WorkloadStats,
    finished: bool,
}

/// A closed-loop Iometer worker (queue depth 1).
#[derive(Clone)]
pub struct Worker {
    inner: Rc<RefCell<WorkerState>>,
    issuer: IoIssuer,
}

impl fmt::Debug for Worker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.inner.borrow();
        f.debug_struct("Worker").field("spec", &w.spec).finish()
    }
}

impl Worker {
    /// Creates a worker over `issuer`, exercising `region_start..+region`.
    pub fn new(spec: AccessSpec, rng: SimRng, region_start: u64, issuer: IoIssuer) -> Self {
        Worker {
            inner: Rc::new(RefCell::new(WorkerState {
                spec,
                rng,
                next_seq: 0,
                region_start,
                end_at: SimTime::ZERO,
                stats: WorkloadStats::default(),
                finished: false,
            })),
            issuer,
        }
    }

    /// Runs the closed loop for `duration` of virtual time; afterwards
    /// [`Worker::stats`] holds the result.
    pub fn run(&self, sim: &Sim, duration: Duration) {
        {
            let mut w = self.inner.borrow_mut();
            w.end_at = sim.now() + duration;
            w.stats.window = duration;
        }
        self.issue_next(sim);
    }

    /// Whether the measurement window elapsed and the loop stopped.
    pub fn finished(&self) -> bool {
        self.inner.borrow().finished
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> WorkloadStats {
        self.inner.borrow().stats.clone()
    }

    fn issue_next(&self, sim: &Sim) {
        let (dir, offset, len) = {
            let mut w = self.inner.borrow_mut();
            if sim.now() >= w.end_at {
                w.finished = true;
                return;
            }
            let len = w.spec.request_bytes;
            let slots = (w.spec.region_bytes / len).max(1);
            let offset = if w.spec.random {
                w.region_start + w.rng.u64_below(slots) * len
            } else {
                let o = w.region_start + (w.next_seq % slots) * len;
                w.next_seq += 1;
                o
            };
            let dir = if w.rng.u64_below(100) < u64::from(w.spec.read_pct) {
                Direction::Read
            } else {
                Direction::Write
            };
            (dir, offset, len)
        };
        let this = self.clone();
        let started = sim.now();
        (self.issuer)(
            sim,
            dir,
            offset,
            len,
            Box::new(move |sim, ok| {
                {
                    let mut w = this.inner.borrow_mut();
                    if ok {
                        w.stats.done.complete(len);
                        match dir {
                            Direction::Read => w.stats.reads.complete(len),
                            Direction::Write => w.stats.writes.complete(len),
                        }
                        let dt = sim.now().saturating_duration_since(started);
                        w.stats.latency.record(dt.as_nanos() as u64);
                    } else {
                        w.stats.errors += 1;
                    }
                }
                this.issue_next(sim);
            }),
        );
    }
}

/// Builds an issuer over a fabric-attached disk (used by the Table II /
/// Figure 5 experiments, which measure below the network layer).
pub fn fabric_issuer(
    runtime: ustore_fabric::FabricRuntime,
    disk: ustore_fabric::DiskId,
) -> IoIssuer {
    Rc::new(move |sim, dir, offset, len, done| match dir {
        Direction::Read => {
            runtime.read(sim, disk, offset, len, move |sim, r| done(sim, r.is_ok()));
        }
        Direction::Write => {
            runtime.write(sim, disk, offset, vec![0u8; len as usize], move |sim, r| {
                done(sim, r.is_ok())
            });
        }
    })
}

/// Builds an issuer over a raw [`ustore_disk::Disk`] (no USB in the path —
/// the Table II "SATA" and bare "USB" configurations).
pub fn disk_issuer(disk: ustore_disk::Disk) -> IoIssuer {
    Rc::new(move |sim, dir, offset, len, done| match dir {
        Direction::Read => disk.read(sim, offset, len, move |sim, r| done(sim, r.is_ok())),
        Direction::Write => disk.write(sim, offset, vec![0u8; len as usize], move |sim, r| {
            done(sim, r.is_ok())
        }),
    })
}

/// Builds an issuer over any [`ustore_net::BlockDevice`] (client-level
/// workloads over mounted UStore spaces).
pub fn blockdev_issuer(dev: Rc<dyn ustore_net::BlockDevice>) -> IoIssuer {
    Rc::new(move |sim, dir, offset, len, done| match dir {
        Direction::Read => dev.read(
            sim,
            offset,
            len,
            Box::new(move |sim, r| done(sim, r.is_ok())),
        ),
        Direction::Write => dev.write(
            sim,
            offset,
            vec![0u8; len as usize],
            Box::new(move |sim, r| done(sim, r.is_ok())),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustore_disk::{Disk, DiskProfile};

    fn run_spec(spec: AccessSpec, profile: DiskProfile, secs: u64) -> WorkloadStats {
        let sim = Sim::new(71);
        let disk = Disk::new(&sim, "d", profile, false);
        let worker = Worker::new(spec, sim.fork_rng("w"), 0, disk_issuer(disk));
        worker.run(&sim, Duration::from_secs(secs));
        sim.run();
        assert!(worker.finished());
        worker.stats()
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(AccessSpec::new(4096, 100, false).label(), "4K-S-R");
        assert_eq!(AccessSpec::new(4 << 20, 0, true).label(), "4M-R-W");
        assert_eq!(AccessSpec::new(4096, 50, true).label(), "4K-R-50");
    }

    #[test]
    fn sata_4k_seq_read_matches_table2() {
        let s = run_spec(AccessSpec::new(4096, 100, false), DiskProfile::sata(), 2);
        let iops = s.iops();
        assert!((iops - 13378.0).abs() / 13378.0 < 0.05, "iops {iops}");
    }

    #[test]
    fn usb_4m_rand_write_matches_table2() {
        let s = run_spec(
            AccessSpec::new(4 << 20, 0, true),
            DiskProfile::usb_bridge(),
            20,
        );
        let mbps = s.mbps();
        assert!((mbps - 79.3).abs() / 79.3 < 0.08, "mbps {mbps}");
    }

    #[test]
    fn mixed_load_counts_both_directions() {
        let s = run_spec(AccessSpec::new(4096, 50, false), DiskProfile::sata(), 1);
        assert!(s.reads.ops() > 0 && s.writes.ops() > 0);
        let frac = s.reads.ops() as f64 / s.done.ops() as f64;
        assert!((frac - 0.5).abs() < 0.05, "read fraction {frac}");
        assert_eq!(s.done.ops(), s.reads.ops() + s.writes.ops());
        assert_eq!(s.errors, 0);
        assert!(s.latency.count() > 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let a = run_spec(AccessSpec::new(4096, 100, false), DiskProfile::sata(), 1);
        let mut b = run_spec(AccessSpec::new(4096, 100, false), DiskProfile::sata(), 1);
        let single = b.done.ops();
        b.merge(&a);
        assert_eq!(b.done.ops(), single + a.done.ops());
    }

    #[test]
    fn sequential_wraps_region() {
        // A tiny region forces wraparound without exceeding the disk.
        let sim = Sim::new(72);
        let disk = Disk::new(&sim, "d", DiskProfile::sata(), false);
        let spec = AccessSpec {
            region_bytes: 16 * 4096,
            ..AccessSpec::new(4096, 100, false)
        };
        let worker = Worker::new(spec, sim.fork_rng("w"), 0, disk_issuer(disk.clone()));
        worker.run(&sim, Duration::from_secs(1));
        sim.run();
        assert_eq!(disk.stats().errors, 0, "never out of range");
        assert!(worker.stats().done.ops() > 1000);
    }
}
