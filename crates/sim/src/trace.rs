//! Lightweight structured tracing for simulation runs.
//!
//! Components record `(time, level, component, message)` tuples through
//! [`crate::Sim::trace`]. Tests and the experiment harness query the buffer
//! to assert on causality ("the Controller locked the fabric before turning
//! switches") without coupling to stdout.

use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume detail (per-IO, per-message).
    Debug,
    /// Component lifecycle and notable actions.
    Info,
    /// Recoverable anomalies (retries, failovers).
    Warn,
    /// Failures that required intervention.
    Error,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual instant at which the event was recorded.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Component name (e.g. `"master"`, `"endpoint-2"`).
    pub component: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.component, self.message
        )
    }
}

/// A bounded in-memory trace recorder.
///
/// Recording below the configured minimum level is dropped; when the buffer
/// exceeds its capacity half of it is discarded — sub-`Warn` noise first,
/// oldest first — while the total count keeps counting.
#[derive(Debug)]
pub struct Trace {
    min_level: TraceLevel,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    total: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Creates a recorder keeping Info+ events, capacity 64 Ki events.
    pub fn new() -> Self {
        Trace {
            min_level: TraceLevel::Info,
            capacity: 65_536,
            events: Vec::new(),
            dropped: 0,
            total: 0,
        }
    }

    /// Sets the minimum recorded level.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Whether events at `level` would be recorded. Callers can skip
    /// building a message entirely when this is `false`.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }

    /// Sets the buffer capacity (events beyond it evict the oldest half).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(2);
    }

    /// Records one event (called by the engine).
    pub fn record(&mut self, at: SimTime, level: TraceLevel, component: &str, message: String) {
        if level < self.min_level {
            return;
        }
        self.total += 1;
        if self.events.len() >= self.capacity {
            self.evict_half();
        }
        self.events.push(TraceEvent {
            at,
            level,
            component: component.to_owned(),
            message,
        });
    }

    /// Evicts half of the retained events, preferring to drop sub-`Warn`
    /// noise (oldest first) so `Warn`/`Error` events survive as long as
    /// the buffer can afford to keep them. Relative order is preserved.
    fn evict_half(&mut self) {
        let len = self.events.len();
        let half = len / 2;
        let mut evict = vec![false; len];
        let mut n = 0;
        for (i, e) in self.events.iter().enumerate() {
            if n == half {
                break;
            }
            if e.level < TraceLevel::Warn {
                evict[i] = true;
                n += 1;
            }
        }
        // Not enough noise: fall back to evicting the oldest survivors.
        if n < half {
            for flag in evict.iter_mut() {
                if n == half {
                    break;
                }
                if !*flag {
                    *flag = true;
                    n += 1;
                }
            }
        }
        let mut i = 0;
        self.events.retain(|_| {
            let keep = !evict[i];
            i += 1;
            keep
        });
        self.dropped += half as u64;
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total events recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events from `component`, oldest first.
    pub fn for_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }

    /// Retained events at `level` or above, oldest first.
    pub fn events_at_least(&self, level: TraceLevel) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.level >= level)
    }

    /// First retained event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Clears the retained buffer (counters keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &mut Trace, ms: u64, level: TraceLevel, comp: &str, msg: &str) {
        trace.record(SimTime::from_millis(ms), level, comp, msg.to_owned());
    }

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        ev(&mut t, 1, TraceLevel::Info, "master", "started");
        ev(
            &mut t,
            2,
            TraceLevel::Warn,
            "endpoint-0",
            "heartbeat missed",
        );
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.for_component("master").count(), 1);
        assert!(t.find("heartbeat").is_some());
        assert!(t.find("nope").is_none());
    }

    #[test]
    fn level_filtering() {
        let mut t = Trace::new();
        ev(&mut t, 1, TraceLevel::Debug, "x", "dropped");
        assert_eq!(t.events().len(), 0);
        t.set_min_level(TraceLevel::Debug);
        ev(&mut t, 2, TraceLevel::Debug, "x", "kept");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_half() {
        let mut t = Trace::new();
        t.set_capacity(4);
        for i in 0..5 {
            ev(&mut t, i, TraceLevel::Info, "x", &format!("m{i}"));
        }
        assert_eq!(t.events().len(), 3); // 4 -> drain 2 -> push 1 = 3
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.total_recorded(), 5);
        assert_eq!(t.events()[0].message, "m2");
    }

    #[test]
    fn eviction_prefers_keeping_warnings() {
        let mut t = Trace::new();
        t.set_capacity(8);
        // Two early warnings buried under Info noise.
        ev(&mut t, 0, TraceLevel::Warn, "m", "w0");
        ev(&mut t, 1, TraceLevel::Error, "m", "e1");
        for i in 2..8 {
            ev(&mut t, i, TraceLevel::Info, "m", &format!("i{i}"));
        }
        // Next record triggers eviction of 4; all 4 come from the Info
        // noise, so both severe events survive.
        ev(&mut t, 8, TraceLevel::Info, "m", "i8");
        assert_eq!(t.dropped(), 4);
        let msgs: Vec<_> = t.events().iter().map(|e| e.message.as_str()).collect();
        assert!(msgs.contains(&"w0"), "warning retained: {msgs:?}");
        assert!(msgs.contains(&"e1"), "error retained: {msgs:?}");
        assert_eq!(t.events_at_least(TraceLevel::Warn).count(), 2);
    }

    #[test]
    fn eviction_falls_back_to_oldest_when_all_severe() {
        let mut t = Trace::new();
        t.set_capacity(4);
        for i in 0..5 {
            ev(&mut t, i, TraceLevel::Error, "m", &format!("e{i}"));
        }
        // All events are severe, so the oldest half still goes.
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[0].message, "e2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn events_at_least_filters_by_level() {
        let mut t = Trace::new();
        t.set_min_level(TraceLevel::Debug);
        ev(&mut t, 0, TraceLevel::Debug, "a", "d");
        ev(&mut t, 1, TraceLevel::Info, "a", "i");
        ev(&mut t, 2, TraceLevel::Warn, "a", "w");
        ev(&mut t, 3, TraceLevel::Error, "a", "e");
        assert_eq!(t.events_at_least(TraceLevel::Debug).count(), 4);
        assert_eq!(t.events_at_least(TraceLevel::Warn).count(), 2);
        assert_eq!(
            t.events_at_least(TraceLevel::Error).next().unwrap().message,
            "e"
        );
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: SimTime::from_millis(5),
            level: TraceLevel::Error,
            component: "ctl".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "[5.000ms ERROR ctl] boom");
    }

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Debug < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Warn);
        assert!(TraceLevel::Warn < TraceLevel::Error);
    }
}
