//! Ring-buffered time series and the registry [`Scraper`].
//!
//! PR 1's [`MetricsRegistry`](crate::MetricsRegistry) is point-in-time: it
//! answers "how many seeks so far", never "how did seek latency evolve".
//! This module adds the time dimension. A [`Scraper`] runs as a recurring
//! simulated-time event, sampling every registry series into a
//! [`TimeSeries`] ring buffer keyed by `(component, series)`:
//!
//! - counters and gauges sample as their current value;
//! - histograms fan out into derived series (`<name>.count`, `<name>.mean`,
//!   `<name>.p50`, `<name>.p99`, `<name>.max`), so tail drift is visible
//!   sample over sample even though the histogram itself is cumulative.
//!
//! Consumers either pull (CSV export, experiment post-processing) or
//! subscribe with [`Scraper::on_scrape`] and react to each sweep — the
//! Master-side health watchdog uses the latter to turn drifting series
//! into reconfiguration decisions.
//!
//! Retention is bounded per series (ring buffer), so an arbitrarily long
//! simulation holds a sliding window, not an unbounded log.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Duration;

use crate::engine::{Sim, TimerId};
use crate::intern::MetricKey;
use crate::obs::MetricsRegistry;
use crate::time::SimTime;

/// One bounded series of `(instant, value)` samples.
///
/// # Examples
///
/// ```
/// use ustore_sim::{SimTime, TimeSeries};
///
/// let mut ts = TimeSeries::new(2);
/// ts.push(SimTime::from_secs(1), 10.0);
/// ts.push(SimTime::from_secs(2), 20.0);
/// ts.push(SimTime::from_secs(3), 30.0); // evicts the oldest
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some((SimTime::from_secs(3), 30.0)));
/// assert_eq!(ts.delta(), Some(10.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: VecDeque<(SimTime, f64)>,
    retention: usize,
}

impl TimeSeries {
    /// Creates an empty series keeping at most `retention` samples.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is zero.
    pub fn new(retention: usize) -> Self {
        assert!(retention > 0, "time series retention must be positive");
        TimeSeries {
            points: VecDeque::new(),
            retention,
        }
    }

    /// Appends a sample, evicting the oldest when at capacity.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if self.points.len() == self.retention {
            self.points.pop_front();
        }
        self.points.push_back((at, value));
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample is retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.back().copied()
    }

    /// Value change between the last two samples (for rate-of-change rules
    /// over cumulative counters), if at least two samples exist.
    pub fn delta(&self) -> Option<f64> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        Some(self.points[n - 1].1 - self.points[n - 2].1)
    }

    /// Iterates retained samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Exponentially weighted moving average over the retained window
    /// (`alpha` is the weight of each newer sample), if any samples exist.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn ewma(&self, alpha: f64) -> Option<f64> {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "ewma alpha must be in (0, 1], got {alpha}"
        );
        let mut it = self.points.iter();
        let mut acc = it.next()?.1;
        for (_, v) in it {
            acc = alpha * v + (1.0 - alpha) * acc;
        }
        Some(acc)
    }

    /// Largest retained value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |m, v| {
            Some(m.map_or(v, |m: f64| if v > m { v } else { m }))
        })
    }
}

/// Scraper tunables.
#[derive(Debug, Clone)]
pub struct ScraperConfig {
    /// Sampling period (simulated time).
    pub interval: Duration,
    /// Samples retained per series (ring-buffer capacity).
    pub retention: usize,
}

impl Default for ScraperConfig {
    fn default() -> Self {
        ScraperConfig {
            interval: Duration::from_millis(500),
            retention: 4096,
        }
    }
}

/// Histogram-derived sub-series appended to the histogram's name.
const HIST_FACETS: [&str; 6] = ["count", "mean", "p50", "p99", "p999", "max"];

/// Facet discriminants used in the id-keyed slot map. Counters and gauges
/// are single-valued; histograms fan out into [`HIST_FACETS`] (facet
/// `HIST_BASE + i` maps to `HIST_FACETS[i]`).
const FACET_COUNTER: u8 = 0;
const FACET_GAUGE: u8 = 1;
const HIST_BASE: u8 = 2;
/// Total facet discriminants per metric key (counter + gauge + 5 histogram
/// facets) — the width of one row in the dense slot table.
const FACETS_PER_KEY: usize = HIST_BASE as usize + HIST_FACETS.len();
/// Sentinel for "no ring buffer assigned yet" in the slot table.
const NO_SLOT: u32 = u32::MAX;

type ScrapeObserver = Box<dyn FnMut(&Sim, &Scraper)>;

struct ScraperInner {
    config: ScraperConfig,
    /// Dense `key raw → per-facet store index` table ([`NO_SLOT`] =
    /// unassigned). The sweep resolves each registry series with two array
    /// indexes — no hashing, no per-sample string allocation; names
    /// materialize only when a series is first seen.
    slots: Vec<[u32; FACETS_PER_KEY]>,
    store: Vec<TimeSeries>,
    /// `(component, series name, store index)`, sorted by name pair — the
    /// string-keyed view over `store` for lookups, CSV export and key
    /// listings. A sorted vec (not a map) so reads are allocation-free
    /// binary searches; inserts only happen the first time a series is
    /// seen.
    index: Vec<(String, String, u32)>,
    scrapes: u64,
}

/// Binary-search `index` for `(component, name)` without allocating keys.
fn find_series(
    index: &[(String, String, u32)],
    component: &str,
    name: &str,
) -> Result<usize, usize> {
    index.binary_search_by(|e| (e.0.as_str(), e.1.as_str()).cmp(&(component, name)))
}

impl ScraperInner {
    /// Appends one sample, creating the ring buffer (and its string index
    /// entry) the first time a `(key, facet)` series is seen.
    fn push_sample(
        &mut self,
        metrics: &MetricsRegistry,
        key: MetricKey,
        facet: u8,
        now: SimTime,
        value: f64,
    ) {
        let row = key.raw() as usize;
        if row >= self.slots.len() {
            self.slots.resize(row + 1, [NO_SLOT; FACETS_PER_KEY]);
        }
        let mut idx = self.slots[row][facet as usize];
        if idx == NO_SLOT {
            let (c, n) = metrics.resolve_key(key);
            let name = if facet < HIST_BASE {
                n.to_owned()
            } else {
                format!("{n}.{}", HIST_FACETS[(facet - HIST_BASE) as usize])
            };
            idx = self.store.len() as u32;
            self.store.push(TimeSeries::new(self.config.retention));
            self.slots[row][facet as usize] = idx;
            if let Err(pos) = find_series(&self.index, c, &name) {
                self.index.insert(pos, (c.to_owned(), name, idx));
            }
        }
        self.store[idx as usize].push(now, value);
    }
}

/// Samples the simulation's [`MetricsRegistry`] on a fixed simulated-time
/// cadence into per-series ring buffers.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ustore_sim::{Scraper, ScraperConfig, Sim, SimTime};
///
/// let sim = Sim::new(7);
/// let scraper = Scraper::start(&sim, ScraperConfig::default());
/// sim.count("disk0", "disk.reads", 3);
/// sim.run_until(SimTime::from_secs(2));
/// let ts = scraper.series("disk0", "disk.reads").expect("scraped");
/// assert!(ts.len() >= 3);
/// assert_eq!(ts.last().map(|(_, v)| v), Some(3.0));
/// ```
#[derive(Clone)]
pub struct Scraper {
    inner: Rc<RefCell<ScraperInner>>,
    // Held separately so observers may re-enter series accessors.
    observers: Rc<RefCell<Vec<ScrapeObserver>>>,
    timer: TimerId,
}

impl std::fmt::Debug for Scraper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("Scraper")
            .field("interval", &i.config.interval)
            .field("series", &i.store.len())
            .field("scrapes", &i.scrapes)
            .finish()
    }
}

impl Scraper {
    /// Installs a scraper on the simulator: the first sweep runs one
    /// `interval` from now, then periodically until [`Scraper::stop`].
    pub fn start(sim: &Sim, config: ScraperConfig) -> Scraper {
        let inner = Rc::new(RefCell::new(ScraperInner {
            config: config.clone(),
            slots: Vec::new(),
            store: Vec::new(),
            index: Vec::new(),
            scrapes: 0,
        }));
        let observers: Rc<RefCell<Vec<ScrapeObserver>>> = Rc::new(RefCell::new(Vec::new()));
        // The timer closure needs the handle; tie the knot through a cell.
        let handle: Rc<RefCell<Option<Scraper>>> = Rc::new(RefCell::new(None));
        let h2 = handle.clone();
        let timer = sim.every(config.interval, config.interval, move |sim| {
            let scraper = h2.borrow().clone().expect("scraper handle set");
            scraper.scrape(sim);
        });
        let scraper = Scraper {
            inner,
            observers,
            timer,
        };
        *handle.borrow_mut() = Some(scraper.clone());
        scraper
    }

    /// Stops the periodic sweep (already-collected samples stay readable).
    pub fn stop(&self, sim: &Sim) {
        sim.cancel_timer(self.timer);
    }

    /// Registers a callback invoked after every sweep. Callbacks may read
    /// the scraper's series but must not register further observers.
    pub fn on_scrape(&self, cb: impl FnMut(&Sim, &Scraper) + 'static) {
        self.observers.borrow_mut().push(Box::new(cb));
    }

    /// Runs one sweep immediately (also used by the periodic timer).
    ///
    /// The sweep walks the registry in place — no snapshot clone — and
    /// resolves each series by its interned [`MetricKey`], so steady-state
    /// sampling allocates nothing beyond ring-buffer growth.
    pub fn scrape(&self, sim: &Sim) {
        let now = sim.now();
        sim.publish_engine_gauges();
        {
            let mut i = self.inner.borrow_mut();
            sim.with_metrics(|m| {
                for raw in 0..m.num_keys() {
                    let key = MetricKey::from_raw(raw);
                    if let Some(v) = m.counter_value(key) {
                        i.push_sample(m, key, FACET_COUNTER, now, v as f64);
                    }
                    if let Some(v) = m.gauge_value(key) {
                        i.push_sample(m, key, FACET_GAUGE, now, v);
                    }
                    if let Some(h) = m.histogram_value(key) {
                        // Order must match HIST_FACETS exactly.
                        let facets = [
                            h.count() as f64,
                            h.mean().unwrap_or(0.0),
                            h.quantile(0.5).unwrap_or(0) as f64,
                            h.quantile(0.99).unwrap_or(0) as f64,
                            h.quantile(0.999).unwrap_or(0) as f64,
                            h.max().unwrap_or(0) as f64,
                        ];
                        for (j, v) in facets.into_iter().enumerate() {
                            i.push_sample(m, key, HIST_BASE + j as u8, now, v);
                        }
                    }
                }
            });
            i.scrapes += 1;
        }
        // Inner borrow released: observers may call accessors freely.
        let observers = self.observers.clone();
        let mut obs = observers.borrow_mut();
        for cb in obs.iter_mut() {
            cb(sim, self);
        }
    }

    /// Number of sweeps performed.
    pub fn scrapes(&self) -> u64 {
        self.inner.borrow().scrapes
    }

    /// The configured sampling period.
    pub fn interval(&self) -> Duration {
        self.inner.borrow().config.interval
    }

    /// A copy of one series, if it has ever been sampled. Prefer
    /// [`Scraper::with_series`] on hot read paths — it skips the clone.
    pub fn series(&self, component: &str, name: &str) -> Option<TimeSeries> {
        self.with_series(component, name, |ts| ts.clone())
    }

    /// Applies `f` to one series in place (no clone), if it has ever been
    /// sampled.
    pub fn with_series<R>(
        &self,
        component: &str,
        name: &str,
        f: impl FnOnce(&TimeSeries) -> R,
    ) -> Option<R> {
        let i = self.inner.borrow();
        let pos = find_series(&i.index, component, name).ok()?;
        let idx = i.index[pos].2 as usize;
        Some(f(&i.store[idx]))
    }

    /// All `(component, series)` keys, sorted.
    pub fn keys(&self) -> Vec<(String, String)> {
        self.inner
            .borrow()
            .index
            .iter()
            .map(|(c, n, _)| (c.clone(), n.clone()))
            .collect()
    }

    /// CSV export of every retained sample:
    /// `component,series,t_s,value` rows, keys sorted, oldest-first within
    /// a series. Byte-stable for identical runs.
    ///
    /// This is the largest artifact a run emits (megabytes at pod scale),
    /// so it avoids the formatting machinery where it can: the
    /// `component,series,` prefix is built once per series, timestamps are
    /// formatted once per distinct scrape instant (every series samples at
    /// the same instants), and integral values — counters and most gauges —
    /// take a direct digit-writing path instead of `f64` shortest-repr
    /// formatting.
    pub fn to_csv(&self) -> String {
        let i = self.inner.borrow();
        let total: usize = i
            .index
            .iter()
            .map(|&(_, _, idx)| i.store[idx as usize].len())
            .sum();
        let mut out = String::with_capacity(64 + total * 48);
        out.push_str("component,series,t_s,value\n");
        // Every series samples at the same scrape instants, so timestamp
        // strings are formatted once per distinct instant and reused;
        // sorted-vec lookup keeps the per-row cost at a short binary search.
        let mut times: Vec<(u64, String)> = Vec::new();
        let mut prefix = String::new();
        for (c, n, idx) in &i.index {
            prefix.clear();
            prefix.push_str(c);
            prefix.push(',');
            prefix.push_str(n);
            prefix.push(',');
            // Timestamps within a series are increasing and follow the
            // shared scrape cadence, so a forward cursor into the sorted
            // cache hits on almost every row; the binary search only runs
            // when a series joins the cadence mid-run.
            let mut cursor = 0usize;
            for (at, v) in i.store[*idx as usize].iter() {
                out.push_str(&prefix);
                let ns = at.as_nanos();
                let pos = if times.get(cursor).is_some_and(|&(t, _)| t == ns) {
                    cursor
                } else {
                    match times.binary_search_by_key(&ns, |&(t, _)| t) {
                        Ok(pos) => pos,
                        Err(pos) => {
                            times.insert(pos, (ns, format!("{:.6}", at.as_secs_f64())));
                            pos
                        }
                    }
                };
                cursor = pos + 1;
                out.push_str(&times[pos].1);
                out.push(',');
                push_f64(&mut out, v);
                out.push('\n');
            }
        }
        out
    }

    /// Extracts the sub-window of one series between `from` and `to`
    /// (inclusive), as `(seconds, value)` pairs — the shape experiment
    /// post-processing wants for phase timelines.
    pub fn window(
        &self,
        component: &str,
        name: &str,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(f64, f64)> {
        self.with_series(component, name, |ts| {
            ts.iter()
                .filter(|(at, _)| *at >= from && *at <= to)
                .map(|(at, v)| (at.as_secs_f64(), v))
                .collect()
        })
        .unwrap_or_default()
    }
}

/// Appends `v` formatted exactly as `{v}` (f64 `Display`) would, taking a
/// direct digit-writing path for integral values in the exactly-representable
/// range — the common case for sampled counters — where shortest-repr float
/// formatting is several times slower.
fn push_f64(out: &mut String, v: f64) {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if v.fract() == 0.0 && v.abs() <= EXACT && !(v == 0.0 && v.is_sign_negative()) {
        let mut n = v as i64;
        if n < 0 {
            out.push('-');
            n = -n;
        }
        let mut buf = [0u8; 20];
        let mut at = buf.len();
        loop {
            at -= 1;
            buf[at] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        out.push_str(std::str::from_utf8(&buf[at..]).expect("ascii digits"));
    } else {
        let _ = write!(out, "{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_f64_matches_float_display() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            3.5,
            -2.25,
            123456789.0,
            9_007_199_254_740_992.0,
            1.0e300,
            f64::NAN,
            f64::INFINITY,
            0.1,
        ] {
            let mut fast = String::new();
            push_f64(&mut fast, v);
            assert_eq!(fast, format!("{v}"), "mismatch for {v:?}");
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ts = TimeSeries::new(3);
        for s in 1..=5u64 {
            ts.push(SimTime::from_secs(s), s as f64);
        }
        assert_eq!(ts.len(), 3);
        let vals: Vec<f64> = ts.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, [3.0, 4.0, 5.0]);
        assert_eq!(ts.delta(), Some(1.0));
        assert_eq!(ts.max_value(), Some(5.0));
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut ts = TimeSeries::new(64);
        for s in 0..10u64 {
            ts.push(SimTime::from_secs(s), 100.0);
        }
        let flat = ts.ewma(0.3).expect("samples");
        assert!((flat - 100.0).abs() < 1e-9);
        for s in 10..20u64 {
            ts.push(SimTime::from_secs(s), 300.0);
        }
        let shifted = ts.ewma(0.3).expect("samples");
        assert!(shifted > 250.0, "ewma follows the shift: {shifted}");
    }

    #[test]
    fn scraper_samples_counters_gauges_histograms() {
        let sim = Sim::new(1);
        let scraper = Scraper::start(
            &sim,
            ScraperConfig {
                interval: Duration::from_millis(100),
                retention: 16,
            },
        );
        sim.count("c", "ops", 5);
        sim.gauge_set("c", "level", 2.5);
        sim.observe("c", "lat", 1000);
        sim.observe("c", "lat", 3000);
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(scraper.scrapes(), 2);
        assert_eq!(
            scraper.series("c", "ops").unwrap().last().map(|(_, v)| v),
            Some(5.0)
        );
        assert_eq!(
            scraper.series("c", "level").unwrap().last().map(|(_, v)| v),
            Some(2.5)
        );
        assert_eq!(
            scraper
                .series("c", "lat.count")
                .unwrap()
                .last()
                .map(|(_, v)| v),
            Some(2.0)
        );
        assert!(scraper.series("c", "lat.p99").is_some());
        assert_eq!(
            scraper
                .series("c", "lat.max")
                .unwrap()
                .last()
                .map(|(_, v)| v),
            Some(3000.0)
        );
    }

    #[test]
    fn scraper_retention_bounds_memory() {
        let sim = Sim::new(2);
        let scraper = Scraper::start(
            &sim,
            ScraperConfig {
                interval: Duration::from_millis(10),
                retention: 4,
            },
        );
        sim.count("c", "ops", 1);
        sim.run_until(SimTime::from_secs(1));
        let ts = scraper.series("c", "ops").unwrap();
        assert_eq!(ts.len(), 4, "ring buffer capped");
    }

    #[test]
    fn observers_fire_per_sweep_and_may_read_series() {
        let sim = Sim::new(3);
        let scraper = Scraper::start(
            &sim,
            ScraperConfig {
                interval: Duration::from_millis(100),
                retention: 8,
            },
        );
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        scraper.on_scrape(move |_, sc| {
            s2.borrow_mut()
                .push(sc.series("c", "ops").and_then(|t| t.last()).map(|(_, v)| v));
        });
        sim.count("c", "ops", 7);
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(*seen.borrow(), vec![Some(7.0), Some(7.0)]);
    }

    #[test]
    fn stop_halts_sampling() {
        let sim = Sim::new(4);
        let scraper = Scraper::start(&sim, ScraperConfig::default());
        sim.count("c", "ops", 1);
        sim.run_until(SimTime::from_secs(2));
        let before = scraper.scrapes();
        scraper.stop(&sim);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(scraper.scrapes(), before);
    }

    #[test]
    fn csv_export_lists_all_samples() {
        let sim = Sim::new(5);
        let scraper = Scraper::start(
            &sim,
            ScraperConfig {
                interval: Duration::from_millis(500),
                retention: 8,
            },
        );
        sim.count("disk0", "disk.reads", 2);
        sim.run_until(SimTime::from_secs(1));
        let csv = scraper.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("component,series,t_s,value"));
        assert!(csv.contains("disk0,disk.reads,0.500000,2"));
        // Window extraction matches the CSV contents.
        let w = scraper.window("disk0", "disk.reads", SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].1, 2.0);
    }
}
