//! Standard-format telemetry exporters.
//!
//! Bridges the in-simulator observability types to tooling people already
//! have open:
//!
//! - [`prometheus`] renders a [`MetricsRegistry`] in Prometheus exposition
//!   text format (`promtool check metrics` clean; scrapeable if served);
//! - [`chrome_trace`] renders a [`SpanTracer`] as Chrome trace-event JSON,
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`
//!   to see the failover span tree on a timeline;
//! - [`chrome_trace_with_wallclock`] additionally renders the wall-clock
//!   profiler's per-thread phase timelines as a second Perfetto process, so
//!   sim-time spans and engine wall time sit side by side in one file;
//! - [`prometheus_prof`] renders a profiler snapshot (and optional traffic
//!   matrix) under the distinct `ustore_prof_` prefix.
//!
//! The sim-time outputs are byte-stable for identical runs: the registry
//! keeps its keys sorted, and the trace exporter assigns track ids from the
//! sorted component list rather than encounter order. Wall-clock outputs
//! are deterministic in *shape* (track order, metric order) but not in
//! values — they measure the host machine.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::obs::MetricsRegistry;
use crate::prof::{Phase, ProfSnapshot, TrafficSnapshot};
use crate::reqtrace::TraceSnapshot;
use crate::span::{Span, SpanTracer};

/// Maps a dotted metric id to a Prometheus-legal name:
/// `disk.latency_ns` on component `disk3` → `ustore_disk_latency_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("ustore_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way Prometheus expects (always with enough digits
/// to round-trip; integral values render without an exponent).
fn prom_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // 3 -> "3.0": keeps gauges visibly float-typed
    } else {
        format!("{v}")
    }
}

/// Renders the registry in Prometheus exposition text format.
///
/// Counters and gauges become their native types; histograms become
/// summaries with `quantile` labels plus `_sum`/`_count` and exact-bound
/// `_min`/`_max` gauges (bucket-midpoint quantiles clamp to the observed
/// range, so the exported tails never overstate the data — see
/// `Histogram::quantile`). The `(component, name)` key splits into the
/// metric name and a `component` label so one `# TYPE` line covers every
/// instance of a series.
///
/// # Examples
///
/// ```
/// use ustore_sim::{export, MetricsRegistry};
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("disk0", "disk.reads", 3);
/// let text = export::prometheus(&m);
/// assert!(text.contains("# TYPE ustore_disk_reads counter"));
/// assert!(text.contains("ustore_disk_reads{component=\"disk0\"} 3"));
/// ```
pub fn prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();

    // Regroup (component, name) -> name -> [(component, line value)] so each
    // metric gets exactly one # TYPE header. BTreeMap keeps output sorted.
    let mut counters: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for (c, n, v) in metrics.counters() {
        counters.entry(n).or_default().push((c, v));
    }
    for (name, series) in &counters {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n"));
        for (component, v) in series {
            out.push_str(&format!(
                "{pname}{{component=\"{}\"}} {v}\n",
                prom_label(component)
            ));
        }
    }

    let mut gauges: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
    for (c, n, v) in metrics.gauges() {
        gauges.entry(n).or_default().push((c, v));
    }
    for (name, series) in &gauges {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        for (component, v) in series {
            out.push_str(&format!(
                "{pname}{{component=\"{}\"}} {}\n",
                prom_label(component),
                prom_f64(*v)
            ));
        }
    }

    let mut hists: BTreeMap<&str, Vec<(&str, &crate::metrics::Histogram)>> = BTreeMap::new();
    for (c, n, h) in metrics.histograms() {
        hists.entry(n).or_default().push((c, h));
    }
    for (name, series) in &hists {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname} summary\n"));
        for (component, h) in series {
            let label = prom_label(component);
            for q in [0.5, 0.9, 0.99, 0.999] {
                out.push_str(&format!(
                    "{pname}{{component=\"{label}\",quantile=\"{q}\"}} {}\n",
                    h.quantile(q).unwrap_or(0)
                ));
            }
            out.push_str(&format!(
                "{pname}_sum{{component=\"{label}\"}} {}\n",
                h.sum()
            ));
            out.push_str(&format!(
                "{pname}_count{{component=\"{label}\"}} {}\n",
                h.count()
            ));
        }
        // Exact observed bounds ride along as gauges: summaries have no
        // native min/max, and midpoint quantiles alone can hide tails.
        for suffix in ["min", "max"] {
            out.push_str(&format!("# TYPE {pname}_{suffix} gauge\n"));
            for (component, h) in series {
                let v = match suffix {
                    "min" => h.min().unwrap_or(0),
                    _ => h.max().unwrap_or(0),
                };
                out.push_str(&format!(
                    "{pname}_{suffix}{{component=\"{}\"}} {v}\n",
                    prom_label(component)
                ));
            }
        }
    }
    out
}

/// Renders the span log as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable in Perfetto or `chrome://tracing`.
///
/// Mapping: one process (`pid` 1), one track (`tid`) per component in
/// sorted order, named via `thread_name` metadata events. Closed spans are
/// complete events (`"ph": "X"`) with microsecond `ts`/`dur`; still-open
/// spans are begin events (`"ph": "B"`) so a crash mid-operation is visible
/// as an unterminated slice. Span id, parent and attributes land in
/// `args`, so clicking a failover slice shows the victim host.
pub fn chrome_trace(spans: &SpanTracer) -> Json {
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    for s in spans.spans() {
        let next = tids.len() as u64 + 1;
        tids.entry(&*s.component).or_insert(next);
    }
    // Re-number by sorted component name for byte-stable output.
    for (i, (_, tid)) in tids.iter_mut().enumerate() {
        *tid = i as u64 + 1;
    }

    let mut events = Vec::new();
    for (component, tid) in &tids {
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(1)),
            ("tid", Json::u64(*tid)),
            ("args", Json::obj([("name", Json::str(*component))])),
        ]));
    }
    for s in spans.spans() {
        events.push(span_event(s, tids[&*s.component]));
    }
    Json::obj([("traceEvents", Json::arr(events))])
}

/// Renders the span log plus the wall-clock profiler's thread timelines as
/// one Chrome trace-event document with two clock domains:
///
/// - `pid` 1 (`sim-time`): the [`chrome_trace`] export — spans positioned
///   by simulated time;
/// - `pid` 2 (`wall-clock`): one track per engine thread (shard workers,
///   coordinator, classic engine), with `execute` / `barrier_wait` / ...
///   slices positioned by monotonic wall time since profiling started.
///
/// The two domains share one timeline axis in Perfetto but must not be
/// compared against each other — a sim microsecond is not a wall
/// microsecond. Tracks are ordered by sorted label so the layout is stable
/// across runs even though the slice values are not. Each track's
/// `thread_name` metadata carries a `dropped_slices` arg when the per-track
/// slice cap was hit.
pub fn chrome_trace_with_wallclock(spans: &SpanTracer, prof: &ProfSnapshot) -> Json {
    let base = chrome_trace(spans);
    let mut events: Vec<Json> = base
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();

    for (pid, name) in [(1u64, "sim-time"), (2u64, "wall-clock")] {
        events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(0)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
    }

    // Stable track order: sort by label (labels are unique per registration
    // in practice; ties keep registration order via stable sort).
    let mut order: Vec<usize> = (0..prof.tracks.len()).collect();
    order.sort_by(|&a, &b| prof.tracks[a].label.cmp(&prof.tracks[b].label));
    for (i, &t) in order.iter().enumerate() {
        let track = &prof.tracks[t];
        let tid = i as u64 + 1;
        let mut args = Json::obj([("name", Json::str(&*track.label))]);
        if track.dropped > 0 {
            args.insert("dropped_slices", Json::u64(track.dropped));
        }
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(2)),
            ("tid", Json::u64(tid)),
            ("args", args),
        ]));
        for s in &track.slices {
            let mut ev = Json::obj([
                ("name", Json::str(s.phase.name())),
                ("cat", Json::str("wallprof")),
                ("ph", Json::str("X")),
                ("ts", Json::f64(s.start_ns as f64 / 1000.0)),
                ("dur", Json::f64(s.dur_ns as f64 / 1000.0)),
                ("pid", Json::u64(2)),
                ("tid", Json::u64(tid)),
            ]);
            if s.world != usize::MAX {
                ev.insert("args", Json::obj([("world", Json::u64(s.world as u64))]));
            }
            events.push(ev);
        }
    }
    Json::obj([("traceEvents", Json::arr(events))])
}

/// Renders the span log plus the request tracer's slowest-request
/// exemplars as one Chrome trace-event document:
///
/// - `pid` 1 (`sim-time`): the [`chrome_trace`] export;
/// - `pid` 3 (`requests`): one track per exemplar, slowest first. Each
///   track holds a root `request` slice spanning the full TTFB with the
///   per-stage segments nested inside it (both in simulated time, so the
///   exemplars line up with any failover spans on `pid` 1). A final
///   `annotations` track carries cluster events (watchdog escalations) as
///   instant markers.
///
/// Track order and naming are deterministic: exemplars are already sorted
/// by `(ttfb, id)` in the snapshot.
pub fn chrome_trace_with_requests(spans: &SpanTracer, trace: &TraceSnapshot) -> Json {
    let base = chrome_trace(spans);
    let mut events: Vec<Json> = base
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();

    for (pid, name) in [(1u64, "sim-time"), (3u64, "requests")] {
        events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(0)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
    }

    for (i, r) in trace.exemplars.iter().enumerate() {
        let tid = i as u64 + 1;
        let label = format!(
            "req {} ({}, {:.2} ms{})",
            r.id,
            r.kind.name(),
            r.ttfb_ns as f64 / 1e6,
            if r.cold { ", cold" } else { "" }
        );
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(3)),
            ("tid", Json::u64(tid)),
            ("args", Json::obj([("name", Json::str(label))])),
        ]));
        events.push(Json::obj([
            ("name", Json::str("request")),
            ("cat", Json::str("reqtrace")),
            ("ph", Json::str("X")),
            ("ts", Json::f64(r.start_ns as f64 / 1000.0)),
            ("dur", Json::f64(r.ttfb_ns as f64 / 1000.0)),
            ("pid", Json::u64(3)),
            ("tid", Json::u64(tid)),
            (
                "args",
                Json::obj([
                    ("id", Json::u64(r.id)),
                    ("kind", Json::str(r.kind.name())),
                    ("attempts", Json::u64(u64::from(r.attempts))),
                    ("cold", Json::Bool(r.cold)),
                    ("dominant", Json::str(r.dominant().name())),
                ]),
            ),
        ]));
        for seg in &r.segments {
            events.push(Json::obj([
                ("name", Json::str(seg.stage.name())),
                ("cat", Json::str("reqtrace")),
                ("ph", Json::str("X")),
                ("ts", Json::f64(seg.start_ns as f64 / 1000.0)),
                ("dur", Json::f64(seg.dur_ns as f64 / 1000.0)),
                ("pid", Json::u64(3)),
                ("tid", Json::u64(tid)),
            ]));
        }
    }

    if !trace.annotations.is_empty() {
        let tid = trace.exemplars.len() as u64 + 1;
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(3)),
            ("tid", Json::u64(tid)),
            ("args", Json::obj([("name", Json::str("annotations"))])),
        ]));
        for (ns, label) in &trace.annotations {
            events.push(Json::obj([
                ("name", Json::str(label.as_str())),
                ("cat", Json::str("reqtrace")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", Json::f64(*ns as f64 / 1000.0)),
                ("pid", Json::u64(3)),
                ("tid", Json::u64(tid)),
            ]));
        }
    }
    Json::obj([("traceEvents", Json::arr(events))])
}

/// Renders a profiler snapshot (and optional cross-world traffic matrix) in
/// Prometheus exposition format under the `ustore_prof_` prefix, disjoint
/// from the sim-time `ustore_` namespace so wall-clock series can never be
/// mistaken for simulated telemetry.
///
/// Phase costs become `ustore_prof_phase_seconds{world,phase}` counters
/// (plus `_calls`); epoch statistics become per-world counters and an
/// `events_per_epoch` summary; the traffic matrix becomes
/// `ustore_prof_cross_messages{src,dst}` with slack gauges.
pub fn prometheus_prof(prof: &ProfSnapshot, traffic: Option<&TrafficSnapshot>) -> String {
    let mut out = String::new();

    out.push_str("# TYPE ustore_prof_phase_seconds counter\n");
    for w in &prof.worlds {
        for p in Phase::ALL {
            out.push_str(&format!(
                "ustore_prof_phase_seconds{{world=\"{}\",phase=\"{}\"}} {}\n",
                w.world,
                p.name(),
                prom_f64(w.phase_ns[p as usize] as f64 / 1e9)
            ));
        }
    }
    out.push_str("# TYPE ustore_prof_phase_calls counter\n");
    for w in &prof.worlds {
        for p in Phase::ALL {
            out.push_str(&format!(
                "ustore_prof_phase_calls{{world=\"{}\",phase=\"{}\"}} {}\n",
                w.world,
                p.name(),
                w.phase_calls[p as usize]
            ));
        }
    }
    type WorldGet = fn(&crate::prof::WorldProf) -> u64;
    let world_counters: [(&str, WorldGet); 3] = [
        ("epochs", |w| w.epochs),
        ("idle_epochs", |w| w.idle_epochs),
        ("events", |w| w.events),
    ];
    for (name, get) in world_counters {
        out.push_str(&format!("# TYPE ustore_prof_{name} counter\n"));
        for w in &prof.worlds {
            out.push_str(&format!(
                "ustore_prof_{name}{{world=\"{}\"}} {}\n",
                w.world,
                get(w)
            ));
        }
    }
    out.push_str("# TYPE ustore_prof_barrier_wait_fraction gauge\n");
    for w in &prof.worlds {
        out.push_str(&format!(
            "ustore_prof_barrier_wait_fraction{{world=\"{}\"}} {}\n",
            w.world,
            prom_f64(w.barrier_fraction())
        ));
    }
    out.push_str("# TYPE ustore_prof_events_per_epoch summary\n");
    for w in &prof.worlds {
        let h = &w.events_per_epoch;
        for q in [0.5, 0.9, 0.99, 0.999] {
            out.push_str(&format!(
                "ustore_prof_events_per_epoch{{world=\"{}\",quantile=\"{q}\"}} {}\n",
                w.world,
                h.quantile(q).unwrap_or(0)
            ));
        }
        out.push_str(&format!(
            "ustore_prof_events_per_epoch_sum{{world=\"{}\"}} {}\n",
            w.world,
            h.sum()
        ));
        out.push_str(&format!(
            "ustore_prof_events_per_epoch_count{{world=\"{}\"}} {}\n",
            w.world,
            h.count()
        ));
    }

    out.push_str("# TYPE ustore_prof_sync_epochs counter\n");
    out.push_str(&format!("ustore_prof_sync_epochs {}\n", prof.epochs));
    out.push_str("# TYPE ustore_prof_idle_jump_epochs counter\n");
    out.push_str(&format!(
        "ustore_prof_idle_jump_epochs {}\n",
        prof.idle_jump_epochs
    ));
    out.push_str("# TYPE ustore_prof_sim_seconds_advanced counter\n");
    out.push_str(&format!(
        "ustore_prof_sim_seconds_advanced {}\n",
        prom_f64(prof.advance_ns_total as f64 / 1e9)
    ));
    if let Some(u) = prof.lookahead_utilization() {
        out.push_str("# TYPE ustore_prof_lookahead_utilization gauge\n");
        out.push_str(&format!(
            "ustore_prof_lookahead_utilization {}\n",
            prom_f64(u)
        ));
    }

    if let Some(t) = traffic {
        out.push_str("# TYPE ustore_prof_cross_messages counter\n");
        for c in &t.cells {
            out.push_str(&format!(
                "ustore_prof_cross_messages{{src=\"{}\",dst=\"{}\"}} {}\n",
                c.src, c.dst, c.messages
            ));
        }
        out.push_str("# TYPE ustore_prof_cross_slack_min_ns gauge\n");
        for c in &t.cells {
            out.push_str(&format!(
                "ustore_prof_cross_slack_min_ns{{src=\"{}\",dst=\"{}\"}} {}\n",
                c.src, c.dst, c.min_slack_ns
            ));
        }
        out.push_str("# TYPE ustore_prof_cross_slack_mean_ns gauge\n");
        for c in &t.cells {
            out.push_str(&format!(
                "ustore_prof_cross_slack_mean_ns{{src=\"{}\",dst=\"{}\"}} {}\n",
                c.src,
                c.dst,
                prom_f64(c.mean_slack_ns())
            ));
        }
    }
    out
}

fn span_event(s: &Span, tid: u64) -> Json {
    let ts_us = s.start.as_nanos() as f64 / 1000.0;
    let mut args = Json::obj([("span_id", Json::u64(s.id.raw()))]);
    if let Some(p) = s.parent {
        args.insert("parent_span_id", Json::u64(p.raw()));
    }
    for (k, v) in &s.attrs {
        args.insert(k.clone(), Json::str(v));
    }
    let mut ev = Json::obj([
        ("name", Json::str(&*s.name)),
        ("cat", Json::str(&*s.component)),
    ]);
    match s.end {
        Some(end) => {
            let dur_us = end.duration_since(s.start).as_nanos() as f64 / 1000.0;
            ev.insert("ph", Json::str("X"));
            ev.insert("ts", Json::f64(ts_us));
            ev.insert("dur", Json::f64(dur_us));
        }
        None => {
            ev.insert("ph", Json::str("B"));
            ev.insert("ts", Json::f64(ts_us));
        }
    }
    ev.insert("pid", Json::u64(1));
    ev.insert("tid", Json::u64(tid));
    ev.insert("args", args);
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("disk0", "disk.reads", 7);
        m.counter_add("disk1", "disk.reads", 9);
        m.gauge_set("disk0", "power.watts", 5.1);
        m.observe("disk0", "disk.latency_ns", 10_000_000);
        m.observe("disk0", "disk.latency_ns", 14_000_000);
        m
    }

    #[test]
    fn prometheus_groups_components_under_one_type_line() {
        let text = prometheus(&sample_registry());
        assert_eq!(
            text.matches("# TYPE ustore_disk_reads counter").count(),
            1,
            "one TYPE line for both disks"
        );
        assert!(text.contains("ustore_disk_reads{component=\"disk0\"} 7"));
        assert!(text.contains("ustore_disk_reads{component=\"disk1\"} 9"));
        assert!(text.contains("# TYPE ustore_power_watts gauge"));
        assert!(text.contains("ustore_power_watts{component=\"disk0\"} 5.1"));
    }

    #[test]
    fn prometheus_summary_exposes_exact_bounds() {
        let text = prometheus(&sample_registry());
        assert!(text.contains("# TYPE ustore_disk_latency_ns summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("ustore_disk_latency_ns_sum{component=\"disk0\"} 24000000"));
        assert!(text.contains("ustore_disk_latency_ns_count{component=\"disk0\"} 2"));
        assert!(text.contains("ustore_disk_latency_ns_min{component=\"disk0\"} 10000000"));
        assert!(text.contains("ustore_disk_latency_ns_max{component=\"disk0\"} 14000000"));
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let text = prometheus(&sample_registry());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE ustore_"), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(series.starts_with("ustore_"), "bad name: {line}");
            assert!(series.contains("{component=\""), "bad labels: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
        }
    }

    #[test]
    fn prometheus_is_byte_stable() {
        let a = prometheus(&sample_registry());
        let b = prometheus(&sample_registry().snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_trace_tracks_and_events() {
        let mut t = SpanTracer::new();
        let root = t.start(SimTime::from_millis(1), "master-0", "failover", None);
        t.set_attr(root, "victim", "u0/h1");
        let child = t.start(
            SimTime::from_millis(2),
            "fabric",
            "fabric.execute",
            Some(root),
        );
        t.end(SimTime::from_millis(5), child);
        t.end(SimTime::from_millis(9), root);
        let open = t.start(SimTime::from_millis(10), "master-0", "op", None);
        let _ = open;

        let doc = chrome_trace(&t);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 components -> 2 metadata events, plus 3 spans.
        assert_eq!(events.len(), 5);
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        let failover = complete
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("failover"))
            .unwrap();
        assert_eq!(failover.get("ts").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(failover.get("dur").and_then(Json::as_f64), Some(8000.0));
        assert_eq!(
            failover
                .get("args")
                .and_then(|a| a.get("victim"))
                .and_then(Json::as_str),
            Some("u0/h1")
        );
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .collect();
        assert_eq!(begins.len(), 1, "open span exported as B event");
    }

    #[cfg(feature = "wallprof")]
    #[test]
    fn wallclock_trace_adds_second_process_with_thread_tracks() {
        use crate::prof::{Phase, Profiler};

        let prof = Profiler::on(1);
        let track = prof.register_track("worker-0".to_string());
        track.slice(Phase::Execute, 0, 100, 50);
        track.slice(Phase::BarrierWait, usize::MAX, 150, 25);
        let snap = prof.snapshot().expect("profiler is on");

        let mut t = SpanTracer::new();
        let a = t.start(SimTime::from_millis(1), "master-0", "op", None);
        t.end(SimTime::from_millis(2), a);

        let doc = chrome_trace_with_wallclock(&t, &snap);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pid2: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").and_then(Json::as_f64) == Some(2.0))
            .collect();
        // process_name + thread_name + 2 slices on the wall-clock process.
        assert_eq!(pid2.len(), 4);
        let exec = pid2
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("execute"))
            .expect("execute slice present");
        assert_eq!(exec.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(exec.get("dur").and_then(Json::as_f64), Some(0.05));
        assert!(
            exec.get("args").and_then(|a| a.get("world")).is_some(),
            "world-attributed slice carries its world id"
        );
        let wait = pid2
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("barrier_wait"))
            .expect("wait slice present");
        assert!(
            wait.get("args").is_none(),
            "thread-level slice has no world arg"
        );
        // The sim-time export is still intact under pid 1.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("op")));
    }

    #[cfg(feature = "wallprof")]
    #[test]
    fn prometheus_prof_uses_distinct_prefix_and_well_formed_lines() {
        use crate::prof::{Phase, Profiler, TrafficMatrix};

        let prof = Profiler::on(2);
        prof.set_lookahead(std::time::Duration::from_micros(100));
        prof.phase(0, Phase::Execute, 5_000_000);
        prof.phase(1, Phase::BarrierWait, 2_000_000);
        prof.epoch_events(0, 10);
        prof.epoch_events(1, 0);
        prof.epoch(std::time::Duration::from_micros(80), false);
        let snap = prof.snapshot().unwrap();

        let m = TrafficMatrix::new(2);
        m.record(0, 1, 500);
        m.record(1, 0, 900);
        let traffic = m.snapshot();

        let text = prometheus_prof(&snap, Some(&traffic));
        assert!(text.contains("ustore_prof_phase_seconds{world=\"0\",phase=\"execute\"} 0.005"));
        assert!(text.contains("ustore_prof_idle_epochs{world=\"1\"} 1"));
        assert!(text.contains("ustore_prof_lookahead_utilization 0.8"));
        assert!(text.contains("ustore_prof_cross_messages{src=\"0\",dst=\"1\"} 1"));
        assert!(text.contains("ustore_prof_cross_slack_min_ns{src=\"1\",dst=\"0\"} 900"));
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# TYPE ustore_prof_"),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(series.starts_with("ustore_prof_"), "bad name: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
        }
    }

    #[cfg(feature = "reqtrace")]
    #[test]
    fn request_trace_adds_exemplar_tracks() {
        use crate::reqtrace::{ReqKind, RequestTracer, Stage};

        let tr = RequestTracer::on(1, 4);
        let id = tr.begin(ReqKind::Read, SimTime::from_millis(1)).unwrap();
        let stamp = tr.dispatch(id, SimTime::from_millis(2));
        tr.mark(stamp, Stage::NetTransit, SimTime::from_millis(3));
        tr.complete(id, SimTime::from_millis(4));
        tr.annotate("watchdog escalate d0", SimTime::from_millis(5));
        let snap = tr.snapshot().unwrap();

        let spans = SpanTracer::new();
        let doc = chrome_trace_with_requests(&spans, &snap);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pid3: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").and_then(Json::as_f64) == Some(3.0))
            .collect();
        let root = pid3
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("request"))
            .expect("root request slice");
        assert_eq!(root.get("ts").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(root.get("dur").and_then(Json::as_f64), Some(3000.0));
        assert!(
            root.get("args")
                .and_then(|a| a.get("dominant"))
                .and_then(Json::as_str)
                .is_some(),
            "root slice names the dominant stage"
        );
        assert!(
            pid3.iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("net_transit")),
            "stage segment nested under the request"
        );
        assert!(
            pid3.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("i")
                    && e.get("name").and_then(Json::as_str) == Some("watchdog escalate d0")
            }),
            "annotation exported as instant event"
        );
    }

    #[test]
    fn chrome_trace_is_byte_stable() {
        let mut t = SpanTracer::new();
        let a = t.start(SimTime::from_millis(0), "zeta", "op", None);
        t.end(SimTime::from_millis(1), a);
        let b = t.start(SimTime::from_millis(2), "alpha", "op", None);
        t.end(SimTime::from_millis(3), b);
        let one = chrome_trace(&t).to_string();
        let two = chrome_trace(&t.clone()).to_string();
        assert_eq!(one, two);
        // alpha gets tid 1 (sorted), despite starting later.
        assert!(one.find("alpha").unwrap() < one.find("zeta").unwrap());
    }
}
