//! Unified metrics registry: named counters, gauges and histograms.
//!
//! Every measurement in the stack flows through one [`MetricsRegistry`]
//! owned by the simulator (see [`crate::Sim::count`] and friends), keyed by
//! a `(component, name)` pair:
//!
//! - **component** identifies the emitting instance (`"master-0"`,
//!   `"u0-d3"`, `"fabric"`, `"sim"`), so per-disk or per-host series stay
//!   separate and can be aggregated later;
//! - **name** is a hierarchical dotted metric id (`"disk.reads"`,
//!   `"power.residency.idle_s"`, `"rpc.round_trips"`).
//!
//! The registry supports [`snapshot`](MetricsRegistry::snapshot) /
//! [`diff`](MetricsRegistry::diff) (measure just a window of a run) and
//! [`merge`](MetricsRegistry::merge) (aggregate repeated runs), and exports
//! to a byte-stable JSON document or a sorted text listing. Keys are kept
//! in sorted order so exports never depend on insertion order.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::json::Json;
use crate::metrics::Histogram;

#[path = "timeseries.rs"]
pub mod timeseries;

/// A registry of named counters, gauges and histograms.
///
/// # Examples
///
/// ```
/// use ustore_sim::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("disk-0", "disk.reads", 3);
/// m.gauge_set("disk-0", "power.watts", 5.1);
/// m.observe("disk-0", "disk.latency_ns", 12_000_000);
/// assert_eq!(m.counter("disk-0", "disk.reads"), 3);
///
/// let base = m.snapshot();
/// m.counter_add("disk-0", "disk.reads", 2);
/// assert_eq!(m.diff(&base).counter("disk-0", "disk.reads"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), f64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

fn key(component: &str, name: &str) -> (String, String) {
    (component.to_owned(), name.to_owned())
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the counter `component/name` (creating it at zero).
    pub fn counter_add(&mut self, component: &str, name: &str, n: u64) {
        *self.counters.entry(key(component, name)).or_insert(0) += n;
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter(&self, component: &str, name: &str) -> u64 {
        self.counters
            .get(&key(component, name))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of `name` counters across all components.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sets the gauge `component/name` to `v`.
    pub fn gauge_set(&mut self, component: &str, name: &str, v: f64) {
        self.gauges.insert(key(component, name), v);
    }

    /// Adds `v` (may be negative) to the gauge, creating it at zero.
    pub fn gauge_add(&mut self, component: &str, name: &str, v: f64) {
        *self.gauges.entry(key(component, name)).or_insert(0.0) += v;
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, component: &str, name: &str) -> Option<f64> {
        self.gauges.get(&key(component, name)).copied()
    }

    /// Records a histogram sample (typically nanoseconds).
    pub fn observe(&mut self, component: &str, name: &str, v: u64) {
        self.histograms
            .entry(key(component, name))
            .or_default()
            .record(v);
    }

    /// Records a [`Duration`] histogram sample in nanoseconds.
    pub fn observe_duration(&mut self, component: &str, name: &str, d: Duration) {
        self.histograms
            .entry(key(component, name))
            .or_default()
            .record_duration(d);
    }

    /// The histogram `component/name`, if any samples were recorded.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&Histogram> {
        self.histograms.get(&key(component, name))
    }

    /// Iterates `(component, name, value)` over all counters, sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((c, n), v)| (c.as_str(), n.as_str(), *v))
    }

    /// Iterates `(component, name, value)` over all gauges, sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|((c, n), v)| (c.as_str(), n.as_str(), *v))
    }

    /// Iterates `(component, name, histogram)` sorted by key.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.histograms
            .iter()
            .map(|((c, n), h)| (c.as_str(), n.as_str(), h))
    }

    /// A point-in-time copy of the whole registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// The change since `base` (an earlier snapshot of the same registry).
    ///
    /// Counters and histograms subtract (entries that did not change are
    /// omitted); gauges report their *current* value minus the base value
    /// when both exist, else the current value.
    pub fn diff(&self, base: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for ((c, n), v) in &self.counters {
            let before = base
                .counters
                .get(&(c.clone(), n.clone()))
                .copied()
                .unwrap_or(0);
            if *v > before {
                out.counters.insert((c.clone(), n.clone()), v - before);
            }
        }
        for ((c, n), v) in &self.gauges {
            let before = base
                .gauges
                .get(&(c.clone(), n.clone()))
                .copied()
                .unwrap_or(0.0);
            let d = v - before;
            if d != 0.0 {
                out.gauges.insert((c.clone(), n.clone()), d);
            }
        }
        for ((c, n), h) in &self.histograms {
            match base.histograms.get(&(c.clone(), n.clone())) {
                Some(bh) => {
                    let d = h.diff(bh);
                    if d.count() > 0 {
                        out.histograms.insert((c.clone(), n.clone()), d);
                    }
                }
                None => {
                    if h.count() > 0 {
                        out.histograms.insert((c.clone(), n.clone()), h.clone());
                    }
                }
            }
        }
        out
    }

    /// Merges another registry into this one: counters and histogram
    /// samples add; gauges add numerically (so per-run residency or energy
    /// gauges aggregate across merged runs).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for ((c, n), v) in &other.counters {
            *self.counters.entry((c.clone(), n.clone())).or_insert(0) += v;
        }
        for ((c, n), v) in &other.gauges {
            *self.gauges.entry((c.clone(), n.clone())).or_insert(0.0) += v;
        }
        for ((c, n), h) in &other.histograms {
            self.histograms
                .entry((c.clone(), n.clone()))
                .or_default()
                .merge(h);
        }
    }

    /// Clears all series.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Stable JSON export.
    ///
    /// Schema (all keys sorted `component/name`):
    ///
    /// ```json
    /// {
    ///   "counters":   { "disk-0/disk.reads": 3 },
    ///   "gauges":     { "disk-0/power.watts": 5.1 },
    ///   "histograms": { "disk-0/disk.latency_ns":
    ///       { "count": 1, "min": 0, "max": 0, "mean": 0.0,
    ///         "p50": 0, "p90": 0, "p99": 0 } }
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(
            self.counters()
                .map(|(c, n, v)| (format!("{c}/{n}"), Json::u64(v))),
        );
        let gauges = Json::obj(
            self.gauges()
                .map(|(c, n, v)| (format!("{c}/{n}"), Json::f64(v))),
        );
        let histograms = Json::obj(self.histograms().map(|(c, n, h)| {
            (
                format!("{c}/{n}"),
                Json::obj([
                    ("count", Json::u64(h.count())),
                    ("min", Json::u64(h.min().unwrap_or(0))),
                    ("max", Json::u64(h.max().unwrap_or(0))),
                    ("mean", Json::f64(h.mean().unwrap_or(0.0))),
                    ("p50", Json::u64(h.quantile(0.5).unwrap_or(0))),
                    ("p90", Json::u64(h.quantile(0.9).unwrap_or(0))),
                    ("p99", Json::u64(h.quantile(0.99).unwrap_or(0))),
                ]),
            )
        }));
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

impl fmt::Display for MetricsRegistry {
    /// Sorted text listing, one series per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, n, v) in self.counters() {
            writeln!(f, "counter   {c}/{n} = {v}")?;
        }
        for (c, n, v) in self.gauges() {
            writeln!(f, "gauge     {c}/{n} = {v:.3}")?;
        }
        for (c, n, h) in self.histograms() {
            writeln!(
                f,
                "histogram {c}/{n} count={} mean={:.0} p50={} p99={}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.counter_add("a", "x", 2);
        m.counter_add("a", "x", 3);
        m.counter_add("b", "x", 10);
        assert_eq!(m.counter("a", "x"), 5);
        assert_eq!(m.counter("a", "missing"), 0);
        assert_eq!(m.counter_total("x"), 15);
        m.gauge_set("a", "g", 1.0);
        m.gauge_add("a", "g", 0.5);
        m.gauge_add("a", "h", -2.0);
        assert_eq!(m.gauge("a", "g"), Some(1.5));
        assert_eq!(m.gauge("a", "h"), Some(-2.0));
        assert_eq!(m.gauge("a", "missing"), None);
    }

    #[test]
    fn snapshot_diff_window() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", "ops", 10);
        m.gauge_set("c", "level", 3.0);
        m.observe("c", "lat", 100);
        let base = m.snapshot();
        m.counter_add("c", "ops", 7);
        m.counter_add("c", "new", 1);
        m.gauge_set("c", "level", 5.0);
        m.observe("c", "lat", 200);
        m.observe("c", "lat", 300);
        let d = m.diff(&base);
        assert_eq!(d.counter("c", "ops"), 7);
        assert_eq!(d.counter("c", "new"), 1);
        assert_eq!(d.gauge("c", "level"), Some(2.0));
        let h = d.histogram("c", "lat").expect("window samples");
        assert_eq!(h.count(), 2);
        // Unchanged series are omitted from the diff entirely.
        let d2 = m.diff(&m.snapshot());
        assert!(d2.is_empty());
    }

    #[test]
    fn merge_aggregates_runs() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", "ops", 1);
        a.gauge_set("c", "energy_j", 2.0);
        a.observe("c", "lat", 50);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", "ops", 2);
        b.gauge_set("c", "energy_j", 3.5);
        b.observe("c", "lat", 70);
        a.merge(&b);
        assert_eq!(a.counter("c", "ops"), 3);
        assert_eq!(a.gauge("c", "energy_j"), Some(5.5));
        assert_eq!(a.histogram("c", "lat").unwrap().count(), 2);
    }

    #[test]
    fn json_export_is_stable_and_sorted() {
        let mut m = MetricsRegistry::new();
        // Insert out of order; export must sort.
        m.counter_add("z", "late", 1);
        m.counter_add("a", "early", 2);
        m.gauge_set("g", "v", 0.25);
        m.observe("h", "lat", 42);
        let j1 = m.to_json().to_string();
        let j2 = m.snapshot().to_json().to_string();
        assert_eq!(j1, j2, "export must be deterministic");
        let a = j1.find("a/early").expect("a/early present");
        let z = j1.find("z/late").expect("z/late present");
        assert!(a < z, "keys sorted");
        assert!(j1.contains(r#""counters":{"#));
        assert!(j1.contains(r#""gauges":{"#));
        assert!(j1.contains(r#""histograms":{"#));
        assert!(j1.contains(r#""p99":42"#));
    }

    #[test]
    fn text_export_lists_every_series() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", "ops", 3);
        m.gauge_set("c", "w", 1.5);
        m.observe("c", "lat", 9);
        let text = m.to_string();
        assert!(text.contains("counter   c/ops = 3"));
        assert!(text.contains("gauge     c/w = 1.500"));
        assert!(text.contains("histogram c/lat count=1"));
    }
}
