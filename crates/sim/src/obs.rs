//! Unified metrics registry: named counters, gauges and histograms.
//!
//! Every measurement in the stack flows through one [`MetricsRegistry`]
//! owned by the simulator (see [`crate::Sim::count`] and friends), keyed by
//! a `(component, name)` pair:
//!
//! - **component** identifies the emitting instance (`"master-0"`,
//!   `"u0-d3"`, `"fabric"`, `"sim"`), so per-disk or per-host series stay
//!   separate and can be aggregated later;
//! - **name** is a hierarchical dotted metric id (`"disk.reads"`,
//!   `"power.residency.idle_s"`, `"rpc.round_trips"`).
//!
//! Internally the registry is id-indexed: a [`KeyInterner`] resolves each
//! pair to a dense [`MetricKey`] once, and values live in plain `Vec`s —
//! so the string-based hot-path methods allocate nothing after a key's
//! first use, and the key-based `_key` methods (used by the
//! [`crate::CounterHandle`]-family of handles) are a bounds-checked array
//! access. Sorted string order is materialized only at export time.
//!
//! The registry supports [`snapshot`](MetricsRegistry::snapshot) /
//! [`diff`](MetricsRegistry::diff) (measure just a window of a run) and
//! [`merge`](MetricsRegistry::merge) (aggregate repeated runs, resolved by
//! string so cross-registry merges are safe), and exports to a byte-stable
//! JSON document or a sorted text listing.

use std::fmt;
use std::time::Duration;

use crate::intern::{KeyInterner, MetricKey};
use crate::json::Json;
use crate::metrics::Histogram;

#[path = "timeseries.rs"]
pub mod timeseries;

/// A registry of named counters, gauges and histograms.
///
/// # Examples
///
/// ```
/// use ustore_sim::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("disk-0", "disk.reads", 3);
/// m.gauge_set("disk-0", "power.watts", 5.1);
/// m.observe("disk-0", "disk.latency_ns", 12_000_000);
/// assert_eq!(m.counter("disk-0", "disk.reads"), 3);
///
/// let base = m.snapshot();
/// m.counter_add("disk-0", "disk.reads", 2);
/// assert_eq!(m.diff(&base).counter("disk-0", "disk.reads"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    interner: KeyInterner,
    counters: Vec<Option<u64>>,
    gauges: Vec<Option<f64>>,
    histograms: Vec<Option<Histogram>>,
}

fn slot<T>(v: &mut Vec<Option<T>>, key: MetricKey) -> &mut Option<T> {
    let idx = key.raw() as usize;
    if v.len() <= idx {
        v.resize_with(idx + 1, || None);
    }
    &mut v[idx]
}

fn get<T: Copy>(v: &[Option<T>], key: MetricKey) -> Option<T> {
    v.get(key.raw() as usize).copied().flatten()
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(Option::is_none)
            && self.gauges.iter().all(Option::is_none)
            && self.histograms.iter().all(Option::is_none)
    }

    // ---- Key interning ----------------------------------------------------

    /// Interns `(component, name)` to its dense key (registering it if
    /// new). The key addresses all three metric kinds; a value slot is only
    /// created when first written, so registering a key does not add an
    /// empty series to exports.
    pub fn key(&mut self, component: &str, name: &str) -> MetricKey {
        self.interner.key(component, name)
    }

    /// Resolves a key back to its `(component, name)` strings.
    pub fn resolve_key(&self, key: MetricKey) -> (&str, &str) {
        self.interner.resolve(key)
    }

    /// Number of interned keys; raw key ids are `0..num_keys()`. Together
    /// with the `_value` accessors this lets samplers sweep the registry
    /// without allocating or hashing strings.
    pub fn num_keys(&self) -> u32 {
        self.interner.len()
    }

    // ---- Counters ---------------------------------------------------------

    /// Adds `n` to the counter `component/name` (creating it at zero).
    pub fn counter_add(&mut self, component: &str, name: &str, n: u64) {
        let k = self.interner.key(component, name);
        self.counter_add_key(k, n);
    }

    /// Adds `n` to the counter behind `key`.
    pub fn counter_add_key(&mut self, key: MetricKey, n: u64) {
        let s = slot(&mut self.counters, key);
        *s = Some(s.unwrap_or(0) + n);
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter(&self, component: &str, name: &str) -> u64 {
        self.interner
            .lookup(component, name)
            .and_then(|k| self.counter_value(k))
            .unwrap_or(0)
    }

    /// Current value of the counter behind `key` (zero when never touched).
    pub fn counter_key(&self, key: MetricKey) -> u64 {
        self.counter_value(key).unwrap_or(0)
    }

    /// The counter behind `key`, `None` when never touched.
    pub fn counter_value(&self, key: MetricKey) -> Option<u64> {
        get(&self.counters, key)
    }

    /// Sum of `name` counters across all components.
    pub fn counter_total(&self, name: &str) -> u64 {
        let Some(name_idx) = self.interner.lookup_str(name) else {
            return 0;
        };
        (0..self.interner.len())
            .filter(|&raw| self.interner.resolve_ids(MetricKey::from_raw(raw)).1 == name_idx)
            .filter_map(|raw| self.counter_value(MetricKey::from_raw(raw)))
            .sum()
    }

    // ---- Gauges -----------------------------------------------------------

    /// Sets the gauge `component/name` to `v`.
    pub fn gauge_set(&mut self, component: &str, name: &str, v: f64) {
        let k = self.interner.key(component, name);
        self.gauge_set_key(k, v);
    }

    /// Sets the gauge behind `key` to `v`.
    pub fn gauge_set_key(&mut self, key: MetricKey, v: f64) {
        *slot(&mut self.gauges, key) = Some(v);
    }

    /// Adds `v` (may be negative) to the gauge, creating it at zero.
    pub fn gauge_add(&mut self, component: &str, name: &str, v: f64) {
        let k = self.interner.key(component, name);
        self.gauge_add_key(k, v);
    }

    /// Adds `v` (may be negative) to the gauge behind `key`.
    pub fn gauge_add_key(&mut self, key: MetricKey, v: f64) {
        let s = slot(&mut self.gauges, key);
        *s = Some(s.unwrap_or(0.0) + v);
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, component: &str, name: &str) -> Option<f64> {
        self.interner
            .lookup(component, name)
            .and_then(|k| self.gauge_value(k))
    }

    /// The gauge behind `key`, if set.
    pub fn gauge_value(&self, key: MetricKey) -> Option<f64> {
        get(&self.gauges, key)
    }

    // ---- Histograms -------------------------------------------------------

    /// Records a histogram sample (typically nanoseconds).
    pub fn observe(&mut self, component: &str, name: &str, v: u64) {
        let k = self.interner.key(component, name);
        self.observe_key(k, v);
    }

    /// Records a histogram sample under `key`.
    pub fn observe_key(&mut self, key: MetricKey, v: u64) {
        slot(&mut self.histograms, key)
            .get_or_insert_with(Histogram::default)
            .record(v);
    }

    /// Records a [`Duration`] histogram sample in nanoseconds.
    pub fn observe_duration(&mut self, component: &str, name: &str, d: Duration) {
        let k = self.interner.key(component, name);
        self.observe_duration_key(k, d);
    }

    /// Records a [`Duration`] histogram sample under `key`.
    pub fn observe_duration_key(&mut self, key: MetricKey, d: Duration) {
        slot(&mut self.histograms, key)
            .get_or_insert_with(Histogram::default)
            .record_duration(d);
    }

    /// The histogram `component/name`, if any samples were recorded.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&Histogram> {
        self.interner
            .lookup(component, name)
            .and_then(|k| self.histogram_value(k))
    }

    /// The histogram behind `key`, if any samples were recorded.
    pub fn histogram_value(&self, key: MetricKey) -> Option<&Histogram> {
        self.histograms
            .get(key.raw() as usize)
            .and_then(Option::as_ref)
    }

    // ---- Sorted iteration (export path) -----------------------------------

    fn sorted_keys<T>(&self, v: &[Option<T>]) -> Vec<MetricKey> {
        let mut keys: Vec<MetricKey> = (0..self.interner.len())
            .map(MetricKey::from_raw)
            .filter(|k| v.get(k.raw() as usize).is_some_and(Option::is_some))
            .collect();
        keys.sort_by_key(|&k| self.interner.resolve(k));
        keys
    }

    /// Iterates `(component, name, value)` over all counters, sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.sorted_keys(&self.counters).into_iter().map(|k| {
            let (c, n) = self.interner.resolve(k);
            (c, n, self.counters[k.raw() as usize].expect("sorted key"))
        })
    }

    /// Iterates `(component, name, value)` over all gauges, sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.sorted_keys(&self.gauges).into_iter().map(|k| {
            let (c, n) = self.interner.resolve(k);
            (c, n, self.gauges[k.raw() as usize].expect("sorted key"))
        })
    }

    /// Iterates `(component, name, histogram)` sorted by key.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.sorted_keys(&self.histograms).into_iter().map(|k| {
            let (c, n) = self.interner.resolve(k);
            let h = self.histograms[k.raw() as usize]
                .as_ref()
                .expect("sorted key");
            (c, n, h)
        })
    }

    // ---- Snapshot / diff / merge ------------------------------------------

    /// A point-in-time copy of the whole registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// The change since `base` (an earlier snapshot of the same registry —
    /// though any registry works; series are matched by name).
    ///
    /// Counters and histograms subtract (entries that did not change are
    /// omitted); gauges report their *current* value minus the base value
    /// when both exist, else the current value.
    pub fn diff(&self, base: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for raw in 0..self.interner.len() {
            let k = MetricKey::from_raw(raw);
            let (c, n) = self.interner.resolve(k);
            if let Some(v) = self.counter_value(k) {
                let before = base.counter(c, n);
                if v > before {
                    out.counter_add(c, n, v - before);
                }
            }
            if let Some(v) = self.gauge_value(k) {
                let before = base.gauge(c, n).unwrap_or(0.0);
                let d = v - before;
                if d != 0.0 {
                    out.gauge_set(c, n, d);
                }
            }
            if let Some(h) = self.histogram_value(k) {
                let d = match base.histogram(c, n) {
                    Some(bh) => h.diff(bh),
                    None => h.clone(),
                };
                if d.count() > 0 {
                    let key = out.key(c, n);
                    *slot(&mut out.histograms, key) = Some(d);
                }
            }
        }
        out
    }

    /// Merges another registry into this one: counters and histogram
    /// samples add; gauges add numerically (so per-run residency or energy
    /// gauges aggregate across merged runs). Series are matched by name, so
    /// merging registries with different key id assignments is safe.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for raw in 0..other.interner.len() {
            let k = MetricKey::from_raw(raw);
            let (c, n) = other.interner.resolve(k);
            if let Some(v) = other.counter_value(k) {
                self.counter_add(c, n, v);
            }
            if let Some(v) = other.gauge_value(k) {
                self.gauge_add(c, n, v);
            }
            if let Some(h) = other.histogram_value(k) {
                let key = self.interner.key(c, n);
                slot(&mut self.histograms, key)
                    .get_or_insert_with(Histogram::default)
                    .merge(h);
            }
        }
    }

    /// Clears all series. Interned keys (and outstanding handles) stay
    /// valid; the value slots are emptied.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|s| *s = None);
        self.gauges.iter_mut().for_each(|s| *s = None);
        self.histograms.iter_mut().for_each(|s| *s = None);
    }

    /// Stable JSON export.
    ///
    /// Schema (all keys sorted `component/name`):
    ///
    /// ```json
    /// {
    ///   "counters":   { "disk-0/disk.reads": 3 },
    ///   "gauges":     { "disk-0/power.watts": 5.1 },
    ///   "histograms": { "disk-0/disk.latency_ns":
    ///       { "count": 1, "min": 0, "max": 0, "mean": 0.0,
    ///         "p50": 0, "p90": 0, "p99": 0 } }
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(
            self.counters()
                .map(|(c, n, v)| (format!("{c}/{n}"), Json::u64(v))),
        );
        let gauges = Json::obj(
            self.gauges()
                .map(|(c, n, v)| (format!("{c}/{n}"), Json::f64(v))),
        );
        let histograms = Json::obj(self.histograms().map(|(c, n, h)| {
            (
                format!("{c}/{n}"),
                Json::obj([
                    ("count", Json::u64(h.count())),
                    ("min", Json::u64(h.min().unwrap_or(0))),
                    ("max", Json::u64(h.max().unwrap_or(0))),
                    ("mean", Json::f64(h.mean().unwrap_or(0.0))),
                    ("p50", Json::u64(h.quantile(0.5).unwrap_or(0))),
                    ("p90", Json::u64(h.quantile(0.9).unwrap_or(0))),
                    ("p99", Json::u64(h.quantile(0.99).unwrap_or(0))),
                ]),
            )
        }));
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

impl fmt::Display for MetricsRegistry {
    /// Sorted text listing, one series per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, n, v) in self.counters() {
            writeln!(f, "counter   {c}/{n} = {v}")?;
        }
        for (c, n, v) in self.gauges() {
            writeln!(f, "gauge     {c}/{n} = {v:.3}")?;
        }
        for (c, n, h) in self.histograms() {
            writeln!(
                f,
                "histogram {c}/{n} count={} mean={:.0} p50={} p99={}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.counter_add("a", "x", 2);
        m.counter_add("a", "x", 3);
        m.counter_add("b", "x", 10);
        assert_eq!(m.counter("a", "x"), 5);
        assert_eq!(m.counter("a", "missing"), 0);
        assert_eq!(m.counter_total("x"), 15);
        m.gauge_set("a", "g", 1.0);
        m.gauge_add("a", "g", 0.5);
        m.gauge_add("a", "h", -2.0);
        assert_eq!(m.gauge("a", "g"), Some(1.5));
        assert_eq!(m.gauge("a", "h"), Some(-2.0));
        assert_eq!(m.gauge("a", "missing"), None);
    }

    #[test]
    fn key_api_matches_string_api() {
        let mut m = MetricsRegistry::new();
        let k = m.key("c", "ops");
        m.counter_add_key(k, 4);
        m.counter_add("c", "ops", 1);
        assert_eq!(m.counter_key(k), 5);
        assert_eq!(m.counter("c", "ops"), 5);
        assert_eq!(m.resolve_key(k), ("c", "ops"));
        // The same key addresses all three kinds independently.
        m.gauge_set_key(k, 2.0);
        m.gauge_add_key(k, 0.5);
        assert_eq!(m.gauge("c", "ops"), Some(2.5));
        m.observe_key(k, 100);
        assert_eq!(m.histogram_value(k).unwrap().count(), 1);
        // Registering a key creates no series until first write.
        let quiet = m.key("c", "quiet");
        assert_eq!(m.counter_value(quiet), None);
        assert!(!m.to_json().to_string().contains("quiet"));
    }

    #[test]
    fn clear_keeps_keys_valid() {
        let mut m = MetricsRegistry::new();
        let k = m.key("c", "ops");
        m.counter_add_key(k, 7);
        m.clear();
        assert!(m.is_empty());
        m.counter_add_key(k, 2);
        assert_eq!(m.counter("c", "ops"), 2);
    }

    #[test]
    fn snapshot_diff_window() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", "ops", 10);
        m.gauge_set("c", "level", 3.0);
        m.observe("c", "lat", 100);
        let base = m.snapshot();
        m.counter_add("c", "ops", 7);
        m.counter_add("c", "new", 1);
        m.gauge_set("c", "level", 5.0);
        m.observe("c", "lat", 200);
        m.observe("c", "lat", 300);
        let d = m.diff(&base);
        assert_eq!(d.counter("c", "ops"), 7);
        assert_eq!(d.counter("c", "new"), 1);
        assert_eq!(d.gauge("c", "level"), Some(2.0));
        let h = d.histogram("c", "lat").expect("window samples");
        assert_eq!(h.count(), 2);
        // Unchanged series are omitted from the diff entirely.
        let d2 = m.diff(&m.snapshot());
        assert!(d2.is_empty());
    }

    #[test]
    fn merge_aggregates_runs() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", "ops", 1);
        a.gauge_set("c", "energy_j", 2.0);
        a.observe("c", "lat", 50);
        let mut b = MetricsRegistry::new();
        // Different insertion order: key ids differ between the registries,
        // so merge must match by name, not by raw id.
        b.observe("c", "lat", 70);
        b.gauge_set("c", "energy_j", 3.5);
        b.counter_add("c", "ops", 2);
        a.merge(&b);
        assert_eq!(a.counter("c", "ops"), 3);
        assert_eq!(a.gauge("c", "energy_j"), Some(5.5));
        assert_eq!(a.histogram("c", "lat").unwrap().count(), 2);
    }

    #[test]
    fn json_export_is_stable_and_sorted() {
        let mut m = MetricsRegistry::new();
        // Insert out of order; export must sort.
        m.counter_add("z", "late", 1);
        m.counter_add("a", "early", 2);
        m.gauge_set("g", "v", 0.25);
        m.observe("h", "lat", 42);
        let j1 = m.to_json().to_string();
        let j2 = m.snapshot().to_json().to_string();
        assert_eq!(j1, j2, "export must be deterministic");
        let a = j1.find("a/early").expect("a/early present");
        let z = j1.find("z/late").expect("z/late present");
        assert!(a < z, "keys sorted");
        assert!(j1.contains(r#""counters":{"#));
        assert!(j1.contains(r#""gauges":{"#));
        assert!(j1.contains(r#""histograms":{"#));
        assert!(j1.contains(r#""p99":42"#));
    }

    #[test]
    fn text_export_lists_every_series() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", "ops", 3);
        m.gauge_set("c", "w", 1.5);
        m.observe("c", "lat", 9);
        let text = m.to_string();
        assert!(text.contains("counter   c/ops = 3"));
        assert!(text.contains("gauge     c/w = 1.500"));
        assert!(text.contains("histogram c/lat count=1"));
    }
}
