//! Measurement primitives used by every experiment.
//!
//! - [`Counter`]: monotonically increasing event/byte counts.
//! - [`Histogram`]: log-linear latency histogram with exact mean/min/max and
//!   approximate percentiles (relative error bounded by the bucket width,
//!   ≈ 1/64 per octave).
//! - [`Throughput`]: bytes-and-operations accumulator that converts into
//!   MB/s and IO/s over a measured window, matching how the paper reports
//!   Iometer results (Table II, Figure 5).

use std::fmt;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const SUB_BUCKETS: u64 = 64; // buckets per octave => <=1.6% quantization

/// Log-linear histogram over `u64` samples (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use ustore_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 200, 300, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(100));
/// assert_eq!(h.max(), Some(400));
/// assert!((h.mean().unwrap() - 250.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<(u64, u64)>, // (bucket index, count), sorted by index
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

// Not derived: `min` starts at `u64::MAX` (sentinel for "no samples"), and
// a derived all-zeros Default would pin every histogram's observed min to 0.
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    // Bucket geometry is shared with the wall-clock profiler (`prof`),
    // which accumulates counts in atomic per-bucket slots and folds them
    // back through `record_n(bucket_mid(idx), count)`.
    pub(crate) fn bucket_index(v: u64) -> u64 {
        if v < SUB_BUCKETS {
            return v;
        }
        let octave = 63 - u64::from(v.leading_zeros()); // floor(log2 v) >= 6
        let shift = octave - 6; // keep top 7 bits: v >> shift is in [64, 128)
        let mantissa = (v >> shift) - SUB_BUCKETS;
        (octave - 5) * SUB_BUCKETS + mantissa
    }

    fn bucket_low(idx: u64) -> u64 {
        if idx < SUB_BUCKETS {
            return idx;
        }
        let octave = idx / SUB_BUCKETS + 5;
        let mantissa = idx % SUB_BUCKETS;
        (SUB_BUCKETS + mantissa) << (octave - 6)
    }

    /// Inclusive upper bound of a bucket (saturating at `u64::MAX`).
    fn bucket_high(idx: u64) -> u64 {
        if idx < SUB_BUCKETS {
            return idx;
        }
        let octave = idx / SUB_BUCKETS + 5;
        let mantissa = idx % SUB_BUCKETS;
        let high = u128::from(SUB_BUCKETS + mantissa + 1) << (octave - 6);
        (high - 1).min(u128::from(u64::MAX)) as u64
    }

    /// Midpoint of a bucket's value range (the least-biased point
    /// estimate for any sample that landed in it).
    pub(crate) fn bucket_mid(idx: u64) -> u64 {
        if idx < SUB_BUCKETS {
            return idx; // width-1 buckets are exact
        }
        let octave = idx / SUB_BUCKETS + 5;
        let mantissa = idx % SUB_BUCKETS;
        let low = u128::from(SUB_BUCKETS + mantissa) << (octave - 6);
        let high = u128::from(SUB_BUCKETS + mantissa + 1) << (octave - 6);
        ((low + high) / 2).min(u128::from(u64::MAX)) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = Self::bucket_index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records `n` occurrences of the same sample value in one call.
    ///
    /// Used when folding pre-aggregated data (e.g. the wall-clock
    /// profiler's atomic bucket counts) into a histogram without paying
    /// one `record` per original sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = Self::bucket_index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (idx, n)),
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Iterates occupied buckets as `(low, high, count)` with inclusive
    /// value bounds, ascending. Exporters use this for cumulative bucket
    /// output without re-deriving the bucket geometry.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(idx, c)| (Self::bucket_low(idx), Self::bucket_high(idx), c))
    }

    /// Approximate `q`-quantile (`0.0..=1.0`), if any samples exist.
    ///
    /// Returns the midpoint of the bucket holding the target rank (the
    /// low edge would bias estimates low by up to one bucket width),
    /// clamped to the exact observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The histogram of samples recorded since `base` (an earlier snapshot
    /// of this histogram): bucket counts, sample count and sum subtract.
    ///
    /// Exact window min/max are not recoverable from bucketed data, so the
    /// result bounds them by the surviving buckets' ranges intersected with
    /// this histogram's lifetime min/max.
    pub fn diff(&self, base: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for &(idx, c) in &self.buckets {
            let before = base
                .buckets
                .binary_search_by_key(&idx, |&(i, _)| i)
                .ok()
                .map_or(0, |p| base.buckets[p].1);
            if c > before {
                out.buckets.push((idx, c - before));
            }
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        if out.count > 0 {
            let first = out.buckets.first().map_or(0, |&(i, _)| Self::bucket_low(i));
            let last = out
                .buckets
                .last()
                .map_or(self.max, |&(i, _)| Self::bucket_high(i));
            out.min = first.max(self.min);
            out.max = last.min(self.max);
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for &(idx, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (idx, c)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets to empty.
    pub fn clear(&mut self) {
        *self = Histogram::new();
    }
}

/// Accumulates completed IO operations for throughput reporting.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ustore_sim::Throughput;
///
/// let mut t = Throughput::new();
/// t.complete(4096);
/// t.complete(4096);
/// let w = t.over(Duration::from_secs(1));
/// assert_eq!(w.ops_per_sec, 2.0);
/// assert!((w.mb_per_sec - 2.0 * 4096.0 / 1e6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Throughput {
    ops: u64,
    bytes: u64,
}

/// Throughput normalized over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRate {
    /// Completed operations per second (Iometer "IO/s").
    pub ops_per_sec: f64,
    /// Payload megabytes (10^6 bytes) per second (Iometer "MB/s").
    pub mb_per_sec: f64,
}

impl Throughput {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation of `bytes` payload.
    pub fn complete(&mut self, bytes: u64) {
        self.ops += 1;
        self.bytes += bytes;
    }

    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Normalizes over a measurement window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn over(&self, window: Duration) -> ThroughputRate {
        assert!(
            window > Duration::ZERO,
            "throughput window must be positive"
        );
        let secs = window.as_secs_f64();
        ThroughputRate {
            ops_per_sec: self.ops as f64 / secs,
            mb_per_sec: self.bytes as f64 / 1e6 / secs,
        }
    }

    /// Adds another accumulator's totals.
    pub fn merge(&mut self, other: Throughput) {
        self.ops += other.ops;
        self.bytes += other.bytes;
    }
}

impl fmt::Display for ThroughputRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} IO/s, {:.1} MB/s",
            self.ops_per_sec, self.mb_per_sec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(63));
    }

    #[test]
    fn histogram_quantile_accuracy() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1k..10M ns
        }
        // Bucket midpoints bound the relative error by half a bucket
        // width (1/128 per octave ≈ 0.8%), versus a full width for the
        // old low-edge estimate.
        let p50 = h.quantile(0.5).unwrap() as f64;
        assert!((p50 / 5_000_000.0 - 1.0).abs() < 0.01, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p99 / 9_900_000.0 - 1.0).abs() < 0.01, "p99 {p99}");
    }

    #[test]
    fn histogram_quantile_uses_bucket_midpoint() {
        // One sample deep in a wide bucket: the quantile is the bucket
        // midpoint clamped to the observed max.
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(
            h.quantile(0.5),
            Some(1_000_000),
            "clamped to the only sample"
        );
        // Two distinct samples sharing nothing: clamping keeps estimates
        // inside [min, max] while midpoints reduce in-bucket bias.
        let mut h2 = Histogram::new();
        h2.record(1000);
        h2.record(2000);
        let p50 = h2.quantile(0.5).unwrap();
        let idx = Histogram::bucket_index(1000);
        assert_eq!(p50, Histogram::bucket_mid(idx).clamp(1000, 2000));
    }

    #[test]
    fn histogram_diff_window() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let base = h.clone();
        h.record(300);
        h.record(400_000);
        let d = h.diff(&base);
        assert_eq!(d.count(), 2);
        let mean = d.mean().unwrap();
        assert!((mean - 200_150.0).abs() < 1.0, "window mean {mean}");
        assert!(d.min().unwrap() <= 300);
        assert!(d.max().unwrap() >= 300);
        // Diffing against itself yields an empty histogram.
        let z = h.diff(&h);
        assert_eq!(z.count(), 0);
        assert_eq!(z.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
    }

    #[test]
    fn histogram_record_duration() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.min(), Some(5_000));
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last || v < 64, "indices must be monotone");
            last = idx;
            let low = Histogram::bucket_low(idx);
            assert!(low <= v, "bucket low {low} must not exceed value {v}");
            // bucket width is <= value/32 for v >= 64
            if v >= 64 {
                assert!(v - low <= v / 32 + 1, "v={v} low={low}");
            }
        }
    }

    #[test]
    fn throughput_rates() {
        let mut t = Throughput::new();
        for _ in 0..100 {
            t.complete(1 << 22); // 4 MiB
        }
        let r = t.over(Duration::from_secs(2));
        assert_eq!(r.ops_per_sec, 50.0);
        assert!((r.mb_per_sec - 100.0 * (1 << 22) as f64 / 1e6 / 2.0).abs() < 1e-9);
        assert!(r.to_string().contains("IO/s"));
    }

    #[test]
    fn throughput_merge() {
        let mut a = Throughput::new();
        let mut b = Throughput::new();
        a.complete(10);
        b.complete(20);
        a.merge(b);
        assert_eq!(a.ops(), 2);
        assert_eq!(a.bytes(), 30);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn throughput_zero_window_panics() {
        Throughput::new().over(Duration::ZERO);
    }
}
