//! Conservative epoch-synchronized parallel discrete-event simulation.
//!
//! A simulation is partitioned into a fixed set of *worlds*, each a
//! single-threaded [`Sim`] with its own event queue, RNG stream, and
//! telemetry registries. Worlds only interact through explicitly routed
//! messages whose delivery is at least one *lookahead* in the future
//! (for the UStore stack: the network's `base_latency`). That bound makes
//! conservative synchronization safe: the coordinator runs all worlds in
//! lockstep epochs no longer than the lookahead, exchanges the buffered
//! cross-world messages at each barrier, and injects them into their
//! destination queues — by construction every exchanged message still
//! lies in the destination's future.
//!
//! Determinism is independent of both the number of executor shards and
//! thread scheduling because:
//!
//! 1. the world decomposition is fixed by the scenario (shard count only
//!    chooses how many OS threads execute the fixed worlds),
//! 2. each world's RNG stream is seeded from `(root_seed, world_id)` and
//!    consumed only by that world's single-threaded engine, and
//! 3. cross-world batches are merged in the canonical total order
//!    `(deliver_at, src_world, seq)` — see [`canonical_merge`] — which
//!    does not depend on gather order or thread finish order.

use std::any::Any;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Sim;
use crate::prof::{Phase, ProfTrack, Profiler};
use crate::time::SimTime;

/// A cross-world message captured at its source world, tagged with enough
/// metadata for the canonical merge at the epoch barrier.
#[derive(Debug, Clone)]
pub struct Routed<M> {
    /// Absolute delivery instant, computed at send time on the source
    /// world (includes serialization + propagation + jitter).
    pub deliver_at: SimTime,
    /// Source world id.
    pub src_world: usize,
    /// Destination world id.
    pub dst_world: usize,
    /// Per-source-world monotone sequence number (send order).
    pub seq: u64,
    /// The message itself.
    pub msg: M,
}

/// One world of a sharded simulation. Implementations own a [`Sim`] plus
/// whatever model state lives in it; they are *not* `Send` — each world is
/// constructed and driven on exactly one thread.
pub trait ShardWorld {
    /// The cross-world message type (must be sendable between threads).
    type Msg: Send + 'static;

    /// The world's engine.
    fn sim(&self) -> &Sim;

    /// Removes and returns every cross-world message buffered since the
    /// previous drain, in send order.
    fn drain_outbox(&mut self) -> Vec<Routed<Self::Msg>>;

    /// Injects messages destined for this world. The batch arrives in the
    /// canonical merge order and every `deliver_at` is at or after the
    /// world's current instant.
    fn deliver(&mut self, batch: Vec<Routed<Self::Msg>>);

    /// Consumes the world at the end of the run, returning its telemetry
    /// (downcast by the driver).
    fn finalize(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// Builder for a world that will live on a spawned worker thread. The
/// closure runs *on that thread* so the world never crosses threads.
pub type WorldBuilder<M> = Box<dyn FnOnce() -> Box<dyn ShardWorld<Msg = M>> + Send>;

/// Sorts cross-world messages into the canonical total order
/// `(deliver_at, src_world, seq)`.
///
/// `(src_world, seq)` is unique per message, so this is a total order and
/// the result is independent of the input permutation — in particular of
/// the order worker threads happened to finish the epoch.
pub fn canonical_merge<M>(mut msgs: Vec<Routed<M>>) -> Vec<Routed<M>> {
    msgs.sort_by_key(|r| (r.deliver_at, r.src_world, r.seq));
    msgs
}

enum Cmd<M> {
    /// Deliver the given batches (index-paired with the worker's worlds),
    /// then run every world to `until` and report the drained outbox plus
    /// the earliest still-pending event.
    Epoch {
        until: SimTime,
        batches: Vec<Vec<Routed<M>>>,
    },
    /// Finalize all worlds and ship their telemetry back.
    Finalize,
}

enum Reply<M> {
    /// Sent once after construction: initial outbox (builders may send
    /// during setup) and earliest pending event per the whole worker.
    Ready {
        outbox: Vec<Routed<M>>,
        next_event: Option<SimTime>,
    },
    EpochDone {
        outbox: Vec<Routed<M>>,
        next_event: Option<SimTime>,
    },
    Finalized(Vec<(usize, Box<dyn Any + Send>)>),
}

struct Worker<M> {
    cmd: Sender<Cmd<M>>,
    reply: Receiver<Reply<M>>,
    /// World ids hosted by this worker, in its local order.
    world_ids: Vec<usize>,
    handle: Option<JoinHandle<()>>,
}

/// Drives a fixed set of worlds — some on the calling thread, some on
/// worker threads — through conservative lookahead-bounded epochs.
///
/// The calling thread hosts the "local" worlds so the driver can keep
/// `Rc`-cloned handles into them (e.g. client libraries in a control
/// world) and interact with them between [`ShardCoordinator::run_until`]
/// calls.
pub struct ShardCoordinator<M: Send + 'static> {
    local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
    workers: Vec<Worker<M>>,
    lookahead: Duration,
    now: SimTime,
    /// Merged, canonical-order messages awaiting injection, keyed by
    /// destination world id.
    pending: Vec<Vec<Routed<M>>>,
    /// Earliest pending event per world, refreshed at every barrier.
    next_events: Vec<Option<SimTime>>,
    world_count: usize,
    epochs: u64,
    cross_messages: u64,
    /// Wall-clock profiler (inert unless built via [`Self::new_profiled`]
    /// with an active handle). Probes cost one `Option` branch when off.
    prof: Profiler,
    /// The coordinator thread's Perfetto track.
    track: ProfTrack,
    /// Reusable per-epoch busy-time scratch for the local worlds.
    local_busy: Vec<u64>,
}

impl<M: Send + 'static> ShardCoordinator<M> {
    /// Builds a coordinator from local worlds (calling thread) and one
    /// builder list per worker thread.
    ///
    /// World ids must be unique and dense in `0..world_count` where
    /// `world_count` is the total number of worlds across all shards.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero (there would be no safe epoch
    /// length) or if world ids are duplicated or out of range.
    pub fn new(
        lookahead: Duration,
        local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
        remote: Vec<Vec<(usize, WorldBuilder<M>)>>,
    ) -> Self {
        Self::new_profiled(lookahead, local, remote, Profiler::off())
    }

    /// Like [`Self::new`], but with a wall-clock [`Profiler`] attached.
    ///
    /// An active profiler times every engine phase (execute, outbox
    /// drain, barrier wait, merge, idle-jump) per world, records epoch
    /// statistics, and gives each engine thread a Perfetto track. Pass
    /// [`Profiler::off`] for zero overhead; profiling never touches
    /// simulation state, so results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn new_profiled(
        lookahead: Duration,
        local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
        remote: Vec<Vec<(usize, WorldBuilder<M>)>>,
        prof: Profiler,
    ) -> Self {
        assert!(
            lookahead > Duration::ZERO,
            "shard coordinator needs a positive lookahead"
        );
        prof.set_lookahead(lookahead);
        let world_count = local.len() + remote.iter().map(Vec::len).sum::<usize>();
        let mut seen = vec![false; world_count];
        for id in local
            .iter()
            .map(|(id, _)| *id)
            .chain(remote.iter().flatten().map(|(id, _)| *id))
        {
            assert!(id < world_count, "world id {id} out of range");
            assert!(!seen[id], "duplicate world id {id}");
            seen[id] = true;
        }

        let mut workers = Vec::with_capacity(remote.len());
        for (widx, worlds) in remote.into_iter().enumerate() {
            let world_ids: Vec<usize> = worlds.iter().map(|(id, _)| *id).collect();
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<M>>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply<M>>();
            let name = format!("sim-shard-{}", widx + 1);
            let worker_prof = prof.clone();
            let label = name.clone();
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_main(worlds, cmd_rx, reply_tx, worker_prof, label))
                .expect("spawn shard worker");
            workers.push(Worker {
                cmd: cmd_tx,
                reply: reply_rx,
                world_ids,
                handle: Some(handle),
            });
        }

        let track = prof.register_track("coordinator");
        let local_busy = vec![0u64; local.len()];
        let mut this = ShardCoordinator {
            local,
            workers,
            lookahead,
            now: SimTime::ZERO,
            pending: (0..world_count).map(|_| Vec::new()).collect(),
            next_events: vec![None; world_count],
            world_count,
            epochs: 0,
            cross_messages: 0,
            prof,
            track,
            local_busy,
        };
        // Collect construction-time sends and initial schedules so the
        // first barrier computation sees them.
        let mut outbox = Vec::new();
        for w in &this.workers {
            match w.reply.recv().expect("shard worker died during build") {
                Reply::Ready {
                    outbox: o,
                    next_event,
                } => {
                    outbox.extend(o);
                    for &id in &w.world_ids {
                        this.next_events[id] = next_event.min_opt(this.next_events[id]);
                    }
                }
                _ => unreachable!("worker sent non-Ready first reply"),
            }
        }
        this.absorb(outbox);
        this
    }

    /// Barrier instant reached so far (the merged clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of epochs executed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total cross-world messages exchanged.
    pub fn cross_messages(&self) -> u64 {
        self.cross_messages
    }

    /// Access to a local (calling-thread) world by id, if hosted here.
    pub fn local_world(&self, id: usize) -> Option<&dyn ShardWorld<Msg = M>> {
        self.local
            .iter()
            .find(|(wid, _)| *wid == id)
            .map(|(_, w)| w.as_ref())
    }

    /// Merges freshly drained messages into the per-destination pending
    /// queues, preserving the canonical order.
    fn absorb(&mut self, outbox: Vec<Routed<M>>) {
        if outbox.is_empty() {
            return;
        }
        self.cross_messages += outbox.len() as u64;
        for r in canonical_merge(outbox) {
            assert!(
                r.dst_world < self.world_count,
                "routed message to unknown world {}",
                r.dst_world
            );
            self.pending[r.dst_world].push(r);
        }
    }

    /// Picks the next barrier: normally `now + lookahead`, but when every
    /// world is idle until some instant `t > now` the coordinator jumps to
    /// `t + lookahead` (no world can generate a message delivering before
    /// then, because no world has anything to execute before `t`).
    fn next_barrier(&self, deadline: SimTime) -> SimTime {
        let mut min_next: Option<SimTime> = None;
        for ne in &self.next_events {
            min_next = ne.min_opt(min_next);
        }
        for batch in &self.pending {
            if let Some(first) = batch.first() {
                min_next = Some(first.deliver_at).min_opt(min_next);
            }
        }
        match min_next {
            None => deadline,
            Some(t) if t >= deadline => deadline,
            Some(t) => (t.max(self.now) + self.lookahead).min(deadline),
        }
    }

    /// Runs every world to `deadline` in lookahead-bounded epochs.
    pub fn run_until(&mut self, deadline: SimTime) {
        // The driver may have interacted with local worlds (e.g. issued
        // client calls) since the last barrier; pick up those sends and
        // schedules before computing the first barrier.
        let mut fresh = Vec::new();
        for (id, w) in &mut self.local {
            fresh.extend(w.drain_outbox());
            self.next_events[*id] = w.sim().next_event_at();
        }
        self.absorb(fresh);

        while self.now < deadline {
            let tb = self.prof.tick();
            let barrier = self.next_barrier(deadline);
            let idle_ns = self.prof.lap(tb);
            let idle_jump = barrier > self.now + self.lookahead;
            // Dispatch workers first so they run concurrently with the
            // local worlds.
            let td = self.prof.tick();
            for w in &self.workers {
                let batches: Vec<Vec<Routed<M>>> = w
                    .world_ids
                    .iter()
                    .map(|&id| std::mem::take(&mut self.pending[id]))
                    .collect();
                w.cmd
                    .send(Cmd::Epoch {
                        until: barrier,
                        batches,
                    })
                    .expect("shard worker channel closed");
            }
            let dispatch_ns = self.prof.lap(td);
            let mut outbox = Vec::new();
            for (i, (id, w)) in self.local.iter_mut().enumerate() {
                self.local_busy[i] = 0;
                let batch = std::mem::take(&mut self.pending[*id]);
                if !batch.is_empty() {
                    let t = self.prof.tick();
                    w.deliver(batch);
                    let ns = self.prof.lap(t);
                    self.prof.phase(*id, Phase::Merge, ns);
                    self.local_busy[i] += ns;
                }
                let t = self.prof.tick();
                let ev0 = t.map(|_| w.sim().events_processed());
                w.sim().run_until(barrier);
                if let Some(t0) = t {
                    let ns = self.prof.lap(t);
                    self.prof.phase(*id, Phase::Execute, ns);
                    self.prof
                        .epoch_events(*id, w.sim().events_processed() - ev0.unwrap_or(0));
                    self.track
                        .slice(Phase::Execute, *id, self.prof.offset_ns(t0), ns);
                    self.local_busy[i] += ns;
                }
                let t = self.prof.tick();
                let drained = w.drain_outbox();
                if t.is_some() {
                    let ns = self.prof.lap(t);
                    self.prof.phase(*id, Phase::OutboxDrain, ns);
                    self.local_busy[i] += ns;
                }
                for r in &drained {
                    debug_assert!(
                        r.deliver_at >= barrier,
                        "lookahead violation: deliver_at={:?} barrier={:?} src={} seq={}",
                        r.deliver_at,
                        barrier,
                        r.src_world,
                        r.seq
                    );
                }
                outbox.extend(drained);
                self.next_events[*id] = w.sim().next_event_at();
            }
            let tw = self.prof.tick();
            for w in &self.workers {
                match w.reply.recv().expect("shard worker died mid-epoch") {
                    Reply::EpochDone {
                        outbox: o,
                        next_event,
                    } => {
                        debug_assert!(
                            o.iter().all(|r| r.deliver_at >= barrier),
                            "cross-world message violates the lookahead bound"
                        );
                        for &id in &w.world_ids {
                            self.next_events[id] = None;
                        }
                        // Workers report one merged minimum; attribute it
                        // to the first hosted world (only the global min
                        // matters for the barrier computation).
                        if let Some(&first) = w.world_ids.first() {
                            self.next_events[first] = next_event;
                        }
                        outbox.extend(o);
                    }
                    _ => unreachable!("worker sent unexpected reply"),
                }
            }
            let wait_ns = self.prof.lap(tw);
            let tm = self.prof.tick();
            self.absorb(outbox);
            if tm.is_some() {
                let absorb_ns = self.prof.lap(tm);
                // Tile the coordinator's epoch into every local world's
                // slab: thread-level intervals (barrier computation,
                // dispatch, worker waits, the canonical merge) apply to
                // each hosted world, and time spent running a sibling
                // world counts as that world waiting. This makes each
                // world's phase sum approximate the epoch's wall time.
                let total_busy: u64 = self.local_busy.iter().sum();
                for (i, (id, _)) in self.local.iter().enumerate() {
                    self.prof.phase(*id, Phase::IdleJump, idle_ns);
                    self.prof.phase(*id, Phase::Merge, absorb_ns);
                    self.prof.phase(
                        *id,
                        Phase::BarrierWait,
                        dispatch_ns + wait_ns + (total_busy - self.local_busy[i]),
                    );
                }
                if let Some(w0) = tw {
                    self.track.slice(
                        Phase::BarrierWait,
                        usize::MAX,
                        self.prof.offset_ns(w0),
                        wait_ns,
                    );
                }
                self.prof.epoch(barrier.duration_since(self.now), idle_jump);
            }
            self.now = barrier;
            self.epochs += 1;
        }
    }

    /// Runs for `d` of virtual time past the current barrier.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Finalizes every world and returns `(world_id, telemetry)` sorted by
    /// world id. Consumes the coordinator; worker threads are joined.
    pub fn finalize(mut self) -> Vec<(usize, Box<dyn Any + Send>)> {
        let mut out: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
        for w in &self.workers {
            w.cmd
                .send(Cmd::Finalize)
                .expect("shard worker channel closed");
        }
        for w in &mut self.workers {
            match w.reply.recv().expect("shard worker died in finalize") {
                Reply::Finalized(list) => out.extend(list),
                _ => unreachable!("worker sent unexpected reply"),
            }
            if let Some(h) = w.handle.take() {
                h.join().expect("shard worker panicked");
            }
        }
        for (id, w) in self.local.drain(..) {
            out.push((id, w.finalize()));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

impl<M: Send + 'static> Drop for ShardCoordinator<M> {
    fn drop(&mut self) {
        // Dropping the Cmd senders ends each worker loop; join so no
        // detached thread outlives the coordinator (e.g. on panic paths).
        for w in &mut self.workers {
            let _ = &w.cmd;
        }
        let workers = std::mem::take(&mut self.workers);
        for mut w in workers {
            drop(w.cmd);
            drop(w.reply);
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Worker thread body: builds its worlds, reports readiness, then serves
/// epoch commands until the channel closes or finalize is requested.
///
/// With an active profiler the worker times each hosted world's merge,
/// execute and outbox-drain scopes, attributes channel waits (plus time
/// spent running sibling worlds) as barrier waits, and records execute /
/// wait slices on its own Perfetto track.
fn worker_main<M: Send + 'static>(
    worlds: Vec<(usize, WorldBuilder<M>)>,
    cmd: Receiver<Cmd<M>>,
    reply: Sender<Reply<M>>,
    prof: Profiler,
    label: String,
) {
    let mut built: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)> =
        worlds.into_iter().map(|(id, b)| (id, b())).collect();

    let mut outbox = Vec::new();
    let mut next_event: Option<SimTime> = None;
    for (_, w) in &mut built {
        outbox.extend(w.drain_outbox());
        next_event = w.sim().next_event_at().min_opt(next_event);
    }
    if reply.send(Reply::Ready { outbox, next_event }).is_err() {
        return;
    }

    let track = prof.register_track(label);
    let mut busy = vec![0u64; built.len()];
    let mut wait_start = prof.tick();
    while let Ok(c) = cmd.recv() {
        let wait_ns = prof.lap(wait_start);
        if let Some(w0) = wait_start {
            track.slice(Phase::BarrierWait, usize::MAX, prof.offset_ns(w0), wait_ns);
        }
        match c {
            Cmd::Epoch { until, batches } => {
                debug_assert_eq!(batches.len(), built.len());
                busy.iter_mut().for_each(|b| *b = 0);
                for (i, ((id, w), batch)) in built.iter_mut().zip(batches).enumerate() {
                    if !batch.is_empty() {
                        let t = prof.tick();
                        w.deliver(batch);
                        if t.is_some() {
                            let ns = prof.lap(t);
                            prof.phase(*id, Phase::Merge, ns);
                            busy[i] += ns;
                        }
                    }
                }
                let mut outbox = Vec::new();
                let mut next_event: Option<SimTime> = None;
                for (i, (id, w)) in built.iter_mut().enumerate() {
                    let t = prof.tick();
                    let ev0 = t.map(|_| w.sim().events_processed());
                    w.sim().run_until(until);
                    if let Some(t0) = t {
                        let ns = prof.lap(t);
                        prof.phase(*id, Phase::Execute, ns);
                        prof.epoch_events(*id, w.sim().events_processed() - ev0.unwrap_or(0));
                        track.slice(Phase::Execute, *id, prof.offset_ns(t0), ns);
                        busy[i] += ns;
                    }
                    let t = prof.tick();
                    outbox.extend(w.drain_outbox());
                    if t.is_some() {
                        let ns = prof.lap(t);
                        prof.phase(*id, Phase::OutboxDrain, ns);
                        busy[i] += ns;
                    }
                    next_event = w.sim().next_event_at().min_opt(next_event);
                }
                if prof.is_on() {
                    // Tile the epoch: each hosted world charges the
                    // channel wait plus its siblings' busy time as
                    // barrier wait, so per-world phase sums approximate
                    // this thread's wall time.
                    let total_busy: u64 = busy.iter().sum();
                    for (i, (id, _)) in built.iter().enumerate() {
                        prof.phase(*id, Phase::BarrierWait, wait_ns + (total_busy - busy[i]));
                    }
                }
                if reply.send(Reply::EpochDone { outbox, next_event }).is_err() {
                    return;
                }
            }
            Cmd::Finalize => {
                let list = built.drain(..).map(|(id, w)| (id, w.finalize())).collect();
                let _ = reply.send(Reply::Finalized(list));
                return;
            }
        }
        wait_start = prof.tick();
    }
}

/// `Option<SimTime>` minimum where `None` means "no pending event".
trait MinOpt {
    fn min_opt(self, other: Self) -> Self;
}

impl MinOpt for Option<SimTime> {
    fn min_opt(self, other: Self) -> Self {
        match (self, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A toy world: every `tick` it sends a token to the next world in the
    /// ring with delivery exactly one lookahead out; received tokens are
    /// accumulated into a checksum that also folds in the receive instant.
    struct RingWorld {
        id: usize,
        worlds: usize,
        sim: Sim,
        state: Rc<RefCell<RingState>>,
    }

    struct RingState {
        outbox: Vec<Routed<u64>>,
        seq: u64,
        checksum: u64,
        received: u64,
    }

    const LOOKAHEAD: Duration = Duration::from_micros(100);

    impl RingWorld {
        fn new(id: usize, worlds: usize, ticks: u32) -> Self {
            let sim = Sim::new(1000 + id as u64);
            let state = Rc::new(RefCell::new(RingState {
                outbox: Vec::new(),
                seq: 0,
                checksum: 0,
                received: 0,
            }));
            for k in 0..ticks {
                let st = state.clone();
                let at = SimTime::from_micros(30 + 70 * k as u64);
                sim.schedule_at(at, move |sim| {
                    let mut s = st.borrow_mut();
                    let seq = s.seq;
                    s.seq += 1;
                    s.outbox.push(Routed {
                        deliver_at: sim.now() + LOOKAHEAD,
                        src_world: id,
                        dst_world: (id + 1) % worlds,
                        seq,
                        msg: (id as u64) << 32 | seq,
                    });
                });
            }
            RingWorld {
                id,
                worlds,
                sim,
                state,
            }
        }
    }

    impl ShardWorld for RingWorld {
        type Msg = u64;

        fn sim(&self) -> &Sim {
            &self.sim
        }

        fn drain_outbox(&mut self) -> Vec<Routed<u64>> {
            std::mem::take(&mut self.state.borrow_mut().outbox)
        }

        fn deliver(&mut self, batch: Vec<Routed<u64>>) {
            for r in batch {
                assert_eq!(r.dst_world, self.id);
                assert!(r.deliver_at >= self.sim.now(), "delivery in the past");
                let st = self.state.clone();
                self.sim.schedule_at(r.deliver_at, move |sim| {
                    let mut s = st.borrow_mut();
                    s.received += 1;
                    s.checksum = s
                        .checksum
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(r.msg ^ sim.now().as_nanos());
                });
            }
        }

        fn finalize(self: Box<Self>) -> Box<dyn Any + Send> {
            let _ = self.worlds;
            let s = self.state.borrow();
            Box::new((s.checksum, s.received))
        }
    }

    fn run_ring(shards: usize) -> Vec<(u64, u64)> {
        const WORLDS: usize = 4;
        const TICKS: u32 = 25;
        let mut local: Vec<(usize, Box<dyn ShardWorld<Msg = u64>>)> = Vec::new();
        let mut remote: Vec<Vec<(usize, WorldBuilder<u64>)>> =
            (1..shards).map(|_| Vec::new()).collect();
        for id in 0..WORLDS {
            let shard = id % shards;
            if shard == 0 {
                local.push((id, Box::new(RingWorld::new(id, WORLDS, TICKS))));
            } else {
                remote[shard - 1].push((
                    id,
                    Box::new(move || {
                        Box::new(RingWorld::new(id, WORLDS, TICKS))
                            as Box<dyn ShardWorld<Msg = u64>>
                    }) as WorldBuilder<u64>,
                ));
            }
        }
        let mut coord = ShardCoordinator::new(LOOKAHEAD, local, remote);
        coord.run_until(SimTime::from_millis(10));
        assert!(coord.epochs() > 0);
        assert_eq!(coord.cross_messages(), WORLDS as u64 * TICKS as u64);
        coord
            .finalize()
            .into_iter()
            .map(|(_, t)| *t.downcast::<(u64, u64)>().expect("ring telemetry"))
            .collect()
    }

    #[test]
    fn ring_results_identical_for_any_shard_count() {
        let one = run_ring(1);
        assert_eq!(one.iter().map(|(_, r)| r).sum::<u64>(), 100);
        for shards in [2, 3, 4] {
            assert_eq!(one, run_ring(shards), "shards={shards} diverged");
        }
    }

    #[test]
    fn canonical_merge_is_permutation_invariant() {
        let msgs: Vec<Routed<u32>> = (0..64)
            .map(|i| Routed {
                deliver_at: SimTime::from_micros(100 + (i % 5) as u64),
                src_world: (i % 3) as usize,
                dst_world: ((i + 1) % 3) as usize,
                seq: (i / 3) as u64,
                msg: i,
            })
            .collect();
        let sorted = canonical_merge(msgs.clone());
        let mut reversed = msgs.clone();
        reversed.reverse();
        let resorted = canonical_merge(reversed);
        let key = |v: &[Routed<u32>]| -> Vec<(SimTime, usize, u64, u32)> {
            v.iter()
                .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
                .collect()
        };
        assert_eq!(key(&sorted), key(&resorted));
        for w in sorted.windows(2) {
            assert!(
                (w[0].deliver_at, w[0].src_world, w[0].seq)
                    < (w[1].deliver_at, w[1].src_world, w[1].seq)
            );
        }
    }

    #[test]
    fn merged_clock_jumps_idle_gaps() {
        // Two worlds, one event each, far apart: the run must not need
        // deadline/lookahead epochs.
        struct Sparse {
            sim: Sim,
        }
        impl ShardWorld for Sparse {
            type Msg = ();
            fn sim(&self) -> &Sim {
                &self.sim
            }
            fn drain_outbox(&mut self) -> Vec<Routed<()>> {
                Vec::new()
            }
            fn deliver(&mut self, _: Vec<Routed<()>>) {}
            fn finalize(self: Box<Self>) -> Box<dyn Any + Send> {
                Box::new(self.sim.events_processed())
            }
        }
        let mut local: Vec<(usize, Box<dyn ShardWorld<Msg = ()>>)> = Vec::new();
        for id in 0..2usize {
            let sim = Sim::new(id as u64);
            sim.schedule_at(SimTime::from_secs(5 + id as u64), |_| {});
            local.push((id, Box::new(Sparse { sim })));
        }
        let mut coord = ShardCoordinator::new(LOOKAHEAD, local, Vec::new());
        coord.run_until(SimTime::from_secs(60));
        // One epoch per event neighbourhood plus the final jump — far
        // fewer than the 600k a fixed 100 us cadence would need.
        assert!(coord.epochs() < 10, "epochs = {}", coord.epochs());
        assert_eq!(coord.now(), SimTime::from_secs(60));
    }
}
