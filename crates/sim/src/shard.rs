//! Conservative parallel discrete-event simulation with adaptive epochs.
//!
//! A simulation is partitioned into a fixed set of *worlds*, each a
//! single-threaded [`Sim`] with its own event queue, RNG stream, and
//! telemetry registries. Worlds only interact through explicitly routed
//! messages whose delivery is at least one *lookahead* in the future.
//! Unlike the original lockstep design (one global lookahead, one barrier
//! per lookahead interval), synchronization is driven by three pieces:
//!
//! * a per-world-pair [`LookaheadMatrix`] — the minimum latency any
//!   message from world `i` to world `j` can have, with unreachable pairs
//!   at `+∞` — derived from the network topology rather than a single
//!   global `base_latency`;
//! * an LBTS-style *epoch coalescing* scheduler: every world publishes
//!   its earliest pending event and the earliest undelivered inbound
//!   message, the coordinator solves the conservative fixpoint
//!   `E_i = min(Q_i, min_k(E_k + L[k][i]))` and grants each world a run
//!   bound `B_j = min(target, min_k(E_k + L[k][j]))` — so the engine
//!   jumps over dead air instead of stepping one lookahead at a time.
//!   Outer *windows* (the `epochs` counter) advance the global floor by a
//!   coalescing quantum of `256 ×` the smallest finite lookahead; inner
//!   *sync rounds* (the `sync_rounds` counter) iterate the fixpoint until
//!   every world's next work lies at or beyond the window target. Only
//!   worlds with runnable work are dispatched in a round — idle workers
//!   stay parked;
//! * a spin-then-park [`Gate`] rendezvous with zero-allocation message
//!   exchange: bounds and next-event times travel through atomics,
//!   batches through reusable per-world buffer slots that circulate by
//!   `mem::swap`, so the steady state allocates nothing per round.
//!
//! Determinism is independent of both the number of executor shards and
//! thread scheduling because:
//!
//! 1. the world decomposition is fixed by the scenario (shard count only
//!    chooses how many OS threads execute the fixed worlds),
//! 2. each world's RNG stream is seeded from `(root_seed, world_id)` and
//!    consumed only by that world's single-threaded engine,
//! 3. all scheduling decisions (fixpoint, bounds, active sets) are pure
//!    functions of deterministic simulation state — never of thread
//!    timing — and pending messages are injected into a world only in
//!    rounds where that world is active, regardless of which thread hosts
//!    it, and
//! 4. cross-world batches are sorted into the canonical total order
//!    `(deliver_at, src_world, seq)` — see [`canonical_sort`] — by the
//!    owning thread at injection time, which does not depend on gather
//!    order or thread finish order.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Sim;
use crate::prof::{Phase, ProfTrack, Profiler};
use crate::time::SimTime;

/// Sentinel for "no event / unreachable" in nanosecond timelines.
const NEVER: u64 = u64::MAX;

fn ns_opt(t: Option<SimTime>) -> u64 {
    t.map_or(NEVER, |t| t.as_nanos())
}

/// A cross-world message captured at its source world, tagged with enough
/// metadata for the canonical merge at the epoch barrier.
#[derive(Debug, Clone)]
pub struct Routed<M> {
    /// Absolute delivery instant, computed at send time on the source
    /// world (includes serialization + propagation + jitter).
    pub deliver_at: SimTime,
    /// Source world id.
    pub src_world: usize,
    /// Destination world id.
    pub dst_world: usize,
    /// Per-source-world monotone sequence number (send order).
    pub seq: u64,
    /// The message itself.
    pub msg: M,
}

/// Per-world-pair minimum cross-world latency: `L[src][dst]` is a lower
/// bound on `deliver_at − send_at` for any message from `src` to `dst`,
/// and `+∞` (absent) for pairs that can never exchange messages.
///
/// The matrix is what makes adaptive epochs safe: the coordinator's LBTS
/// fixpoint relaxes only finite edges, so a pair that cannot talk never
/// constrains either side's run bound, and a sparse topology (e.g. the
/// star control-plane pattern of the sharded pod) yields far longer
/// epochs than one global lookahead.
///
/// Every finite entry must be strictly positive — a zero lookahead would
/// admit same-instant feedback loops and stall the fixpoint.
#[derive(Debug, Clone)]
pub struct LookaheadMatrix {
    worlds: usize,
    /// Row-major `worlds × worlds` nanosecond entries; `NEVER` encodes
    /// "unreachable". The diagonal is always `NEVER` (worlds do not route
    /// messages to themselves).
    ns: Vec<u64>,
}

impl LookaheadMatrix {
    /// A matrix with no reachable pairs (start here and [`Self::set`]
    /// the edges the topology allows).
    pub fn disconnected(worlds: usize) -> Self {
        LookaheadMatrix {
            worlds,
            ns: vec![NEVER; worlds * worlds],
        }
    }

    /// Every ordered pair of distinct worlds reachable with the same
    /// lookahead — the behaviour of the original single-lookahead engine.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    pub fn uniform(worlds: usize, lookahead: Duration) -> Self {
        let mut m = Self::disconnected(worlds);
        for src in 0..worlds {
            for dst in 0..worlds {
                if src != dst {
                    m.set(src, dst, lookahead);
                }
            }
        }
        m
    }

    /// Builds the matrix from a reachability predicate: every ordered
    /// pair `(src, dst)` with `src != dst` and `reachable(src, dst)` gets
    /// `min_latency`; everything else stays unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `min_latency` is zero.
    pub fn from_reachability(
        worlds: usize,
        min_latency: Duration,
        reachable: impl Fn(usize, usize) -> bool,
    ) -> Self {
        let mut m = Self::disconnected(worlds);
        for src in 0..worlds {
            for dst in 0..worlds {
                if src != dst && reachable(src, dst) {
                    m.set(src, dst, min_latency);
                }
            }
        }
        m
    }

    /// Declares `src → dst` reachable with the given minimum latency.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either id is out of range, or `lookahead`
    /// is zero.
    pub fn set(&mut self, src: usize, dst: usize, lookahead: Duration) {
        assert!(src != dst, "worlds do not route to themselves");
        assert!(
            src < self.worlds && dst < self.worlds,
            "world id out of range"
        );
        assert!(
            lookahead > Duration::ZERO,
            "lookahead matrix entries must be positive"
        );
        self.ns[src * self.worlds + dst] = lookahead.as_nanos() as u64;
    }

    /// Number of worlds the matrix covers.
    pub fn worlds(&self) -> usize {
        self.worlds
    }

    /// The `src → dst` lookahead in nanoseconds, `u64::MAX` when
    /// unreachable.
    pub fn get_ns(&self, src: usize, dst: usize) -> u64 {
        self.ns[src * self.worlds + dst]
    }

    /// Whether `src` can ever deliver a message to `dst`.
    pub fn reachable(&self, src: usize, dst: usize) -> bool {
        self.get_ns(src, dst) != NEVER
    }

    /// The smallest finite lookahead across all reachable pairs, `None`
    /// for a fully disconnected matrix.
    pub fn min_finite(&self) -> Option<Duration> {
        self.ns
            .iter()
            .copied()
            .filter(|&v| v != NEVER)
            .min()
            .map(Duration::from_nanos)
    }
}

/// One world of a sharded simulation. Implementations own a [`Sim`] plus
/// whatever model state lives in it; they are *not* `Send` — each world is
/// constructed and driven on exactly one thread.
pub trait ShardWorld {
    /// The cross-world message type (must be sendable between threads).
    type Msg: Send + 'static;

    /// The world's engine.
    fn sim(&self) -> &Sim;

    /// Appends every cross-world message buffered since the previous
    /// drain to `out`, in send order, leaving the internal buffer empty
    /// (capacity preserved so the steady state allocates nothing).
    fn drain_outbox_into(&mut self, out: &mut Vec<Routed<Self::Msg>>);

    /// Injects messages destined for this world, draining `batch` (the
    /// caller recycles its capacity). The batch arrives in the canonical
    /// merge order and every `deliver_at` is at or after the world's
    /// current instant.
    fn deliver(&mut self, batch: &mut Vec<Routed<Self::Msg>>);

    /// Consumes the world at the end of the run, returning its telemetry
    /// (downcast by the driver).
    fn finalize(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// Builder for a world that will live on a spawned worker thread. The
/// closure runs *on that thread* so the world never crosses threads.
pub type WorldBuilder<M> = Box<dyn FnOnce() -> Box<dyn ShardWorld<Msg = M>> + Send>;

/// Sorts cross-world messages into the canonical total order
/// `(deliver_at, src_world, seq)` in place.
///
/// `(src_world, seq)` is unique per message, so this is a total order:
/// an unstable sort is observationally stable and the result is
/// independent of the input permutation — in particular of the order
/// worker threads happened to finish a round.
pub fn canonical_sort<M>(msgs: &mut [Routed<M>]) {
    msgs.sort_unstable_by_key(|r| (r.deliver_at, r.src_world, r.seq));
}

/// Sorts cross-world messages into the canonical total order
/// `(deliver_at, src_world, seq)` (allocating convenience wrapper around
/// [`canonical_sort`]).
pub fn canonical_merge<M>(mut msgs: Vec<Routed<M>>) -> Vec<Routed<M>> {
    canonical_sort(&mut msgs);
    msgs
}

/// A reusable one-shot rendezvous: `open` publishes a new generation,
/// `wait` spins briefly (cheap when the other side is about to arrive)
/// and then parks on a condvar.
///
/// The generation counter makes the gate sense-reversing without a
/// separate phase flag: each waiter tracks the last generation it saw and
/// wakes when the counter moves past it. `open`/`wait` use `SeqCst` on
/// the counter and the sleeper count so the "check sleepers after
/// bumping seq" / "register sleeper then re-check seq under the lock"
/// pair can never miss a wakeup, and the `SeqCst` bump doubles as the
/// release/acquire edge ordering the relaxed payload atomics around it.
struct Gate {
    seq: AtomicU64,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            seq: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Opens the gate for the next generation, waking any parked waiter.
    fn open(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Waits until the generation moves past `seen`; returns the new
    /// generation for the next wait.
    fn wait(&self, seen: u64) -> u64 {
        for _ in 0..64 {
            let cur = self.seq.load(Ordering::Acquire);
            if cur != seen {
                return cur;
            }
            std::hint::spin_loop();
        }
        for _ in 0..32 {
            let cur = self.seq.load(Ordering::Acquire);
            if cur != seen {
                return cur;
            }
            std::thread::yield_now();
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut g = self.lock.lock().unwrap();
        while self.seq.load(Ordering::SeqCst) == seen {
            g = self.cv.wait(g).unwrap();
        }
        drop(g);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.seq.load(Ordering::Acquire)
    }
}

/// Coordinator↔worker rendezvous pair: the coordinator opens `go` after
/// publishing a round, the worker opens `done` after finishing it.
struct WorkerGates {
    go: Gate,
    done: Gate,
}

/// Lock-free-ish state shared between the coordinator and every worker.
/// Bounds and next-event times are relaxed atomics (ordered by the gate
/// generations); message batches travel through per-world mutex slots
/// whose buffers circulate by `mem::swap` so no round allocates.
struct Shared<M> {
    /// Per-world run bound (ns) for the current round; `NEVER` means the
    /// world is not active this round.
    bounds: Vec<AtomicU64>,
    /// Per-world earliest pending event (ns), republished by the owner
    /// after every round it runs.
    next_events: Vec<AtomicU64>,
    /// Coordinator → owner batch slot (canonically unsorted; the owner
    /// sorts at injection).
    inboxes: Vec<Mutex<Vec<Routed<M>>>>,
    /// Owner → coordinator batch slot (drained every round the world ran).
    outboxes: Vec<Mutex<Vec<Routed<M>>>>,
    /// Set once before the final `go` to make workers finalize.
    stop: AtomicBool,
}

enum Reply {
    /// Sent once after construction; the initial outbox and next-event
    /// publication goes through the shared slots/atomics.
    Ready,
    Finalized(Vec<(usize, Box<dyn Any + Send>)>),
}

struct Worker {
    gates: Arc<WorkerGates>,
    /// Last `done` generation observed (strict ping-pong with `go`).
    done_seen: u64,
    reply: Receiver<Reply>,
    /// World ids hosted by this worker, in its local order.
    world_ids: Vec<usize>,
    handle: Option<JoinHandle<()>>,
}

/// Drives a fixed set of worlds — some on the calling thread, some on
/// worker threads — through adaptive conservative epochs.
///
/// The calling thread hosts the "local" worlds so the driver can keep
/// `Rc`-cloned handles into them (e.g. client libraries in a control
/// world) and interact with them between [`ShardCoordinator::run_until`]
/// calls.
pub struct ShardCoordinator<M: Send + 'static> {
    local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
    workers: Vec<Worker>,
    shared: Arc<Shared<M>>,
    /// `in_edges[dst] = (src, lookahead_ns)` for every finite matrix
    /// entry — the only edges the fixpoint ever relaxes.
    in_edges: Vec<Vec<(usize, u64)>>,
    /// Window length scale: `256 ×` the smallest finite lookahead
    /// (`NEVER` for a fully disconnected matrix — the whole run becomes
    /// one window).
    quantum_ns: u64,
    now: SimTime,
    /// Per-world bound granted so far (ns): the instant up to which the
    /// world is known complete. Run bounds are clamped to at least this.
    clocks: Vec<u64>,
    /// Undelivered messages per destination world, in arrival order
    /// (sorted canonically by the owner at injection time).
    pending: Vec<Vec<Routed<M>>>,
    /// Earliest `deliver_at` in `pending`, `NEVER` when empty.
    pending_min: Vec<u64>,
    /// Coordinator-side cache of each world's earliest pending event.
    next_events: Vec<u64>,
    /// Fixpoint scratch: `E_i`, per-round bounds, active set, and which
    /// workers were dispatched this round.
    est: Vec<u64>,
    round_bounds: Vec<u64>,
    active: Vec<bool>,
    dispatched: Vec<bool>,
    /// Reusable gather buffer for freshly drained cross-world messages.
    gather: Vec<Routed<M>>,
    world_count: usize,
    epochs: u64,
    sync_rounds: u64,
    cross_messages: u64,
    /// Wall-clock profiler (inert unless built via [`Self::new_profiled`]
    /// with an active handle). Probes cost one `Option` branch when off.
    prof: Profiler,
    /// The coordinator thread's Perfetto track.
    track: ProfTrack,
    /// Reusable per-round busy-time scratch for the local worlds.
    local_busy: Vec<u64>,
}

impl<M: Send + 'static> ShardCoordinator<M> {
    /// Builds a coordinator with a uniform lookahead matrix — every pair
    /// of worlds reachable at `lookahead`, the behaviour of the original
    /// lockstep engine (but with adaptive epoch scheduling).
    ///
    /// World ids must be unique and dense in `0..world_count` where
    /// `world_count` is the total number of worlds across all shards.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero (there would be no safe epoch
    /// length) or if world ids are duplicated or out of range.
    pub fn new(
        lookahead: Duration,
        local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
        remote: Vec<Vec<(usize, WorldBuilder<M>)>>,
    ) -> Self {
        Self::new_profiled(lookahead, local, remote, Profiler::off())
    }

    /// Like [`Self::new`], but with a wall-clock [`Profiler`] attached.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn new_profiled(
        lookahead: Duration,
        local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
        remote: Vec<Vec<(usize, WorldBuilder<M>)>>,
        prof: Profiler,
    ) -> Self {
        assert!(
            lookahead > Duration::ZERO,
            "shard coordinator needs a positive lookahead"
        );
        let world_count = local.len() + remote.iter().map(Vec::len).sum::<usize>();
        let matrix = Arc::new(LookaheadMatrix::uniform(world_count, lookahead));
        Self::with_matrix(matrix, local, remote, prof)
    }

    /// Builds a coordinator with an explicit per-pair [`LookaheadMatrix`]
    /// and a wall-clock [`Profiler`].
    ///
    /// An active profiler times every engine phase (execute, outbox
    /// drain, barrier wait, merge, idle-jump) per world, records window
    /// and sync-round statistics, and gives each engine thread a Perfetto
    /// track. Pass [`Profiler::off`] for zero overhead; profiling never
    /// touches simulation state, so results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not cover exactly the coordinator's
    /// worlds or if world ids are duplicated or out of range.
    pub fn with_matrix(
        matrix: Arc<LookaheadMatrix>,
        local: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)>,
        remote: Vec<Vec<(usize, WorldBuilder<M>)>>,
        prof: Profiler,
    ) -> Self {
        let world_count = local.len() + remote.iter().map(Vec::len).sum::<usize>();
        assert_eq!(
            matrix.worlds(),
            world_count,
            "lookahead matrix must cover exactly the coordinator's worlds"
        );
        if let Some(min) = matrix.min_finite() {
            prof.set_lookahead(min);
        }
        let mut seen = vec![false; world_count];
        for id in local
            .iter()
            .map(|(id, _)| *id)
            .chain(remote.iter().flatten().map(|(id, _)| *id))
        {
            assert!(id < world_count, "world id {id} out of range");
            assert!(!seen[id], "duplicate world id {id}");
            seen[id] = true;
        }

        let shared = Arc::new(Shared {
            bounds: (0..world_count).map(|_| AtomicU64::new(NEVER)).collect(),
            next_events: (0..world_count).map(|_| AtomicU64::new(NEVER)).collect(),
            inboxes: (0..world_count).map(|_| Mutex::new(Vec::new())).collect(),
            outboxes: (0..world_count).map(|_| Mutex::new(Vec::new())).collect(),
            stop: AtomicBool::new(false),
        });

        let mut workers = Vec::with_capacity(remote.len());
        for (widx, worlds) in remote.into_iter().enumerate() {
            let world_ids: Vec<usize> = worlds.iter().map(|(id, _)| *id).collect();
            let gates = Arc::new(WorkerGates {
                go: Gate::new(),
                done: Gate::new(),
            });
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let name = format!("sim-shard-{}", widx + 1);
            let label = name.clone();
            let worker_shared = shared.clone();
            let worker_gates = gates.clone();
            let worker_prof = prof.clone();
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    worker_main(
                        worlds,
                        worker_shared,
                        worker_gates,
                        reply_tx,
                        worker_prof,
                        label,
                    )
                })
                .expect("spawn shard worker");
            workers.push(Worker {
                gates,
                done_seen: 0,
                reply: reply_rx,
                world_ids,
                handle: Some(handle),
            });
        }

        let mut in_edges: Vec<Vec<(usize, u64)>> = vec![Vec::new(); world_count];
        for src in 0..world_count {
            for (dst, edges) in in_edges.iter_mut().enumerate() {
                let l = matrix.get_ns(src, dst);
                if l != NEVER {
                    edges.push((src, l));
                }
            }
        }
        let quantum_ns = matrix
            .min_finite()
            .map_or(NEVER, |d| (d.as_nanos() as u64).saturating_mul(256));

        let track = prof.register_track("coordinator");
        let local_busy = vec![0u64; local.len()];
        let worker_count = workers.len();
        let mut this = ShardCoordinator {
            local,
            workers,
            shared,
            in_edges,
            quantum_ns,
            now: SimTime::ZERO,
            clocks: vec![0; world_count],
            pending: (0..world_count).map(|_| Vec::new()).collect(),
            pending_min: vec![NEVER; world_count],
            next_events: vec![NEVER; world_count],
            est: vec![NEVER; world_count],
            round_bounds: vec![NEVER; world_count],
            active: vec![false; world_count],
            dispatched: vec![false; worker_count],
            gather: Vec::new(),
            world_count,
            epochs: 0,
            sync_rounds: 0,
            cross_messages: 0,
            prof,
            track,
            local_busy,
        };
        // Collect construction-time sends and initial schedules so the
        // first window computation sees them. Workers publish through the
        // shared slots/atomics before sending Ready (the channel provides
        // the happens-before edge).
        for w in &this.workers {
            match w.reply.recv().expect("shard worker died during build") {
                Reply::Ready => {}
                _ => unreachable!("worker sent non-Ready first reply"),
            }
        }
        for w in &this.workers {
            for &id in &w.world_ids {
                this.next_events[id] = this.shared.next_events[id].load(Ordering::Relaxed);
                let mut slot = this.shared.outboxes[id].lock().unwrap();
                this.gather.append(&mut slot);
            }
        }
        for li in 0..this.local.len() {
            let id = this.local[li].0;
            this.local[li].1.drain_outbox_into(&mut this.gather);
            this.next_events[id] = ns_opt(this.local[li].1.sim().next_event_at());
        }
        this.route();
        this
    }

    /// Window floor reached so far (the merged clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of epoch windows executed (each window advances the global
    /// floor by up to one coalescing quantum, or jumps over dead air).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of inner synchronization rounds executed across all
    /// windows (each round runs the currently-runnable worlds to their
    /// conservative bounds and exchanges messages once).
    pub fn sync_rounds(&self) -> u64 {
        self.sync_rounds
    }

    /// Total cross-world messages exchanged.
    pub fn cross_messages(&self) -> u64 {
        self.cross_messages
    }

    /// Access to a local (calling-thread) world by id, if hosted here.
    pub fn local_world(&self, id: usize) -> Option<&dyn ShardWorld<Msg = M>> {
        self.local
            .iter()
            .find(|(wid, _)| *wid == id)
            .map(|(_, w)| w.as_ref())
    }

    /// Routes freshly gathered messages into the per-destination pending
    /// queues (unsorted — the owning thread sorts at injection time).
    fn route(&mut self) {
        self.cross_messages += self.gather.len() as u64;
        for r in self.gather.drain(..) {
            assert!(
                r.dst_world < self.world_count,
                "routed message to unknown world {}",
                r.dst_world
            );
            let d = r.deliver_at.as_nanos();
            if d < self.pending_min[r.dst_world] {
                self.pending_min[r.dst_world] = d;
            }
            self.pending[r.dst_world].push(r);
        }
    }

    /// Runs every world to `deadline` through adaptive epoch windows.
    pub fn run_until(&mut self, deadline: SimTime) {
        // The driver may have interacted with local worlds (e.g. issued
        // client calls) since the last window; pick up those sends and
        // schedules before planning.
        for li in 0..self.local.len() {
            let id = self.local[li].0;
            self.local[li].1.drain_outbox_into(&mut self.gather);
            self.next_events[id] = ns_opt(self.local[li].1.sim().next_event_at());
        }
        self.route();

        let deadline_ns = deadline.as_nanos();
        while self.now < deadline {
            let floor = self.now.as_nanos();
            let mut min_e = NEVER;
            for i in 0..self.world_count {
                let q = self.next_events[i].min(self.pending_min[i]);
                if q < min_e {
                    min_e = q;
                }
            }
            // Window target: jump straight to the first runnable instant
            // (skipping dead air), then cover one coalescing quantum.
            let target = if min_e >= deadline_ns {
                deadline_ns
            } else {
                min_e
                    .max(floor)
                    .saturating_add(self.quantum_ns)
                    .min(deadline_ns)
            };
            // An idle-jump window leapt more than one quantum past the
            // floor — the scheduler skipped dead air rather than rolling
            // through it.
            let idle_jump = min_e > floor.saturating_add(self.quantum_ns);

            let rounds = self.run_window(target);
            for c in &mut self.clocks {
                *c = (*c).max(target);
            }
            self.prof
                .epoch(Duration::from_nanos(target - floor), idle_jump);
            self.prof.add_sync_rounds(rounds);
            self.sync_rounds += rounds;
            self.epochs += 1;
            self.now = SimTime::from_nanos(target);
        }

        // Align the local engines' clocks with the merged clock so the
        // driver observes `sim().now() == deadline` between calls. No
        // events execute here (the window loop cleared everything at or
        // before the deadline).
        for li in 0..self.local.len() {
            let _ = self.local[li].1.sim().run_until(deadline);
        }
    }

    /// Runs inner synchronization rounds until every world's next work
    /// lies at or beyond `target`. Returns the number of rounds.
    fn run_window(&mut self, target: u64) -> u64 {
        let mut rounds = 0u64;
        loop {
            // --- plan: LBTS fixpoint + per-world bounds + active set ---
            let tp = self.prof.tick();
            for i in 0..self.world_count {
                self.est[i] = self.next_events[i].min(self.pending_min[i]);
            }
            loop {
                let mut changed = false;
                for dst in 0..self.world_count {
                    let mut e = self.est[dst];
                    for &(src, l) in &self.in_edges[dst] {
                        let cand = self.est[src].saturating_add(l);
                        if cand < e {
                            e = cand;
                        }
                    }
                    if e < self.est[dst] {
                        self.est[dst] = e;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut any_active = false;
            for j in 0..self.world_count {
                let mut r = NEVER;
                for &(src, l) in &self.in_edges[j] {
                    let cand = self.est[src].saturating_add(l);
                    if cand < r {
                        r = cand;
                    }
                }
                let b = target.min(r).max(self.clocks[j]);
                self.round_bounds[j] = b;
                let q = self.next_events[j].min(self.pending_min[j]);
                let a = q <= b;
                self.active[j] = a;
                any_active |= a;
            }
            let plan_ns = self.prof.lap(tp);
            if !any_active {
                if plan_ns > 0 {
                    for (id, _) in &self.local {
                        self.prof.phase(*id, Phase::IdleJump, plan_ns);
                    }
                }
                return rounds;
            }
            rounds += 1;

            // --- dispatch: publish bounds, hand over batches, open go ---
            let td = self.prof.tick();
            for j in 0..self.world_count {
                let b = if self.active[j] {
                    self.round_bounds[j]
                } else {
                    NEVER
                };
                self.shared.bounds[j].store(b, Ordering::Relaxed);
            }
            for (wi, w) in self.workers.iter().enumerate() {
                let mut any = false;
                for &id in &w.world_ids {
                    any |= self.active[id];
                }
                self.dispatched[wi] = any;
                if !any {
                    continue;
                }
                for &id in &w.world_ids {
                    if self.active[id] && !self.pending[id].is_empty() {
                        let mut slot = self.shared.inboxes[id].lock().unwrap();
                        std::mem::swap(&mut *slot, &mut self.pending[id]);
                        self.pending_min[id] = NEVER;
                    }
                }
                w.gates.go.open();
            }
            let dispatch_ns = self.prof.lap(td);

            // --- run the active local worlds while workers execute ---
            for li in 0..self.local.len() {
                self.local_busy[li] = 0;
                let id = self.local[li].0;
                if !self.active[id] {
                    continue;
                }
                let bound_ns = self.round_bounds[id];
                if !self.pending[id].is_empty() {
                    let mut batch = std::mem::take(&mut self.pending[id]);
                    self.pending_min[id] = NEVER;
                    let t = self.prof.tick();
                    canonical_sort(&mut batch);
                    self.local[li].1.deliver(&mut batch);
                    debug_assert!(batch.is_empty(), "deliver must drain the batch");
                    if t.is_some() {
                        let ns = self.prof.lap(t);
                        self.prof.phase(id, Phase::Merge, ns);
                        self.local_busy[li] += ns;
                    }
                    self.pending[id] = batch;
                }
                let t = self.prof.tick();
                let events = self.local[li]
                    .1
                    .sim()
                    .run_until(SimTime::from_nanos(bound_ns));
                if let Some(t0) = t {
                    let ns = self.prof.lap(t);
                    self.prof.phase(id, Phase::Execute, ns);
                    self.prof.epoch_events(id, events);
                    self.track
                        .slice(Phase::Execute, id, self.prof.offset_ns(t0), ns);
                    self.local_busy[li] += ns;
                }
                let t = self.prof.tick();
                self.local[li].1.drain_outbox_into(&mut self.gather);
                if t.is_some() {
                    let ns = self.prof.lap(t);
                    self.prof.phase(id, Phase::OutboxDrain, ns);
                    self.local_busy[li] += ns;
                }
                self.next_events[id] = ns_opt(self.local[li].1.sim().next_event_at());
                self.clocks[id] = bound_ns;
            }

            // --- wait for the dispatched workers ---
            let tw = self.prof.tick();
            for wi in 0..self.workers.len() {
                if !self.dispatched[wi] {
                    continue;
                }
                let w = &mut self.workers[wi];
                w.done_seen = w.gates.done.wait(w.done_seen);
            }
            let wait_ns = self.prof.lap(tw);
            if let Some(w0) = tw {
                self.track.slice(
                    Phase::BarrierWait,
                    usize::MAX,
                    self.prof.offset_ns(w0),
                    wait_ns,
                );
            }

            // --- collect the workers' results ---
            let tc = self.prof.tick();
            for (wi, w) in self.workers.iter().enumerate() {
                if !self.dispatched[wi] {
                    continue;
                }
                for &id in &w.world_ids {
                    if !self.active[id] {
                        continue;
                    }
                    self.next_events[id] = self.shared.next_events[id].load(Ordering::Relaxed);
                    self.clocks[id] = self.round_bounds[id];
                    let mut slot = self.shared.outboxes[id].lock().unwrap();
                    self.gather.append(&mut slot);
                }
            }
            self.route();
            let collect_ns = self.prof.lap(tc);

            // Tile the coordinator's round into every local world's slab:
            // thread-level intervals (planning, dispatch, worker waits,
            // collection) apply to each hosted world, and time spent
            // running a sibling world counts as that world waiting. This
            // makes each world's phase sum approximate the round's wall
            // time.
            if self.prof.is_on() {
                let total_busy: u64 = self.local_busy.iter().sum();
                for (li, (id, _)) in self.local.iter().enumerate() {
                    self.prof.phase(*id, Phase::IdleJump, plan_ns);
                    self.prof.phase(*id, Phase::Merge, collect_ns);
                    self.prof.phase(
                        *id,
                        Phase::BarrierWait,
                        dispatch_ns + wait_ns + (total_busy - self.local_busy[li]),
                    );
                }
            }
        }
    }

    /// Runs for `d` of virtual time past the current window floor.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Finalizes every world and returns `(world_id, telemetry)` sorted by
    /// world id. Consumes the coordinator; worker threads are joined.
    pub fn finalize(mut self) -> Vec<(usize, Box<dyn Any + Send>)> {
        let mut out: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
        self.shared.stop.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.gates.go.open();
        }
        for w in &mut self.workers {
            match w.reply.recv().expect("shard worker died in finalize") {
                Reply::Finalized(list) => out.extend(list),
                _ => unreachable!("worker sent unexpected reply"),
            }
            if let Some(h) = w.handle.take() {
                h.join().expect("shard worker panicked");
            }
        }
        for (id, w) in self.local.drain(..) {
            out.push((id, w.finalize()));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

impl<M: Send + 'static> Drop for ShardCoordinator<M> {
    fn drop(&mut self) {
        // Waking every worker with the stop flag set ends its loop; join
        // so no detached thread outlives the coordinator (e.g. on panic
        // paths). `finalize` leaves `workers` with taken handles, so this
        // is a no-op after a clean shutdown.
        self.shared.stop.store(true, Ordering::SeqCst);
        let workers = std::mem::take(&mut self.workers);
        for mut w in workers {
            w.gates.go.open();
            drop(w.reply);
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Worker thread body: builds its worlds, publishes their initial state
/// through the shared slots, then serves rounds each time its `go` gate
/// opens until the stop flag is raised.
///
/// With an active profiler the worker times each hosted world's merge,
/// execute and outbox-drain scopes, attributes gate waits (plus time
/// spent running sibling worlds) as barrier waits, and records execute /
/// wait slices on its own Perfetto track.
fn worker_main<M: Send + 'static>(
    worlds: Vec<(usize, WorldBuilder<M>)>,
    shared: Arc<Shared<M>>,
    gates: Arc<WorkerGates>,
    reply: Sender<Reply>,
    prof: Profiler,
    label: String,
) {
    let mut built: Vec<(usize, Box<dyn ShardWorld<Msg = M>>)> =
        worlds.into_iter().map(|(id, b)| (id, b())).collect();

    // Publish construction-time sends and initial schedules; the Ready
    // reply is the happens-before edge the coordinator reads them behind.
    let mut outbuf: Vec<Routed<M>> = Vec::new();
    for (id, w) in &mut built {
        w.drain_outbox_into(&mut outbuf);
        if !outbuf.is_empty() {
            let mut slot = shared.outboxes[*id].lock().unwrap();
            slot.append(&mut outbuf);
        }
        shared.next_events[*id].store(ns_opt(w.sim().next_event_at()), Ordering::Relaxed);
    }
    if reply.send(Reply::Ready).is_err() {
        return;
    }

    let track = prof.register_track(label);
    let mut inbuf: Vec<Routed<M>> = Vec::new();
    let mut busy = vec![0u64; built.len()];
    let mut go_seen = 0u64;
    loop {
        let t0 = prof.tick();
        go_seen = gates.go.wait(go_seen);
        let wait_ns = prof.lap(t0);
        if let Some(w0) = t0 {
            track.slice(Phase::BarrierWait, usize::MAX, prof.offset_ns(w0), wait_ns);
        }
        if shared.stop.load(Ordering::SeqCst) {
            let list = built.drain(..).map(|(id, w)| (id, w.finalize())).collect();
            let _ = reply.send(Reply::Finalized(list));
            return;
        }

        busy.iter_mut().for_each(|b| *b = 0);
        for (i, (id, w)) in built.iter_mut().enumerate() {
            let bound_ns = shared.bounds[*id].load(Ordering::Relaxed);
            if bound_ns == NEVER {
                continue;
            }
            {
                let mut slot = shared.inboxes[*id].lock().unwrap();
                std::mem::swap(&mut *slot, &mut inbuf);
            }
            if !inbuf.is_empty() {
                let t = prof.tick();
                canonical_sort(&mut inbuf);
                w.deliver(&mut inbuf);
                debug_assert!(inbuf.is_empty(), "deliver must drain the batch");
                if t.is_some() {
                    let ns = prof.lap(t);
                    prof.phase(*id, Phase::Merge, ns);
                    busy[i] += ns;
                }
            }
            let t = prof.tick();
            let events = w.sim().run_until(SimTime::from_nanos(bound_ns));
            if let Some(s0) = t {
                let ns = prof.lap(t);
                prof.phase(*id, Phase::Execute, ns);
                prof.epoch_events(*id, events);
                track.slice(Phase::Execute, *id, prof.offset_ns(s0), ns);
                busy[i] += ns;
            }
            let t = prof.tick();
            w.drain_outbox_into(&mut outbuf);
            if !outbuf.is_empty() {
                let mut slot = shared.outboxes[*id].lock().unwrap();
                debug_assert!(slot.is_empty(), "outbox slot not drained last round");
                std::mem::swap(&mut *slot, &mut outbuf);
            }
            if t.is_some() {
                let ns = prof.lap(t);
                prof.phase(*id, Phase::OutboxDrain, ns);
                busy[i] += ns;
            }
            shared.next_events[*id].store(ns_opt(w.sim().next_event_at()), Ordering::Relaxed);
        }
        if prof.is_on() {
            // Tile the round: each hosted world charges the gate wait
            // plus its siblings' busy time as barrier wait, so per-world
            // phase sums approximate this thread's wall time.
            let total_busy: u64 = busy.iter().sum();
            for (i, (id, _)) in built.iter().enumerate() {
                prof.phase(*id, Phase::BarrierWait, wait_ns + (total_busy - busy[i]));
            }
        }
        gates.done.open();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A toy world: every `tick` it sends a token to the next world in the
    /// ring with delivery exactly one lookahead out; received tokens are
    /// accumulated into a checksum that also folds in the receive instant.
    struct RingWorld {
        id: usize,
        worlds: usize,
        sim: Sim,
        state: Rc<RefCell<RingState>>,
    }

    struct RingState {
        outbox: Vec<Routed<u64>>,
        seq: u64,
        checksum: u64,
        received: u64,
    }

    const LOOKAHEAD: Duration = Duration::from_micros(100);

    impl RingWorld {
        fn new(id: usize, worlds: usize, ticks: u32) -> Self {
            let sim = Sim::new(1000 + id as u64);
            let state = Rc::new(RefCell::new(RingState {
                outbox: Vec::new(),
                seq: 0,
                checksum: 0,
                received: 0,
            }));
            for k in 0..ticks {
                let st = state.clone();
                let at = SimTime::from_micros(30 + 70 * k as u64);
                sim.schedule_at(at, move |sim| {
                    let mut s = st.borrow_mut();
                    let seq = s.seq;
                    s.seq += 1;
                    s.outbox.push(Routed {
                        deliver_at: sim.now() + LOOKAHEAD,
                        src_world: id,
                        dst_world: (id + 1) % worlds,
                        seq,
                        msg: (id as u64) << 32 | seq,
                    });
                });
            }
            RingWorld {
                id,
                worlds,
                sim,
                state,
            }
        }
    }

    impl ShardWorld for RingWorld {
        type Msg = u64;

        fn sim(&self) -> &Sim {
            &self.sim
        }

        fn drain_outbox_into(&mut self, out: &mut Vec<Routed<u64>>) {
            out.append(&mut self.state.borrow_mut().outbox);
        }

        fn deliver(&mut self, batch: &mut Vec<Routed<u64>>) {
            for r in batch.drain(..) {
                assert_eq!(r.dst_world, self.id);
                assert!(r.deliver_at >= self.sim.now(), "delivery in the past");
                let st = self.state.clone();
                self.sim.schedule_at(r.deliver_at, move |sim| {
                    let mut s = st.borrow_mut();
                    s.received += 1;
                    s.checksum = s
                        .checksum
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(r.msg ^ sim.now().as_nanos());
                });
            }
        }

        fn finalize(self: Box<Self>) -> Box<dyn Any + Send> {
            let _ = self.worlds;
            let s = self.state.borrow();
            Box::new((s.checksum, s.received))
        }
    }

    fn ring_shards(
        shards: usize,
        worlds: usize,
        ticks: u32,
    ) -> (
        Vec<(usize, Box<dyn ShardWorld<Msg = u64>>)>,
        Vec<Vec<(usize, WorldBuilder<u64>)>>,
    ) {
        let mut local: Vec<(usize, Box<dyn ShardWorld<Msg = u64>>)> = Vec::new();
        let mut remote: Vec<Vec<(usize, WorldBuilder<u64>)>> =
            (1..shards).map(|_| Vec::new()).collect();
        for id in 0..worlds {
            let shard = id % shards;
            if shard == 0 {
                local.push((id, Box::new(RingWorld::new(id, worlds, ticks))));
            } else {
                remote[shard - 1].push((
                    id,
                    Box::new(move || {
                        Box::new(RingWorld::new(id, worlds, ticks))
                            as Box<dyn ShardWorld<Msg = u64>>
                    }) as WorldBuilder<u64>,
                ));
            }
        }
        (local, remote)
    }

    fn run_ring(shards: usize) -> Vec<(u64, u64)> {
        const WORLDS: usize = 4;
        const TICKS: u32 = 25;
        let (local, remote) = ring_shards(shards, WORLDS, TICKS);
        let mut coord = ShardCoordinator::new(LOOKAHEAD, local, remote);
        coord.run_until(SimTime::from_millis(10));
        assert!(coord.epochs() > 0);
        assert!(coord.sync_rounds() >= coord.epochs() - 1);
        assert_eq!(coord.cross_messages(), WORLDS as u64 * TICKS as u64);
        coord
            .finalize()
            .into_iter()
            .map(|(_, t)| *t.downcast::<(u64, u64)>().expect("ring telemetry"))
            .collect()
    }

    #[test]
    fn ring_results_identical_for_any_shard_count() {
        let one = run_ring(1);
        assert_eq!(one.iter().map(|(_, r)| r).sum::<u64>(), 100);
        for shards in [2, 3, 4] {
            assert_eq!(one, run_ring(shards), "shards={shards} diverged");
        }
    }

    /// Restricting the matrix to the edges the ring actually uses
    /// (`i → i+1`) must not change any world's observed messages, for
    /// any shard count.
    #[test]
    fn ring_with_exact_matrix_matches_uniform_for_any_shard_count() {
        const WORLDS: usize = 4;
        const TICKS: u32 = 25;
        let run = |shards: usize| -> Vec<(u64, u64)> {
            let (local, remote) = ring_shards(shards, WORLDS, TICKS);
            let mut m = LookaheadMatrix::disconnected(WORLDS);
            for id in 0..WORLDS {
                m.set(id, (id + 1) % WORLDS, LOOKAHEAD);
            }
            let mut coord =
                ShardCoordinator::with_matrix(Arc::new(m), local, remote, Profiler::off());
            coord.run_until(SimTime::from_millis(10));
            coord
                .finalize()
                .into_iter()
                .map(|(_, t)| *t.downcast::<(u64, u64)>().expect("ring telemetry"))
                .collect()
        };
        let uniform = run_ring(1);
        for shards in [1, 2, 4] {
            assert_eq!(uniform, run(shards), "shards={shards} diverged");
        }
    }

    #[test]
    fn canonical_merge_is_permutation_invariant() {
        let msgs: Vec<Routed<u32>> = (0..64)
            .map(|i| Routed {
                deliver_at: SimTime::from_micros(100 + (i % 5) as u64),
                src_world: (i % 3) as usize,
                dst_world: ((i + 1) % 3) as usize,
                seq: (i / 3) as u64,
                msg: i,
            })
            .collect();
        let sorted = canonical_merge(msgs.clone());
        let mut reversed = msgs.clone();
        reversed.reverse();
        let resorted = canonical_merge(reversed);
        let key = |v: &[Routed<u32>]| -> Vec<(SimTime, usize, u64, u32)> {
            v.iter()
                .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
                .collect()
        };
        assert_eq!(key(&sorted), key(&resorted));
        for w in sorted.windows(2) {
            assert!(
                (w[0].deliver_at, w[0].src_world, w[0].seq)
                    < (w[1].deliver_at, w[1].src_world, w[1].seq)
            );
        }
    }

    struct Sparse {
        sim: Sim,
    }
    impl ShardWorld for Sparse {
        type Msg = ();
        fn sim(&self) -> &Sim {
            &self.sim
        }
        fn drain_outbox_into(&mut self, _out: &mut Vec<Routed<()>>) {}
        fn deliver(&mut self, batch: &mut Vec<Routed<()>>) {
            batch.clear();
        }
        fn finalize(self: Box<Self>) -> Box<dyn Any + Send> {
            Box::new(self.sim.events_processed())
        }
    }

    fn sparse_locals() -> Vec<(usize, Box<dyn ShardWorld<Msg = ()>>)> {
        let mut local: Vec<(usize, Box<dyn ShardWorld<Msg = ()>>)> = Vec::new();
        for id in 0..2usize {
            let sim = Sim::new(id as u64);
            sim.schedule_at(SimTime::from_secs(5 + id as u64), |_| {});
            local.push((id, Box::new(Sparse { sim })));
        }
        local
    }

    #[test]
    fn merged_clock_jumps_idle_gaps() {
        // Two worlds, one event each, far apart: the run must not need
        // deadline/lookahead epochs.
        let mut coord = ShardCoordinator::new(LOOKAHEAD, sparse_locals(), Vec::new());
        coord.run_until(SimTime::from_secs(60));
        // One window per event neighbourhood plus the final jump — far
        // fewer than the 600k a fixed 100 us cadence would need.
        assert!(coord.epochs() < 10, "epochs = {}", coord.epochs());
        assert_eq!(coord.now(), SimTime::from_secs(60));
    }

    #[test]
    fn disconnected_worlds_run_in_one_window() {
        // With no reachable pairs there is no conservative constraint at
        // all: the whole run is a single window and each world runs
        // straight to the deadline.
        let m = Arc::new(LookaheadMatrix::disconnected(2));
        let mut coord =
            ShardCoordinator::with_matrix(m, sparse_locals(), Vec::new(), Profiler::off());
        coord.run_until(SimTime::from_secs(60));
        assert_eq!(coord.epochs(), 1, "sync_rounds = {}", coord.sync_rounds());
        assert_eq!(coord.now(), SimTime::from_secs(60));
        let events: u64 = coord
            .finalize()
            .into_iter()
            .map(|(_, t)| *t.downcast::<u64>().expect("event count"))
            .sum();
        assert_eq!(events, 2);
    }

    #[test]
    fn lookahead_matrix_basics() {
        let mut m = LookaheadMatrix::disconnected(3);
        assert!(!m.reachable(0, 1));
        assert_eq!(m.min_finite(), None);
        m.set(0, 1, Duration::from_micros(100));
        m.set(1, 0, Duration::from_millis(1));
        assert!(m.reachable(0, 1));
        assert!(m.reachable(1, 0));
        assert!(!m.reachable(0, 2));
        assert!(!m.reachable(1, 1));
        assert_eq!(m.get_ns(0, 1), 100_000);
        assert_eq!(m.min_finite(), Some(Duration::from_micros(100)));

        let u = LookaheadMatrix::uniform(3, Duration::from_micros(50));
        for s in 0..3 {
            for d in 0..3 {
                assert_eq!(u.reachable(s, d), s != d);
            }
        }

        let star = LookaheadMatrix::from_reachability(4, Duration::from_micros(100), |s, d| {
            s == 0 || d == 0
        });
        assert!(star.reachable(0, 3) && star.reachable(3, 0));
        assert!(!star.reachable(1, 2));
        assert_eq!(star.min_finite(), Some(Duration::from_micros(100)));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn lookahead_matrix_rejects_zero_entries() {
        LookaheadMatrix::disconnected(2).set(0, 1, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "do not route to themselves")]
    fn lookahead_matrix_rejects_self_edges() {
        LookaheadMatrix::disconnected(2).set(1, 1, Duration::from_micros(1));
    }
}
