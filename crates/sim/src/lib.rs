//! # ustore-sim — deterministic discrete-event simulation kernel
//!
//! Foundation of the UStore reproduction: a single-threaded, seeded,
//! bit-for-bit reproducible discrete-event simulator. Every hardware model
//! (USB buses, disks, the network) and every software component (Master,
//! EndPoint, Controller, ClientLib) runs as closures scheduled on a shared
//! [`Sim`] handle.
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//! use ustore_sim::{Sim, SimTime};
//!
//! let sim = Sim::new(0xC01D_DA7A);
//! sim.schedule_in(Duration::from_secs(1), |sim| {
//!     println!("one virtual second elapsed at {}", sim.now());
//! });
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_secs(1));
//! ```
//!
//! ## Modules
//!
//! - [`time`]: virtual instants ([`SimTime`]).
//! - [`engine`]: the event queue and [`Sim`] handle.
//! - [`rng`]: seeded, forkable randomness ([`SimRng`], [`Zipf`]).
//! - [`faultgen`]: empirical fleet fault model — Weibull/bathtub drive
//!   lifetimes, latent sector errors, scrub passes, correlated failure
//!   domains — generating deterministic [`FaultSchedule`]s.
//! - [`metrics`]: counters, histograms, throughput accounting.
//! - [`obs`]: the unified [`MetricsRegistry`] every component reports into,
//!   and [`obs::timeseries`] — the [`Scraper`] sampling it over sim time.
//! - [`shard`]: conservative epoch-synchronized parallel execution of a
//!   fixed world decomposition ([`ShardCoordinator`]).
//! - [`prof`]: wall-clock profiling of the engine itself ([`Profiler`],
//!   [`TrafficMatrix`]) — phase timers, epoch statistics, Perfetto
//!   thread timelines. Feature-gated (`wallprof`, on by default).
//! - [`span`]: causal span tracing ([`SpanTracer`]) for decomposition and
//!   causality queries.
//! - [`export`]: Prometheus exposition text and Chrome trace-event JSON.
//! - [`trace`]: structured in-memory tracing.
//! - [`json`]: dependency-free stable JSON export ([`Json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod export;
pub mod faultgen;
pub mod hash;
pub mod intern;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod prof;
pub mod reqtrace;
pub mod rng;
pub mod shard;
pub mod span;
pub mod time;
pub mod trace;

pub use engine::{CounterHandle, EventId, GaugeHandle, HistogramHandle, Sim, TimerId};
pub use faultgen::{
    Bathtub, FaultEvent, FaultKind, FaultModelConfig, FaultSchedule, FleetShape, Weibull,
};
pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use intern::{ComponentId, KeyInterner, MetricKey};
pub use json::Json;
pub use metrics::{Counter, Histogram, Throughput, ThroughputRate};
pub use obs::timeseries::{Scraper, ScraperConfig, TimeSeries};
pub use obs::MetricsRegistry;
pub use prof::{
    Phase, ProfSnapshot, ProfTrack, Profiler, TrafficCell, TrafficMatrix, TrafficSnapshot,
    WorldProf,
};
pub use reqtrace::{
    ReqKind, ReqStamp, RequestTracer, Stage, TraceId, TraceRecord, TraceSeg, TraceSnapshot,
};
pub use rng::{SimRng, Zipf};
pub use shard::{
    canonical_merge, canonical_sort, LookaheadMatrix, Routed, ShardCoordinator, ShardWorld,
    WorldBuilder,
};
pub use span::{Span, SpanId, SpanTracer};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, TraceLevel};
