//! Empirical fleet fault model: seeded schedules of realistic failures.
//!
//! The watchdog and failover machinery were grown against hand-scripted
//! single-disk failures; real cold-storage fleets fail differently. Gray &
//! van Ingen's error-rate measurements show drives following a *bathtub*
//! hazard (infant mortality + wear-out, each well modelled by a Weibull),
//! latent sector errors accumulating silently on idle platters, and
//! failures arriving *correlated* through shared infrastructure — a hub, a
//! switch, a host PSU takes out a whole cohort at once. TeraScale
//! SneakerNet's operational lesson is that background scrubbing is what
//! makes cheap disks survivable: without it latent errors sit undetected
//! until the one restore read that needed the sector.
//!
//! This module turns those observations into *deterministic schedules* of
//! typed [`FaultEvent`]s that a harness applies through the existing
//! injection hooks (`Disk::set_latency_factor` / `set_read_error_rate` /
//! `inject_bad_page` / `set_failed`, fabric hub/host kill paths):
//!
//! - per-drive lifetimes drawn from a [`Bathtub`] mixture of two
//!   [`Weibull`] hazards (infant shape < 1, wear-out shape > 1),
//!   compressed onto the simulated horizon by an age-acceleration factor;
//! - latent sector errors as a Poisson process per disk, repaired by
//!   periodic [`FaultKind::ScrubPass`] events with per-disk phase;
//! - gradual seek-latency / read-error drift ramps on a random subset of
//!   drives (the watchdog's ground truth);
//! - correlated domain events: leaf-hub failures orphaning a whole disk
//!   group, and host-PSU failures taking down every disk behind a host,
//!   each followed by a repair after a dwell.
//!
//! Determinism contract: all draws come from **per-world, per-unit
//! labelled RNG streams** keyed exactly like the sharded engine's world
//! decomposition (the world of a unit depends only on the scenario's
//! `world_groups`, never on the `--shards` thread count), so the same
//! `(seed, shape, config)` always yields the byte-identical schedule at
//! any shard count — goldened in `tests/determinism.rs`.

use std::time::Duration;

use crate::json::Json;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Two-parameter Weibull distribution over drive operating hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape `k` (< 1 decreasing hazard, > 1 increasing).
    pub shape: f64,
    /// Scale `λ` in hours (63.2% of lifetimes fall below it).
    pub scale: f64,
}

impl Weibull {
    /// Analytic CDF `F(t) = 1 − exp(−(t/λ)^k)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        1.0 - (-(t / self.scale).powf(self.shape)).exp()
    }

    /// Inverse-CDF sample: `λ · (−ln(1−u))^(1/k)`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64(); // [0, 1) → 1−u in (0, 1], ln is finite
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }
}

/// Bathtub hazard as a mixture of an infant-mortality Weibull (shape < 1)
/// and a wear-out Weibull (shape > 1): each drive is an infant-mortality
/// case with probability `infant_weight`, a wear-out case otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bathtub {
    /// Early-failure branch (decreasing hazard).
    pub infant: Weibull,
    /// Wear-out branch (increasing hazard).
    pub wearout: Weibull,
    /// Mixture weight of the infant branch in `[0, 1]`.
    pub infant_weight: f64,
}

impl Bathtub {
    /// Mixture CDF `w·F_infant(t) + (1−w)·F_wearout(t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        self.infant_weight * self.infant.cdf(t) + (1.0 - self.infant_weight) * self.wearout.cdf(t)
    }

    /// Samples one drive lifetime in hours (branch pick, then branch
    /// inverse-CDF — two draws per call, always).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let infant = rng.chance(self.infant_weight);
        if infant {
            self.infant.sample(rng)
        } else {
            self.wearout.sample(rng)
        }
    }
}

/// One typed fault (or maintenance) event. Indices are *logical*: disk and
/// host indices are within the unit, `group` names the unit's g-th leaf
/// disk group — the applying harness resolves them against its topology.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Whole-drive hardware failure (bathtub lifetime reached).
    DriveFailure {
        /// Deploy unit index.
        unit: u32,
        /// Disk index within the unit.
        disk: u32,
    },
    /// One step of a gradual degradation ramp: positioning-time stretch
    /// plus an uncorrectable-read probability.
    LatencyDrift {
        /// Deploy unit index.
        unit: u32,
        /// Disk index within the unit.
        disk: u32,
        /// Positioning-time multiplier (≥ 1.0).
        factor: f64,
        /// Per-read uncorrectable probability in `[0, 1]`.
        error_rate: f64,
    },
    /// A latent sector error appears on an idle platter.
    LatentSector {
        /// Deploy unit index.
        unit: u32,
        /// Disk index within the unit.
        disk: u32,
        /// Byte offset of the affected 4 KiB page.
        offset: u64,
    },
    /// A background scrub pass over the disk's active region.
    ScrubPass {
        /// Deploy unit index.
        unit: u32,
        /// Disk index within the unit.
        disk: u32,
    },
    /// A shared leaf hub fails, orphaning its whole disk group.
    HubFailure {
        /// Deploy unit index.
        unit: u32,
        /// Leaf disk-group index within the unit.
        group: u32,
    },
    /// The failed leaf hub is replaced.
    HubRepair {
        /// Deploy unit index.
        unit: u32,
        /// Leaf disk-group index within the unit.
        group: u32,
    },
    /// A host PSU fails: the host and every disk behind it drop out.
    HostFailure {
        /// Deploy unit index.
        unit: u32,
        /// Host index within the unit.
        host: u32,
    },
    /// The failed host comes back.
    HostRepair {
        /// Deploy unit index.
        unit: u32,
        /// Host index within the unit.
        host: u32,
    },
}

impl FaultKind {
    /// Canonical sort/digest key — total order even over the f64 fields
    /// (rendered with full precision).
    fn key(&self) -> String {
        match self {
            FaultKind::DriveFailure { unit, disk } => format!("drive-failure u{unit} d{disk}"),
            FaultKind::LatencyDrift {
                unit,
                disk,
                factor,
                error_rate,
            } => format!("latency-drift u{unit} d{disk} f{factor:.6} e{error_rate:.6}"),
            FaultKind::LatentSector { unit, disk, offset } => {
                format!("latent-sector u{unit} d{disk} o{offset}")
            }
            FaultKind::ScrubPass { unit, disk } => format!("scrub-pass u{unit} d{disk}"),
            FaultKind::HubFailure { unit, group } => format!("hub-failure u{unit} g{group}"),
            FaultKind::HubRepair { unit, group } => format!("hub-repair u{unit} g{group}"),
            FaultKind::HostFailure { unit, host } => format!("host-failure u{unit} h{host}"),
            FaultKind::HostRepair { unit, host } => format!("host-repair u{unit} h{host}"),
        }
    }

    /// Short kind label for counting and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DriveFailure { .. } => "drive_failure",
            FaultKind::LatencyDrift { .. } => "latency_drift",
            FaultKind::LatentSector { .. } => "latent_sector",
            FaultKind::ScrubPass { .. } => "scrub_pass",
            FaultKind::HubFailure { .. } => "hub_failure",
            FaultKind::HubRepair { .. } => "hub_repair",
            FaultKind::HostFailure { .. } => "host_failure",
            FaultKind::HostRepair { .. } => "host_repair",
        }
    }
}

/// One scheduled fault event, relative to the campaign's fault onset.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Offset from the fault onset.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The fleet a schedule is generated for. Mirrors the sharded engine's
/// decomposition inputs: `world_groups` fixes which world each unit's
/// stream is keyed to (`--shards` never enters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetShape {
    /// Deploy units.
    pub units: u32,
    /// Hosts per unit.
    pub hosts_per_unit: u32,
    /// Disks per unit.
    pub disks_per_unit: u32,
    /// Hub fan-in (disks per leaf group).
    pub fanin: u32,
    /// Unit-group worlds of the sharded decomposition.
    pub world_groups: u32,
}

impl FleetShape {
    /// Leaf disk groups per unit.
    pub fn groups_per_unit(&self) -> u32 {
        self.disks_per_unit.div_ceil(self.fanin.max(1))
    }
}

/// Fault-model tunables. Rates are per modelled drive-hour; `accel` maps
/// modelled hours onto the simulated horizon (one simulated second ages
/// every drive by `accel` hours), compressing a multi-year service life
/// into a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModelConfig {
    /// Campaign fault window in simulated time.
    pub horizon: Duration,
    /// Drive-hours of ageing per simulated second.
    pub accel: f64,
    /// Per-drive lifetime hazard.
    pub drive_hazard: Bathtub,
    /// Latent-sector-error arrivals per drive-hour.
    pub lse_per_hour: f64,
    /// Active-region span LSEs and scrubs cover, bytes.
    pub region_bytes: u64,
    /// Per-drive probability of developing a gradual degradation ramp.
    pub drift_prob: f64,
    /// Per-drive scrub cadence in simulated time (first pass at a random
    /// phase within one interval).
    pub scrub_interval: Duration,
    /// Expected leaf-hub failures per group per campaign.
    pub hub_fail_mean: f64,
    /// Expected host-PSU failures per host per campaign.
    pub host_fail_mean: f64,
    /// Dwell before a failed hub/host is repaired.
    pub domain_repair: Duration,
}

impl FaultModelConfig {
    /// Reference campaign model: ~8 000 accelerated drive-hours over a
    /// 90 s fault window, a few latent errors per drive, scrubs every
    /// 12 s, and rare correlated domain failures.
    pub fn reference() -> Self {
        FaultModelConfig {
            horizon: Duration::from_secs(90),
            accel: 90.0,
            drive_hazard: Bathtub {
                infant: Weibull {
                    shape: 0.7,
                    scale: 40_000.0,
                },
                wearout: Weibull {
                    shape: 3.0,
                    scale: 60_000.0,
                },
                infant_weight: 0.15,
            },
            lse_per_hour: 4e-4,
            region_bytes: 64 << 20,
            drift_prob: 0.08,
            scrub_interval: Duration::from_secs(12),
            hub_fail_mean: 0.06,
            host_fail_mean: 0.04,
            domain_repair: Duration::from_secs(10),
        }
    }

    /// Shorter, denser variant for CI smoke campaigns: a 40 s window at
    /// higher acceleration so the same phenomena still occur.
    pub fn quick() -> Self {
        FaultModelConfig {
            horizon: Duration::from_secs(40),
            accel: 200.0,
            scrub_interval: Duration::from_secs(8),
            ..FaultModelConfig::reference()
        }
    }

    /// Modelled drive-hours covered by the fault window.
    pub fn horizon_hours(&self) -> f64 {
        self.horizon.as_secs_f64() * self.accel
    }
}

/// SplitMix64-style seed mixer — the same finalizer the sharded engine
/// uses to derive per-world seeds, so fault streams and world streams
/// share one keying discipline.
pub fn mix_seed(root: u64, salt: u64) -> u64 {
    let mut z = root ^ salt.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generated, sorted fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Events sorted by `(at, canonical key)`.
    pub events: Vec<FaultEvent>,
    /// The fault window the schedule was generated for.
    pub horizon: Duration,
}

impl FaultSchedule {
    /// Generates the schedule for `shape` under `config`. Pure function
    /// of `(seed, shape, config)`; see the module docs for the stream
    /// keying that makes it shard-count invariant.
    pub fn generate(seed: u64, shape: &FleetShape, config: &FaultModelConfig) -> FaultSchedule {
        let mut events: Vec<FaultEvent> = Vec::new();
        let groups = shape.world_groups.max(1);
        let units_per_group = shape.units.div_ceil(groups);
        let horizon_s = config.horizon.as_secs_f64();
        let horizon_h = config.horizon_hours();
        let region_pages = (config.region_bytes / 4096).max(1);

        for unit in 0..shape.units {
            // The unit's stream is keyed by (root, world, unit): the same
            // double-mix regardless of how many threads later execute the
            // decomposition.
            let world = 1 + u64::from(unit / units_per_group);
            let mut unit_rng = SimRng::seed_from(mix_seed(mix_seed(seed, world), u64::from(unit)));

            for disk in 0..shape.disks_per_unit {
                let mut rng = unit_rng.fork(&format!("disk-{disk}"));

                // Bathtub lifetime, accelerated onto the horizon.
                let life_h = config.drive_hazard.sample(&mut rng);
                if life_h < horizon_h {
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((life_h / config.accel * 1e9) as u64),
                        kind: FaultKind::DriveFailure { unit, disk },
                    });
                }

                // Latent sector errors: Poisson arrivals over the window.
                let mut t_h = rng.exp(1.0 / config.lse_per_hour.max(1e-12));
                while t_h < horizon_h {
                    let offset = rng.u64_below(region_pages) * 4096;
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_h / config.accel * 1e9) as u64),
                        kind: FaultKind::LatentSector { unit, disk, offset },
                    });
                    t_h += rng.exp(1.0 / config.lse_per_hour.max(1e-12));
                }

                // Gradual degradation ramp on a random subset of drives.
                // Three steps 2 s apart, like a spindle going bad.
                if rng.chance(config.drift_prob) {
                    let onset = rng.range_f64(0.2, 0.7) * horizon_s;
                    for (i, (factor, err)) in [(2.0, 0.0), (4.0, 0.05), (8.0, 0.10)]
                        .into_iter()
                        .enumerate()
                    {
                        events.push(FaultEvent {
                            at: SimTime::from_nanos(((onset + 2.0 * i as f64) * 1e9) as u64),
                            kind: FaultKind::LatencyDrift {
                                unit,
                                disk,
                                factor,
                                error_rate: err,
                            },
                        });
                    }
                }

                // Scrub passes with per-disk phase.
                let interval_s = config.scrub_interval.as_secs_f64();
                let mut t_s = rng.range_f64(0.0, interval_s);
                while t_s < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_s * 1e9) as u64),
                        kind: FaultKind::ScrubPass { unit, disk },
                    });
                    t_s += interval_s;
                }
            }

            // Correlated failure domains, one stream per unit.
            let mut dom = unit_rng.fork("domains");
            for group in 0..shape.groups_per_unit() {
                let mut t_s = dom.exp(horizon_s / config.hub_fail_mean.max(1e-12));
                while t_s < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_s * 1e9) as u64),
                        kind: FaultKind::HubFailure { unit, group },
                    });
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_s * 1e9) as u64) + config.domain_repair,
                        kind: FaultKind::HubRepair { unit, group },
                    });
                    t_s += config.domain_repair.as_secs_f64()
                        + dom.exp(horizon_s / config.hub_fail_mean.max(1e-12));
                }
            }
            for host in 0..shape.hosts_per_unit {
                let mut t_s = dom.exp(horizon_s / config.host_fail_mean.max(1e-12));
                while t_s < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_s * 1e9) as u64),
                        kind: FaultKind::HostFailure { unit, host },
                    });
                    events.push(FaultEvent {
                        at: SimTime::from_nanos((t_s * 1e9) as u64) + config.domain_repair,
                        kind: FaultKind::HostRepair { unit, host },
                    });
                    t_s += config.domain_repair.as_secs_f64()
                        + dom.exp(horizon_s / config.host_fail_mean.max(1e-12));
                }
            }
        }

        events.sort_by_key(|a| (a.at, a.kind.key()));
        FaultSchedule {
            events,
            horizon: config.horizon,
        }
    }

    /// Like [`FaultSchedule::generate`], taking the executor thread count
    /// the campaign will run under. Thread count never enters generation —
    /// the parameter exists so harnesses and the golden determinism tests
    /// state the invariance explicitly.
    pub fn generate_for(
        seed: u64,
        shape: &FleetShape,
        config: &FaultModelConfig,
        shards: usize,
    ) -> FaultSchedule {
        assert!(shards >= 1, "need at least one executor thread");
        Self::generate(seed, shape, config)
    }

    /// FNV-1a digest over the canonical event rendering — byte-identical
    /// schedules have equal digests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for ev in &self.events {
            eat(format!("{} {}\n", ev.at.as_nanos(), ev.kind.key()).as_bytes());
        }
        h
    }

    /// Events per kind label, sorted by label.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for ev in &self.events {
            *counts.entry(ev.kind.label()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Stable JSON rendering (one object per event, sorted order) — used
    /// for minimized-schedule artifacts and the byte-identity golden test.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("horizon_s", Json::f64(self.horizon.as_secs_f64())),
            ("digest", Json::str(format!("{:016x}", self.digest()))),
            (
                "events",
                Json::arr(self.events.iter().map(|ev| {
                    Json::obj([
                        ("at_s", Json::f64(ev.at.as_nanos() as f64 / 1e9)),
                        ("kind", Json::str(ev.kind.key())),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> FleetShape {
        FleetShape {
            units: 2,
            hosts_per_unit: 4,
            disks_per_unit: 8,
            fanin: 4,
            world_groups: 2,
        }
    }

    #[test]
    fn weibull_sample_matches_cdf() {
        let w = Weibull {
            shape: 1.5,
            scale: 100.0,
        };
        let mut rng = SimRng::seed_from(7);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| w.sample(&mut rng)).collect();
        for t in [30.0, 80.0, 150.0, 250.0] {
            let empirical = samples.iter().filter(|&&s| s < t).count() as f64 / n as f64;
            let analytic = w.cdf(t);
            assert!(
                (empirical - analytic).abs() < 0.03,
                "F({t}): empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn schedule_is_pure_and_sorted() {
        let cfg = FaultModelConfig::quick();
        let a = FaultSchedule::generate(11, &shape(), &cfg);
        let b = FaultSchedule::generate(11, &shape(), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.events.is_empty(), "quick model generates work");
        let c = FaultSchedule::generate(12, &shape(), &cfg);
        assert_ne!(a.digest(), c.digest(), "seed changes the schedule");
    }

    #[test]
    fn schedule_ignores_thread_count() {
        let cfg = FaultModelConfig::reference();
        let one = FaultSchedule::generate_for(5, &shape(), &cfg, 1);
        let four = FaultSchedule::generate_for(5, &shape(), &cfg, 4);
        assert_eq!(one, four);
    }
}
