//! Deterministic pseudo-random number generation.
//!
//! The simulator owns its randomness so that every run is exactly
//! reproducible from a single seed, independent of external crate versions.
//! The core generator is xoshiro256++ seeded through SplitMix64, the
//! combination recommended by the xoshiro authors. [`SimRng::fork`] derives
//! statistically independent streams from string labels so that unrelated
//! components do not perturb each other's random sequences when code is
//! added or reordered.

use std::fmt;

/// SplitMix64 step, used for seeding and label hashing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, forkable pseudo-random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use ustore_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut child = a.fork("disk-0");
/// let _ = child.next_u64();
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("state", &self.s).finish()
    }
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream named by `label`.
    ///
    /// The child depends only on the parent's *current* state and the label,
    /// so forking the same label twice in a row yields identical children.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h = self.next_u64();
        for b in label.as_bytes() {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(*b));
        }
        SimRng::seed_from(h)
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below: n must be positive");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = u128::from(x) * u128::from(n);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for inter-arrival times of background events (e.g. failures).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (single value; the pair's twin is
    /// discarded to keep the generator stateless).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses an element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.usize_below(xs.len())])
        }
    }
}

/// A Zipf-distributed sampler over ranks `0..n` with exponent `theta`.
///
/// Used by the workload crate to model skewed cold-data access (a small
/// fraction of objects receives most of the rare reads). Sampling is by
/// binary search over the precomputed CDF, O(log n) per draw.
///
/// # Examples
///
/// ```
/// use ustore_sim::{SimRng, Zipf};
///
/// let mut rng = SimRng::seed_from(7);
/// let z = Zipf::new(1000, 0.99);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf: n must be positive");
        assert!(theta >= 0.0 && theta.is_finite(), "Zipf: invalid theta");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fork_streams_are_independent_and_labelled() {
        let mut parent = SimRng::seed_from(9);
        let mut snapshot = parent.clone();
        let mut a = parent.fork("a");
        let mut b = snapshot.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn u64_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.u64_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_unit_interval_mean() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean} far from 3.0");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from(17);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(19);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SimRng::seed_from(23);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42u8]), Some(&42));
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = SimRng::seed_from(29);
        let z = Zipf::new(100, 1.0);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(31);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max as f64 / (*min as f64) < 1.2);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn u64_below_zero_panics() {
        SimRng::seed_from(0).u64_below(0);
    }
}
