//! Virtual time for the discrete-event simulator.
//!
//! [`SimTime`] is an absolute instant measured in integer nanoseconds since
//! the start of the simulation. Durations are ordinary
//! [`std::time::Duration`] values, which keeps call sites readable
//! (`sim.schedule_in(Duration::from_millis(5), ...)`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant in simulated time (nanoseconds since simulation start).
///
/// `SimTime` is a newtype over `u64` so that instants cannot be confused
/// with durations or raw counters.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ustore_sim::SimTime;
///
/// let t = SimTime::ZERO + Duration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Convenience constructors mirroring [`Duration`]'s, with float seconds.
///
/// # Examples
///
/// ```
/// use ustore_sim::time::secs_f64;
/// assert_eq!(secs_f64(0.5), std::time::Duration::from_millis(500));
/// ```
pub fn secs_f64(s: f64) -> Duration {
    Duration::from_secs_f64(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_nanos(2).as_nanos(), 2);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        assert_eq!(t + Duration::from_millis(5), SimTime::from_millis(15));
        assert_eq!(SimTime::from_millis(15) - t, Duration::from_millis(5));
        let mut u = t;
        u += Duration::from_millis(1);
        assert_eq!(u, SimTime::from_millis(11));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reorder() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
