//! Wall-clock profiling of the simulation engine itself.
//!
//! Everything else in this crate measures **sim-time** behavior of the
//! modeled pod; this module measures **wall-clock** behavior of the
//! simulator — where the host CPU actually goes while the sharded engine
//! grinds through epochs. It exists to diagnose the parallel engine's
//! synchronization tax (ROADMAP item 1): barrier waits, epoch granularity,
//! lookahead utilization, and which world pairs generate the cross-shard
//! traffic that forces the lookahead bound.
//!
//! Design constraints:
//!
//! - **Zero perturbation.** The profiler observes only the host clock and
//!   already-computed event counts; it never touches RNG state, event
//!   ordering, or telemetry. Digests must stay bit-identical with
//!   profiling on or off (golden-tested in `tests/determinism.rs`).
//! - **Off by default, compile-out-able.** A [`Profiler`] is a cheap
//!   cloneable handle around `Option<Arc<..>>`; [`Profiler::off`] makes
//!   every probe a branch on `None`. Building `ustore-sim` with
//!   `--no-default-features` (dropping the `wallprof` feature) compiles
//!   the enabled path out entirely.
//! - **Lock-free accumulation.** Phase timings land in per-world slabs of
//!   relaxed [`AtomicU64`]s; the only mutexes guard per-thread slice
//!   buffers, each written by exactly one thread.
//!
//! Phase taxonomy (see DESIGN §12): [`Phase::Execute`] (running a world's
//! event loop), [`Phase::OutboxDrain`] (collecting cross-world sends),
//! [`Phase::BarrierWait`] (blocked on the epoch barrier or stalled while a
//! sibling world on the same thread runs), [`Phase::Merge`] (canonical
//! merge + delivery of cross-world batches), and [`Phase::IdleJump`]
//! (computing the next barrier, including idle-gap jumps).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::Histogram;

/// Number of engine phases tracked per world.
pub const PHASE_COUNT: usize = 5;

/// A wall-clock phase of the engine loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Running a world's event loop (`Sim::run_until`).
    Execute = 0,
    /// Draining a world's cross-shard outbox after execution.
    OutboxDrain = 1,
    /// Blocked on the epoch barrier (channel waits, dispatch), or stalled
    /// while a sibling world hosted on the same thread runs.
    BarrierWait = 2,
    /// Canonical merge of cross-world batches and their delivery.
    Merge = 3,
    /// Computing the next barrier, including idle-gap jumps.
    IdleJump = 4,
}

impl Phase {
    /// All phases, in slab order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Execute,
        Phase::OutboxDrain,
        Phase::BarrierWait,
        Phase::Merge,
        Phase::IdleJump,
    ];

    /// Stable snake_case name, used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Execute => "execute",
            Phase::OutboxDrain => "outbox_drain",
            Phase::BarrierWait => "barrier_wait",
            Phase::Merge => "merge",
            Phase::IdleJump => "idle_jump",
        }
    }
}

/// Upper bound on shared-geometry histogram slots (covers values up to
/// ~2^29 with ≤1.6% error; larger values clamp into the last slot).
const HIST_SLOTS: usize = 1536;

/// Per-thread slice buffers stop growing past this many slices; the
/// overflow is counted in `dropped` so exports can say so.
pub const SLICE_CAP: usize = 20_000;

/// Lock-free histogram slab sharing [`Histogram`]'s bucket geometry.
struct AtomicHist {
    slots: Vec<AtomicU64>,
}

impl AtomicHist {
    #[cfg_attr(not(feature = "wallprof"), allow(dead_code))]
    fn new() -> Self {
        AtomicHist {
            slots: (0..HIST_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, v: u64) {
        let idx = (Histogram::bucket_index(v) as usize).min(HIST_SLOTS - 1);
        self.slots[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn fold(&self) -> Histogram {
        let mut h = Histogram::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                h.record_n(Histogram::bucket_mid(idx as u64), n);
            }
        }
        h
    }
}

/// Per-world accumulation slab. All counters relaxed: each is summed
/// independently, and snapshots happen after the run quiesces.
struct WorldSlab {
    phase_ns: [AtomicU64; PHASE_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
    events: AtomicU64,
    epochs: AtomicU64,
    idle_epochs: AtomicU64,
    events_per_epoch: AtomicHist,
}

impl WorldSlab {
    #[cfg_attr(not(feature = "wallprof"), allow(dead_code))]
    fn new() -> Self {
        WorldSlab {
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_calls: std::array::from_fn(|_| AtomicU64::new(0)),
            events: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            idle_epochs: AtomicU64::new(0),
            events_per_epoch: AtomicHist::new(),
        }
    }
}

/// One wall-clock slice for the Perfetto timeline.
#[derive(Debug, Clone, Copy)]
pub struct WallSlice {
    /// Which phase the thread was in.
    pub phase: Phase,
    /// World the slice is attributed to (`usize::MAX` for thread-level
    /// slices like barrier waits that span all hosted worlds).
    pub world: usize,
    /// Offset from profiler creation, nanoseconds.
    pub start_ns: u64,
    /// Slice duration, nanoseconds.
    pub dur_ns: u64,
}

/// Per-thread slice buffer (one Perfetto track).
struct TrackSlab {
    label: String,
    slices: Mutex<Vec<WallSlice>>,
    dropped: AtomicU64,
}

struct ProfInner {
    start: Instant,
    lookahead_ns: AtomicU64,
    epochs: AtomicU64,
    idle_jump_epochs: AtomicU64,
    sync_rounds: AtomicU64,
    advance_ns: AtomicU64,
    worlds: Vec<WorldSlab>,
    tracks: Mutex<Vec<Arc<TrackSlab>>>,
}

#[cfg(feature = "wallprof")]
impl ProfInner {
    fn new(worlds: usize) -> Self {
        ProfInner {
            start: Instant::now(),
            lookahead_ns: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            idle_jump_epochs: AtomicU64::new(0),
            sync_rounds: AtomicU64::new(0),
            advance_ns: AtomicU64::new(0),
            worlds: (0..worlds).map(|_| WorldSlab::new()).collect(),
            tracks: Mutex::new(Vec::new()),
        }
    }
}

/// Cheap cloneable handle to the wall-clock profiler; `off()` handles are
/// inert and make every probe a branch on `None`.
///
/// The handle is `Send + Sync`: the coordinator, every worker thread, and
/// every world's network share clones of the same profiler.
#[derive(Clone)]
pub struct Profiler(Option<Arc<ProfInner>>);

impl Profiler {
    /// An inert profiler: every probe is a no-op, [`snapshot`](Self::snapshot)
    /// returns `None`.
    pub fn off() -> Self {
        Profiler(None)
    }

    /// An active profiler with `worlds` accumulation slabs.
    ///
    /// When the crate is built without the `wallprof` feature this
    /// returns an inert handle, compiling the probes out entirely.
    pub fn on(worlds: usize) -> Self {
        #[cfg(feature = "wallprof")]
        {
            Profiler(Some(Arc::new(ProfInner::new(worlds))))
        }
        #[cfg(not(feature = "wallprof"))]
        {
            let _ = worlds;
            Profiler(None)
        }
    }

    /// Whether probes are live (feature compiled in *and* handle active).
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the crate was compiled with wall-clock profiling support.
    pub fn compiled_in() -> bool {
        cfg!(feature = "wallprof")
    }

    /// Records the engine's lookahead so snapshots can report lookahead
    /// utilization. Zero (the default) means "no lookahead" (classic path).
    pub fn set_lookahead(&self, lookahead: Duration) {
        if let Some(inner) = &self.0 {
            let ns = lookahead.as_nanos().min(u128::from(u64::MAX)) as u64;
            inner.lookahead_ns.store(ns, Ordering::Relaxed);
        }
    }

    /// Reads the monotonic clock, or `None` when inert. Pair with
    /// [`lap`](Self::lap) to time a scope without branching at each site.
    pub fn tick(&self) -> Option<Instant> {
        self.0.as_ref().map(|_| Instant::now())
    }

    /// Nanoseconds elapsed since `t` (0 for an inert tick).
    pub fn lap(&self, t: Option<Instant>) -> u64 {
        match t {
            Some(t) => saturating_ns(t.elapsed()),
            None => 0,
        }
    }

    /// Nanosecond offset of `t` from profiler creation (slice timestamps).
    pub fn offset_ns(&self, t: Instant) -> u64 {
        match &self.0 {
            Some(inner) => saturating_ns(t.saturating_duration_since(inner.start)),
            None => 0,
        }
    }

    /// Accumulates `ns` of wall time in `world`'s `phase` slab (one call).
    pub fn phase(&self, world: usize, phase: Phase, ns: u64) {
        if let Some(inner) = &self.0 {
            if let Some(slab) = inner.worlds.get(world) {
                slab.phase_ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
                slab.phase_calls[phase as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one epoch's executed event count for `world`: feeds the
    /// events-per-epoch histogram and the idle-epoch counter.
    pub fn epoch_events(&self, world: usize, events: u64) {
        if let Some(inner) = &self.0 {
            if let Some(slab) = inner.worlds.get(world) {
                slab.events.fetch_add(events, Ordering::Relaxed);
                slab.epochs.fetch_add(1, Ordering::Relaxed);
                if events == 0 {
                    slab.idle_epochs.fetch_add(1, Ordering::Relaxed);
                }
                slab.events_per_epoch.record(events);
            }
        }
    }

    /// Records one coordinator epoch window: how far sim time advanced
    /// and whether the window was an *idle jump* — its start bound leapt
    /// more than one coalescing quantum past the previous floor, i.e. the
    /// scheduler skipped dead air instead of rolling through it.
    pub fn epoch(&self, advance: Duration, idle_jump: bool) {
        if let Some(inner) = &self.0 {
            inner.epochs.fetch_add(1, Ordering::Relaxed);
            inner
                .advance_ns
                .fetch_add(saturating_ns(advance), Ordering::Relaxed);
            if idle_jump {
                inner.idle_jump_epochs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records inner synchronization rounds executed during one epoch
    /// window (the adaptive coordinator runs several fixpoint rounds per
    /// window; the classic engine records none).
    pub fn add_sync_rounds(&self, n: u64) {
        if let Some(inner) = &self.0 {
            inner.sync_rounds.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Registers a Perfetto track for the calling thread. Each engine
    /// thread (coordinator + one per shard) registers exactly one.
    pub fn register_track(&self, label: impl Into<String>) -> ProfTrack {
        match &self.0 {
            Some(inner) => {
                let slab = Arc::new(TrackSlab {
                    label: label.into(),
                    slices: Mutex::new(Vec::new()),
                    dropped: AtomicU64::new(0),
                });
                inner.tracks.lock().unwrap().push(Arc::clone(&slab));
                ProfTrack(Some(slab))
            }
            None => ProfTrack(None),
        }
    }

    /// Snapshots all slabs into plain data, or `None` when inert.
    /// Call after the run quiesces (no worker mid-epoch).
    pub fn snapshot(&self) -> Option<ProfSnapshot> {
        let inner = self.0.as_ref()?;
        let worlds = inner
            .worlds
            .iter()
            .enumerate()
            .map(|(world, slab)| WorldProf {
                world,
                phase_ns: std::array::from_fn(|i| slab.phase_ns[i].load(Ordering::Relaxed)),
                phase_calls: std::array::from_fn(|i| slab.phase_calls[i].load(Ordering::Relaxed)),
                events: slab.events.load(Ordering::Relaxed),
                epochs: slab.epochs.load(Ordering::Relaxed),
                idle_epochs: slab.idle_epochs.load(Ordering::Relaxed),
                events_per_epoch: slab.events_per_epoch.fold(),
            })
            .collect();
        let tracks = inner
            .tracks
            .lock()
            .unwrap()
            .iter()
            .map(|t| TrackProf {
                label: t.label.clone(),
                slices: t.slices.lock().unwrap().clone(),
                dropped: t.dropped.load(Ordering::Relaxed),
            })
            .collect();
        Some(ProfSnapshot {
            lookahead_ns: inner.lookahead_ns.load(Ordering::Relaxed),
            epochs: inner.epochs.load(Ordering::Relaxed),
            idle_jump_epochs: inner.idle_jump_epochs.load(Ordering::Relaxed),
            sync_rounds: inner.sync_rounds.load(Ordering::Relaxed),
            advance_ns_total: inner.advance_ns.load(Ordering::Relaxed),
            worlds,
            tracks,
        })
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("on", &self.is_on())
            .finish()
    }
}

/// Per-thread slice recorder returned by [`Profiler::register_track`].
pub struct ProfTrack(Option<Arc<TrackSlab>>);

impl ProfTrack {
    /// An inert track (for threads of an unprofiled run).
    pub fn off() -> Self {
        ProfTrack(None)
    }

    /// Records one wall-clock slice on this thread's track. Buffers are
    /// capped at an internal limit; overflow increments a drop counter
    /// surfaced in the snapshot.
    pub fn slice(&self, phase: Phase, world: usize, start_ns: u64, dur_ns: u64) {
        if let Some(slab) = &self.0 {
            let mut slices = slab.slices.lock().unwrap();
            if slices.len() < SLICE_CAP {
                slices.push(WallSlice {
                    phase,
                    world,
                    start_ns,
                    dur_ns,
                });
            } else {
                slab.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Plain-data snapshot of one world's slab.
#[derive(Debug, Clone)]
pub struct WorldProf {
    /// World id.
    pub world: usize,
    /// Accumulated nanoseconds per [`Phase`] (indexed by `Phase as usize`).
    pub phase_ns: [u64; PHASE_COUNT],
    /// Probe call count per phase.
    pub phase_calls: [u64; PHASE_COUNT],
    /// Total events this world executed while profiled.
    pub events: u64,
    /// Epochs this world participated in.
    pub epochs: u64,
    /// Epochs in which this world executed zero events.
    pub idle_epochs: u64,
    /// Distribution of events executed per epoch.
    pub events_per_epoch: Histogram,
}

impl WorldProf {
    /// Nanoseconds of productive work: execute + outbox drain + merge.
    pub fn busy_ns(&self) -> u64 {
        self.phase_ns[Phase::Execute as usize]
            + self.phase_ns[Phase::OutboxDrain as usize]
            + self.phase_ns[Phase::Merge as usize]
    }

    /// Sum of all phase accumulators (should tile the measured wall time
    /// of the run window; `repro profile` reports the coverage fraction).
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of this world's accounted time spent in barrier waits.
    pub fn barrier_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.phase_ns[Phase::BarrierWait as usize] as f64 / total as f64
    }
}

/// Snapshot of one thread's Perfetto track.
#[derive(Debug, Clone)]
pub struct TrackProf {
    /// Thread label (e.g. `shard-1`, `coordinator`, `classic-engine`).
    pub label: String,
    /// Recorded slices, in recording order.
    pub slices: Vec<WallSlice>,
    /// Slices dropped after the per-track cap was hit.
    pub dropped: u64,
}

/// Full profiler snapshot: per-world phase slabs, epoch statistics, and
/// per-thread wall-clock tracks.
#[derive(Debug, Clone)]
pub struct ProfSnapshot {
    /// Engine lookahead in nanoseconds (0 for the classic path).
    pub lookahead_ns: u64,
    /// Coordinator epoch windows executed.
    pub epochs: u64,
    /// Windows whose start bound leapt more than one coalescing quantum
    /// past the previous floor (the scheduler skipped dead air).
    pub idle_jump_epochs: u64,
    /// Inner synchronization rounds executed across all windows (0 for
    /// the classic path).
    pub sync_rounds: u64,
    /// Total sim-time advanced across epochs, nanoseconds.
    pub advance_ns_total: u64,
    /// Per-world slabs, indexed by world id.
    pub worlds: Vec<WorldProf>,
    /// Per-thread wall-clock tracks.
    pub tracks: Vec<TrackProf>,
}

impl ProfSnapshot {
    /// Mean sim-time advance per epoch divided by the lookahead.
    ///
    /// 1.0 means every epoch advanced exactly one lookahead (the
    /// conservative bound); above 1.0 means idle jumps skipped dead air;
    /// `None` when no epochs ran or no lookahead was set.
    pub fn lookahead_utilization(&self) -> Option<f64> {
        if self.epochs == 0 || self.lookahead_ns == 0 {
            return None;
        }
        let mean_advance = self.advance_ns_total as f64 / self.epochs as f64;
        Some(mean_advance / self.lookahead_ns as f64)
    }

    /// Aggregate nanoseconds spent in `phase` across all worlds.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.worlds.iter().map(|w| w.phase_ns[phase as usize]).sum()
    }

    /// Total wall-clock timeline slices dropped across tracks after the
    /// per-track [`SLICE_CAP`]. Aggregates (phase sums, histograms) are
    /// unaffected — only the Perfetto timeline is truncated.
    pub fn dropped_slices(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Events-per-epoch distribution merged across all worlds.
    pub fn events_per_epoch(&self) -> Histogram {
        let mut h = Histogram::new();
        for w in &self.worlds {
            h.merge(&w.events_per_epoch);
        }
        h
    }

    /// Stable JSON form (BENCH `profile` section, `repro profile --json`).
    pub fn to_json(&self) -> Json {
        let phases = Json::obj(
            Phase::ALL.map(|p| (p.name(), Json::f64(self.phase_total_ns(p) as f64 / 1e9))),
        );
        let worlds = Json::arr(self.worlds.iter().map(|w| {
            let mut o = Json::obj([("world", Json::u64(w.world as u64))]);
            for p in Phase::ALL {
                o.insert(
                    format!("{}_seconds", p.name()),
                    Json::f64(w.phase_ns[p as usize] as f64 / 1e9),
                );
            }
            o.insert("events", Json::u64(w.events));
            o.insert("epochs", Json::u64(w.epochs));
            o.insert("idle_epochs", Json::u64(w.idle_epochs));
            o.insert("barrier_wait_fraction", Json::f64(w.barrier_fraction()));
            o.insert(
                "events_per_epoch_mean",
                Json::f64(w.events_per_epoch.mean().unwrap_or(0.0)),
            );
            o
        }));
        let epe = self.events_per_epoch();
        let mut out = Json::obj([
            ("lookahead_ns", Json::u64(self.lookahead_ns)),
            ("epochs", Json::u64(self.epochs)),
            ("idle_jump_epochs", Json::u64(self.idle_jump_epochs)),
            ("sync_rounds", Json::u64(self.sync_rounds)),
            (
                "sim_seconds_advanced",
                Json::f64(self.advance_ns_total as f64 / 1e9),
            ),
            ("phase_seconds", phases),
            ("worlds", worlds),
        ]);
        if let Some(u) = self.lookahead_utilization() {
            out.insert("lookahead_utilization", Json::f64(u));
        }
        out.insert(
            "events_per_epoch",
            Json::obj([
                ("mean", Json::f64(epe.mean().unwrap_or(0.0))),
                ("p50", Json::u64(epe.quantile(0.5).unwrap_or(0))),
                ("p99", Json::u64(epe.quantile(0.99).unwrap_or(0))),
                ("max", Json::u64(epe.max().unwrap_or(0))),
            ]),
        );
        // Timeline completeness: a reader must be able to tell a quiet
        // run from a truncated export without diffing slice counts.
        out.insert("dropped_slices", Json::u64(self.dropped_slices()));
        out.insert(
            "tracks",
            Json::arr(self.tracks.iter().map(|t| {
                Json::obj([
                    ("label", Json::str(&*t.label)),
                    ("slices", Json::u64(t.slices.len() as u64)),
                    ("dropped", Json::u64(t.dropped)),
                ])
            })),
        );
        out
    }
}

/// Coarse log2 bucketing for slack histograms: bucket 0 holds zero,
/// bucket `b >= 1` holds `[2^(b-1), 2^b)`.
fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(63)
    }
}

fn log2_bucket_mid(b: usize) -> u64 {
    match b {
        0 => 0,
        1 => 1,
        b => {
            let low = 1u64 << (b - 1);
            let high = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
            low / 2 + high / 2
        }
    }
}

/// Cross-world traffic matrix: per `(src_world, dst_world)` message
/// counts and slack histograms, recorded lock-free by every world's
/// network at send time.
///
/// Slack is `deliver_at − send_time − lookahead` — the margin by which a
/// cross-world message clears the conservative synchronization bound. A
/// pair whose *minimum* slack is large is eligible for widened per-pair
/// lookahead (fewer barriers) without risking causality.
pub struct TrafficMatrix {
    worlds: usize,
    msgs: Vec<AtomicU64>,
    slack_sum: Vec<AtomicU64>,
    slack_min: Vec<AtomicU64>,
    slack_buckets: Vec<AtomicU64>, // worlds² × 64 coarse log2 buckets
}

impl TrafficMatrix {
    /// A matrix over `worlds` worlds (ids `0..worlds`).
    pub fn new(worlds: usize) -> Self {
        let cells = worlds * worlds;
        TrafficMatrix {
            worlds,
            msgs: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            slack_sum: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            slack_min: (0..cells).map(|_| AtomicU64::new(u64::MAX)).collect(),
            slack_buckets: (0..cells * 64).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worlds the matrix covers.
    pub fn worlds(&self) -> usize {
        self.worlds
    }

    /// Records one cross-world message with its slack in nanoseconds.
    pub fn record(&self, src: usize, dst: usize, slack_ns: u64) {
        if src >= self.worlds || dst >= self.worlds {
            return;
        }
        let cell = src * self.worlds + dst;
        self.msgs[cell].fetch_add(1, Ordering::Relaxed);
        self.slack_sum[cell].fetch_add(slack_ns, Ordering::Relaxed);
        self.slack_min[cell].fetch_min(slack_ns, Ordering::Relaxed);
        self.slack_buckets[cell * 64 + log2_bucket(slack_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the non-empty cells.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut cells = Vec::new();
        for src in 0..self.worlds {
            for dst in 0..self.worlds {
                let cell = src * self.worlds + dst;
                let messages = self.msgs[cell].load(Ordering::Relaxed);
                if messages == 0 {
                    continue;
                }
                let mut slack = Histogram::new();
                for b in 0..64 {
                    let n = self.slack_buckets[cell * 64 + b].load(Ordering::Relaxed);
                    if n > 0 {
                        slack.record_n(log2_bucket_mid(b), n);
                    }
                }
                cells.push(TrafficCell {
                    src,
                    dst,
                    messages,
                    slack_sum_ns: self.slack_sum[cell].load(Ordering::Relaxed),
                    min_slack_ns: self.slack_min[cell].load(Ordering::Relaxed),
                    slack,
                });
            }
        }
        TrafficSnapshot {
            worlds: self.worlds,
            cells,
        }
    }
}

impl std::fmt::Debug for TrafficMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficMatrix")
            .field("worlds", &self.worlds)
            .finish()
    }
}

/// One non-empty traffic matrix cell.
#[derive(Debug, Clone)]
pub struct TrafficCell {
    /// Sending world.
    pub src: usize,
    /// Receiving world.
    pub dst: usize,
    /// Messages sent `src → dst`.
    pub messages: u64,
    /// Exact sum of slack nanoseconds (for exact means).
    pub slack_sum_ns: u64,
    /// Exact minimum slack observed (the per-pair lookahead headroom).
    pub min_slack_ns: u64,
    /// Coarse (log2-bucketed) slack distribution.
    pub slack: Histogram,
}

impl TrafficCell {
    /// Exact mean slack in nanoseconds.
    pub fn mean_slack_ns(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.slack_sum_ns as f64 / self.messages as f64
    }
}

/// Snapshot of the cross-world traffic matrix (non-empty cells only).
#[derive(Debug, Clone)]
pub struct TrafficSnapshot {
    /// Number of worlds the matrix covers.
    pub worlds: usize,
    /// Non-empty cells in `(src, dst)` order.
    pub cells: Vec<TrafficCell>,
}

impl TrafficSnapshot {
    /// Total cross-world messages.
    pub fn total_messages(&self) -> u64 {
        self.cells.iter().map(|c| c.messages).sum()
    }

    /// The busiest `(src, dst)` pair, if any traffic flowed.
    pub fn busiest(&self) -> Option<&TrafficCell> {
        self.cells.iter().max_by_key(|c| c.messages)
    }

    /// Stable JSON form: world count, totals, and per-cell rows.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("worlds", Json::u64(self.worlds as u64)),
            ("total_messages", Json::u64(self.total_messages())),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    Json::obj([
                        ("src", Json::u64(c.src as u64)),
                        ("dst", Json::u64(c.dst as u64)),
                        ("messages", Json::u64(c.messages)),
                        ("min_slack_ns", Json::u64(c.min_slack_ns)),
                        ("mean_slack_ns", Json::f64(c.mean_slack_ns())),
                        (
                            "p99_slack_ns",
                            Json::u64(c.slack.quantile(0.99).unwrap_or(0)),
                        ),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_is_inert() {
        let p = Profiler::off();
        assert!(!p.is_on());
        assert!(p.tick().is_none());
        assert_eq!(p.lap(None), 0);
        p.phase(0, Phase::Execute, 123);
        p.epoch_events(0, 5);
        p.epoch(Duration::from_micros(100), false);
        assert!(p.snapshot().is_none());
        let track = p.register_track("t");
        track.slice(Phase::Execute, 0, 0, 10);
    }

    #[test]
    fn phase_accumulation_and_snapshot() {
        let p = Profiler::on(2);
        if !Profiler::compiled_in() {
            assert!(p.snapshot().is_none());
            return;
        }
        p.set_lookahead(Duration::from_micros(100));
        p.phase(0, Phase::Execute, 1_000);
        p.phase(0, Phase::Execute, 500);
        p.phase(1, Phase::BarrierWait, 2_000);
        p.epoch_events(0, 10);
        p.epoch_events(0, 0);
        p.epoch_events(1, 4);
        p.epoch(Duration::from_micros(100), false);
        p.epoch(Duration::from_micros(300), true);
        let s = p.snapshot().unwrap();
        assert_eq!(s.worlds.len(), 2);
        assert_eq!(s.worlds[0].phase_ns[Phase::Execute as usize], 1_500);
        assert_eq!(s.worlds[0].phase_calls[Phase::Execute as usize], 2);
        assert_eq!(s.worlds[1].phase_ns[Phase::BarrierWait as usize], 2_000);
        assert_eq!(s.worlds[0].epochs, 2);
        assert_eq!(s.worlds[0].idle_epochs, 1);
        assert_eq!(s.worlds[0].events, 10);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.idle_jump_epochs, 1);
        // mean advance 200µs over 100µs lookahead -> utilization 2.0
        let u = s.lookahead_utilization().unwrap();
        assert!((u - 2.0).abs() < 1e-9, "utilization {u}");
        assert_eq!(s.phase_total_ns(Phase::Execute), 1_500);
        let epe = s.events_per_epoch();
        assert_eq!(epe.count(), 3);
        assert_eq!(epe.min(), Some(0));
        // JSON renders without panicking and carries the top-level keys.
        let j = s.to_json();
        assert!(j.get("phase_seconds").is_some());
        assert!(j.get("lookahead_utilization").is_some());
    }

    #[test]
    fn tracks_record_slices_and_cap() {
        let p = Profiler::on(1);
        if !Profiler::compiled_in() {
            return;
        }
        let t = p.register_track("worker-1");
        t.slice(Phase::Execute, 0, 100, 50);
        t.slice(Phase::BarrierWait, usize::MAX, 150, 25);
        let s = p.snapshot().unwrap();
        assert_eq!(s.tracks.len(), 1);
        assert_eq!(s.tracks[0].label, "worker-1");
        assert_eq!(s.tracks[0].slices.len(), 2);
        assert_eq!(s.tracks[0].slices[1].phase, Phase::BarrierWait);
        assert_eq!(s.tracks[0].dropped, 0);
    }

    #[test]
    fn traffic_matrix_records_and_snapshots() {
        let m = TrafficMatrix::new(3);
        m.record(0, 1, 1_000);
        m.record(0, 1, 3_000);
        m.record(2, 0, 500);
        m.record(9, 0, 1); // out of range: ignored
        let s = m.snapshot();
        assert_eq!(s.worlds, 3);
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.total_messages(), 3);
        let busiest = s.busiest().unwrap();
        assert_eq!((busiest.src, busiest.dst), (0, 1));
        assert_eq!(busiest.messages, 2);
        assert_eq!(busiest.min_slack_ns, 1_000);
        assert!((busiest.mean_slack_ns() - 2_000.0).abs() < 1e-9);
        let j = s.to_json();
        assert_eq!(j.get("total_messages").and_then(|v| v.as_f64()), Some(3.0));
    }

    #[test]
    fn log2_buckets_are_sane() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(u64::MAX), 63);
        for b in 1..63usize {
            let mid = log2_bucket_mid(b);
            assert_eq!(log2_bucket(mid.max(1)), b, "mid of bucket {b}");
        }
    }
}
