//! A minimal, dependency-free JSON document model.
//!
//! The observability layer ([`crate::obs`], [`crate::span`]) and the bench
//! harness need a *stable* machine-readable export format. This module
//! provides just enough JSON: a value tree with insertion-ordered objects
//! (so exports are byte-stable run over run), compact and pretty writers,
//! and spec-compliant string escaping. It is intentionally write-only —
//! nothing in the simulator parses JSON.
//!
//! # Examples
//!
//! ```
//! use ustore_sim::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("failover")),
//!     ("total_ms", Json::f64(612.5)),
//!     ("children", Json::arr([Json::u64(3)])),
//! ]);
//! assert_eq!(
//!     doc.to_string(),
//!     r#"{"name":"failover","total_ms":612.5,"children":[3]}"#
//! );
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (printed exactly, no float rounding).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (`NaN`/`Inf` serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an unsigned integer value.
    pub fn u64(v: u64) -> Json {
        Json::U64(v)
    }

    /// Builds a signed integer value.
    pub fn i64(v: i64) -> Json {
        Json::I64(v)
    }

    /// Builds a float value.
    pub fn f64(v: f64) -> Json {
        Json::F64(v)
    }

    /// Builds an array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::insert on a non-object"),
        }
    }

    /// Appends a value to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: Json) {
        match self {
            Json::Arr(items) => items.push(value),
            _ => panic!("Json::push on a non-array"),
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (callers add their own newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(
            Json::u64(18_446_744_073_709_551_615).to_string(),
            "18446744073709551615"
        );
        assert_eq!(Json::i64(-5).to_string(), "-5");
        assert_eq!(Json::f64(2.5).to_string(), "2.5");
        assert_eq!(Json::f64(f64::NAN).to_string(), "null");
        assert_eq!(Json::f64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo").to_string(), "\"héllo\"");
    }

    #[test]
    fn nested_compact() {
        let doc = Json::obj([
            ("a", Json::arr([Json::u64(1), Json::Null])),
            ("b", Json::obj([("c", Json::Bool(false))])),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":[1,null],"b":{"c":false}}"#);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut doc = Json::obj([("z", Json::u64(1))]);
        doc.insert("a", Json::u64(2));
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("x", Json::f64(1.5)), ("s", Json::str("hi"))]);
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("missing"), None);
        assert!(Json::arr([Json::u64(1)]).as_arr().is_some());
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::obj([
            ("rows", Json::arr([Json::obj([("v", Json::u64(3))])])),
            ("empty", Json::arr([])),
        ]);
        let p = doc.pretty();
        assert!(p.contains("\"rows\": ["));
        assert!(p.contains("\"empty\": []"));
        assert!(p.starts_with('{') && p.ends_with('}'));
    }
}
