//! String interning for metric keys.
//!
//! Every metric call used to allocate two `String`s and walk a
//! `BTreeMap<(String, String)>`. The [`KeyInterner`] resolves a
//! `(component, name)` pair to a dense [`MetricKey`] exactly once; after
//! that, hot paths carry the copyable key (or a handle wrapping it) and
//! the registry indexes a plain `Vec`. Lookups by `&str` allocate nothing
//! on a hit: the maps are keyed by `Rc<str>`, and `Rc<str>: Borrow<str>`
//! lets the probe borrow the caller's slice.
//!
//! Key ids are assigned in first-use order, which is itself deterministic
//! for a deterministic simulation — so id-indexed storage never reorders
//! between same-seed runs. Sorted (string) order is materialized only at
//! export time.

use std::collections::HashMap;
use std::rc::Rc;

/// Interned id of a component string (e.g. `"u0-d3"`, `"master-0"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The raw index into the interner's string pool.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Interned id of one `(component, name)` metric key.
///
/// Keys are dense: the registry stores metric slots in `Vec`s indexed by
/// the raw id, and the scraper uses the raw id to map registry series to
/// ring buffers without hashing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey(u32);

impl MetricKey {
    /// The raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a key from [`MetricKey::raw`]. Only meaningful against the
    /// same registry that produced the raw id.
    pub fn from_raw(raw: u32) -> Self {
        MetricKey(raw)
    }
}

/// Interns component/name strings and `(component, name)` pairs.
///
/// Components and metric names share one string pool; a [`MetricKey`]
/// identifies a pair of pool entries.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    pool: Vec<Rc<str>>,
    by_str: HashMap<Rc<str>, u32>,
    pairs: Vec<(u32, u32)>,
    by_pair: HashMap<(u32, u32), u32>,
}

impl KeyInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one string, returning its pool index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.by_str.get(s) {
            return idx;
        }
        let idx = self.pool.len() as u32;
        let rc: Rc<str> = Rc::from(s);
        self.pool.push(rc.clone());
        self.by_str.insert(rc, idx);
        idx
    }

    /// Interns a component string.
    pub fn component(&mut self, component: &str) -> ComponentId {
        ComponentId(self.intern(component))
    }

    /// The string behind a pool index.
    pub fn resolve_str(&self, idx: u32) -> &str {
        &self.pool[idx as usize]
    }

    /// Interns a `(component, name)` pair, returning its dense key.
    pub fn key(&mut self, component: &str, name: &str) -> MetricKey {
        let c = self.intern(component);
        let n = self.intern(name);
        self.pair_key(c, n)
    }

    /// Interns `(component id, name)` — skips re-hashing the component.
    pub fn key_of(&mut self, component: ComponentId, name: &str) -> MetricKey {
        let n = self.intern(name);
        self.pair_key(component.0, n)
    }

    fn pair_key(&mut self, c: u32, n: u32) -> MetricKey {
        if let Some(&k) = self.by_pair.get(&(c, n)) {
            return MetricKey(k);
        }
        let k = self.pairs.len() as u32;
        self.pairs.push((c, n));
        self.by_pair.insert((c, n), k);
        MetricKey(k)
    }

    /// Looks a pair up without interning; `None` when never registered.
    pub fn lookup(&self, component: &str, name: &str) -> Option<MetricKey> {
        let c = *self.by_str.get(component)?;
        let n = *self.by_str.get(name)?;
        self.by_pair.get(&(c, n)).map(|&k| MetricKey(k))
    }

    /// Looks up a string's pool index without interning.
    pub fn lookup_str(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Resolves a key back to its `(component, name)` strings.
    pub fn resolve(&self, key: MetricKey) -> (&str, &str) {
        let (c, n) = self.pairs[key.0 as usize];
        (&self.pool[c as usize], &self.pool[n as usize])
    }

    /// The `(component pool idx, name pool idx)` behind a key.
    pub fn resolve_ids(&self, key: MetricKey) -> (u32, u32) {
        self.pairs[key.0 as usize]
    }

    /// Number of interned pairs; raw key ids are `0..len`.
    pub fn len(&self) -> u32 {
        self.pairs.len() as u32
    }

    /// True when no pair has been interned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = KeyInterner::new();
        let a = i.key("disk-0", "disk.reads");
        let b = i.key("disk-0", "disk.reads");
        assert_eq!(a, b);
        assert_eq!(a.raw(), 0);
        let c = i.key("disk-0", "disk.writes");
        assert_eq!(c.raw(), 1);
        let d = i.key("disk-1", "disk.reads");
        assert_eq!(d.raw(), 2);
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(d), ("disk-1", "disk.reads"));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = KeyInterner::new();
        assert_eq!(i.lookup("c", "n"), None);
        let k = i.key("c", "n");
        assert_eq!(i.lookup("c", "n"), Some(k));
        assert_eq!(i.lookup("c", "other"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn component_ids_share_the_pool() {
        let mut i = KeyInterner::new();
        let c = i.component("master-0");
        let k = i.key_of(c, "rpc.calls");
        assert_eq!(i.resolve(k), ("master-0", "rpc.calls"));
        assert_eq!(i.key("master-0", "rpc.calls"), k);
        assert_eq!(i.resolve_str(c.raw()), "master-0");
    }

    #[test]
    fn round_trips_raw_ids() {
        let mut i = KeyInterner::new();
        let k = i.key("a", "b");
        assert_eq!(MetricKey::from_raw(k.raw()), k);
    }
}
