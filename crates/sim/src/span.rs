//! Causal span tracing over simulated time.
//!
//! A [`Span`] is a named interval of virtual time with an optional parent,
//! a component label and `key=value` attributes — the structured sibling
//! of the flat [`crate::Trace`] ring buffer. Spans let experiments ask
//! *decomposition* questions ("how long was fabric reconfiguration inside
//! this failover?") and *causality* questions ("did the controller lock
//! the fabric before turning switches?") without grepping log strings.
//!
//! Spans are recorded through the simulator handle
//! ([`crate::Sim::span_start`] / [`crate::Sim::span_end`]), which also
//! mirrors starts and ends into the `Trace` buffer at `Debug` level so a
//! debug trace shows both worlds interleaved.
//!
//! Span taxonomy used across the stack (see DESIGN.md):
//!
//! | name                    | component     | meaning                          |
//! |-------------------------|---------------|----------------------------------|
//! | `failover`              | harness/master| one end-to-end host failover     |
//! | `failover.detection`    | master        | failure to missed-heartbeat call |
//! | `failover.reconfiguration` | master     | plan + fabric execution          |
//! | `failover.remount`      | master        | re-export + client remount       |
//! | `fabric.execute`        | fabric        | one reconfiguration command      |
//! | `fabric.lock` / `fabric.actuate` / `fabric.verify` | fabric | its phases |
//! | `endpoint.export`       | endpoint      | iSCSI target (re-)export         |
//! | `client.remount`        | clientlib     | one client remount cycle         |

use std::collections::HashSet;
use std::rc::Rc;
use std::time::Duration;

use crate::json::Json;
use crate::time::SimTime;

/// Identifier of a recorded span (unique within one [`SpanTracer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id (1-based; useful in exports).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One span: a named, attributed interval of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Emitting component (e.g. `"master-0"`, `"fabric"`). Interned:
    /// every span of a component shares one allocation.
    pub component: Rc<str>,
    /// Hierarchical dotted name (e.g. `"failover.reconfiguration"`).
    /// Interned like [`Span::component`].
    pub name: Rc<str>,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `None` while the span is open.
    pub end: Option<SimTime>,
    /// `key=value` attributes in insertion order (later wins on lookup).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Elapsed time, if the span has ended.
    pub fn duration(&self) -> Option<Duration> {
        self.end.map(|e| e.duration_since(self.start))
    }

    /// True while the span has not ended.
    pub fn is_open(&self) -> bool {
        self.end.is_none()
    }

    /// Most recent value set for `key`.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::u64(self.id.0)),
            ("parent", self.parent.map_or(Json::Null, |p| Json::u64(p.0))),
            ("component", Json::str(&*self.component)),
            ("name", Json::str(&*self.name)),
            ("start_ns", Json::u64(self.start.as_nanos())),
            (
                "end_ns",
                self.end.map_or(Json::Null, |e| Json::u64(e.as_nanos())),
            ),
            (
                "duration_ns",
                self.duration().map_or(Json::Null, |d| {
                    Json::u64(d.as_nanos().min(u128::from(u64::MAX)) as u64)
                }),
            ),
            (
                "attrs",
                Json::obj(self.attrs.iter().map(|(k, v)| (k.clone(), Json::str(v)))),
            ),
        ])
    }
}

/// Recorder of all spans in one simulation, in start order.
///
/// # Examples
///
/// ```
/// use ustore_sim::{SimTime, SpanTracer};
///
/// let mut t = SpanTracer::new();
/// let root = t.start(SimTime::from_millis(0), "master", "failover", None);
/// let child = t.start(SimTime::from_millis(1), "fabric", "fabric.execute", Some(root));
/// t.end(SimTime::from_millis(5), child);
/// t.end(SimTime::from_millis(9), root);
/// assert_eq!(t.children(root).count(), 1);
/// assert_eq!(t.get(child).unwrap().duration().unwrap().as_millis(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanTracer {
    spans: Vec<Span>, // span with id N lives at index N-1
    /// Still-open spans in start order; keeps `find_open*` proportional to
    /// the number of *open* spans rather than every span ever recorded.
    open: Vec<SpanId>,
    /// Component/name string pool: each distinct label allocates once.
    strings: HashSet<Rc<str>>,
}

impl SpanTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, s: &str) -> Rc<str> {
        if let Some(rc) = self.strings.get(s) {
            return rc.clone();
        }
        let rc: Rc<str> = Rc::from(s);
        self.strings.insert(rc.clone());
        rc
    }

    /// Starts a span at `at`; returns its id.
    pub fn start(
        &mut self,
        at: SimTime,
        component: &str,
        name: &str,
        parent: Option<SpanId>,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64 + 1);
        let component = self.intern(component);
        let name = self.intern(name);
        self.spans.push(Span {
            id,
            parent,
            component,
            name,
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Ends a span at `at`. Ending twice keeps the first end (idempotent),
    /// so "close if still open" call sites need no guard.
    pub fn end(&mut self, at: SimTime, id: SpanId) {
        if let Some(span) = self.get_mut(id) {
            if span.end.is_none() {
                span.end = Some(at);
                // Spans usually close LIFO, so scan the open list from the
                // back; `remove` keeps the remaining list in start order.
                if let Some(pos) = self.open.iter().rposition(|&o| o == id) {
                    self.open.remove(pos);
                }
            }
        }
    }

    /// Attaches (or overrides) a `key=value` attribute.
    pub fn set_attr(&mut self, id: SpanId, key: &str, value: impl Into<String>) {
        if let Some(span) = self.get_mut(id) {
            span.attrs.push((key.to_owned(), value.into()));
        }
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        self.spans.get_mut(id.0 as usize - 1)
    }

    /// The span with this id.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.get(id.0 as usize - 1)
    }

    /// All spans, in start order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All spans named `name`, in start order.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| &*s.name == name)
    }

    /// Direct children of `parent`, in start order.
    pub fn children(&self, parent: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// The most recently started span named `name` that is still open.
    ///
    /// This is how loosely coupled components join an enclosing operation:
    /// e.g. the fabric runtime parents its `fabric.execute` span under the
    /// failover `failover.reconfiguration` span if one is in flight.
    pub fn find_open(&self, name: &str) -> Option<SpanId> {
        self.open
            .iter()
            .rev()
            .map(|&id| &self.spans[id.0 as usize - 1])
            .find(|s| &*s.name == name)
            .map(|s| s.id)
    }

    /// Like [`find_open`](Self::find_open), additionally requiring an
    /// attribute match (for concurrent same-named operations).
    pub fn find_open_by(&self, name: &str, key: &str, value: &str) -> Option<SpanId> {
        self.open
            .iter()
            .rev()
            .map(|&id| &self.spans[id.0 as usize - 1])
            .find(|s| &*s.name == name && s.attr(key) == Some(value))
            .map(|s| s.id)
    }

    /// Whether every span named `before` ended no later than any span named
    /// `after` started (vacuously true when either is absent). The span
    /// form of trace-message causality assertions.
    pub fn all_before(&self, before: &str, after: &str) -> bool {
        let latest_end = self.by_name(before).filter_map(|s| s.end).max();
        let earliest_start = self.by_name(after).map(|s| s.start).min();
        match (latest_end, earliest_start) {
            (Some(e), Some(s)) => e <= s,
            _ => true,
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Flat JSON export: an array of span objects in start order.
    pub fn to_json(&self) -> Json {
        Json::arr(self.spans.iter().map(Span::to_json))
    }

    /// Nested JSON export of the tree rooted at `root`: each node is the
    /// span object plus a `"children"` array (children in start order).
    pub fn tree_json(&self, root: SpanId) -> Json {
        let Some(span) = self.get(root) else {
            return Json::Null;
        };
        let mut node = span.to_json();
        node.insert(
            "children",
            Json::arr(self.children(root).map(|c| self.tree_json(c.id))),
        );
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn nesting_and_durations() {
        let mut t = SpanTracer::new();
        let root = t.start(ms(0), "m", "failover", None);
        let a = t.start(ms(0), "m", "failover.detection", Some(root));
        t.end(ms(3), a);
        let b = t.start(ms(3), "m", "failover.reconfiguration", Some(root));
        let bb = t.start(ms(3), "f", "fabric.execute", Some(b));
        t.end(ms(5), bb);
        t.end(ms(5), b);
        t.end(ms(9), root);
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(root).count(), 2);
        let kids: Vec<_> = t.children(root).map(|s| s.name.to_string()).collect();
        assert_eq!(kids, ["failover.detection", "failover.reconfiguration"]);
        assert_eq!(
            t.get(root).unwrap().duration(),
            Some(Duration::from_millis(9))
        );
        assert_eq!(t.get(bb).unwrap().parent, Some(b));
    }

    #[test]
    fn end_is_idempotent_and_attrs_override() {
        let mut t = SpanTracer::new();
        let s = t.start(ms(1), "c", "op", None);
        t.end(ms(2), s);
        t.end(ms(7), s);
        assert_eq!(t.get(s).unwrap().end, Some(ms(2)));
        t.set_attr(s, "k", "v1");
        t.set_attr(s, "k", "v2");
        assert_eq!(t.get(s).unwrap().attr("k"), Some("v2"));
        assert_eq!(t.get(s).unwrap().attr("missing"), None);
    }

    #[test]
    fn find_open_prefers_latest_and_matches_attrs() {
        let mut t = SpanTracer::new();
        let a = t.start(ms(0), "m", "failover", None);
        t.set_attr(a, "host", "h1");
        let b = t.start(ms(1), "m", "failover", None);
        t.set_attr(b, "host", "h2");
        assert_eq!(t.find_open("failover"), Some(b));
        assert_eq!(t.find_open_by("failover", "host", "h1"), Some(a));
        t.end(ms(2), b);
        assert_eq!(t.find_open("failover"), Some(a));
        t.end(ms(2), a);
        assert_eq!(t.find_open("failover"), None);
    }

    #[test]
    fn causality_helper() {
        let mut t = SpanTracer::new();
        let l = t.start(ms(1), "f", "fabric.lock", None);
        t.end(ms(1), l);
        let a = t.start(ms(2), "f", "fabric.actuate", None);
        t.end(ms(4), a);
        assert!(t.all_before("fabric.lock", "fabric.actuate"));
        assert!(!t.all_before("fabric.actuate", "fabric.lock"));
        assert!(t.all_before("fabric.lock", "no.such.span"), "vacuous");
    }

    #[test]
    fn json_exports() {
        let mut t = SpanTracer::new();
        let root = t.start(ms(0), "m", "failover", None);
        t.set_attr(root, "victim", "h0");
        let c = t.start(ms(1), "f", "fabric.execute", Some(root));
        t.end(ms(2), c);
        t.end(ms(3), root);
        let flat = t.to_json().to_string();
        assert!(flat.starts_with('['));
        assert!(flat.contains(r#""name":"failover""#));
        assert!(flat.contains(r#""victim":"h0""#));
        let tree = t.tree_json(root);
        let children = tree.get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0].get("name").and_then(Json::as_str),
            Some("fabric.execute")
        );
        assert_eq!(
            tree.get("duration_ns").and_then(Json::as_f64),
            Some(3_000_000.0)
        );
    }

    #[test]
    fn open_span_exports_null_end() {
        let mut t = SpanTracer::new();
        let s = t.start(ms(5), "c", "op", None);
        let j = t.tree_json(s).to_string();
        assert!(j.contains(r#""end_ns":null"#));
        assert!(j.contains(r#""duration_ns":null"#));
    }
}
