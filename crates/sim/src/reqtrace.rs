//! Request-lifecycle tracing: per-IO critical-path attribution.
//!
//! Every ClientLib IO can carry a [`ReqStamp`] that follows the request
//! through clientlib → rpc/net → endpoint → disk and back, accumulating
//! typed stage intervals: client queue, Master metadata lookup, network
//! transit, endpoint queue, **spin-up wait**, seek, transfer, and retry.
//! At completion the per-request stage vector is folded into per-stage
//! histograms and a dominant-stage counter, so `repro slo` can answer
//! "where did the p99.9 read spend its time?" (ROADMAP item 4).
//!
//! Accounting model — *mark* and *absorb*:
//!
//! - [`RequestTracer::mark`] closes the residual interval since the last
//!   mark: `(now − last_mark) − absorbed_since_mark` is attributed to the
//!   given stage. Probes at natural hand-off points (dispatch, request
//!   arrival, reply, response arrival) mark the elapsed hop.
//! - [`RequestTracer::absorb`] attributes an explicitly measured
//!   sub-duration (disk seek/transfer, spin-up overlap, Master lookup)
//!   *within* the current interval; the next mark subtracts it so no
//!   nanosecond is counted twice.
//!
//! Stale-probe guard: a stamp carries the attempt number it was issued
//! for. After a client-side timeout the attempt counter advances, so
//! orphaned server-side work from the failed attempt (its disk completion,
//! its late response) is ignored instead of double-counted.
//!
//! Determinism discipline (same contract as [`crate::prof`]): the tracer
//! never draws simulation RNG, never schedules events, and keeps all of
//! its state outside the digested telemetry (`MetricsRegistry`, spans,
//! scrape series). Telemetry digests are bit-identical with tracing on or
//! off — golden-tested in `tests/determinism.rs`. All digest-relevant
//! tracer state (id allocation, completion folds, sampling) mutates only
//! from the control world, whose event order is shard-count-invariant;
//! probes from server worlds touch per-request state only.
//!
//! Building without the `reqtrace` feature compiles the enabled path out
//! entirely; [`RequestTracer::on`] then returns an inert handle.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;
use crate::metrics::Histogram;
use crate::time::SimTime;

/// Number of lifecycle stages tracked per request.
pub const STAGE_COUNT: usize = 8;

/// A typed lifecycle stage of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting in the ClientLib queue for a usable session (remount
    /// stalls; near zero when the mount is healthy).
    ClientQueue = 0,
    /// Master metadata lookup during a (re)mount, amortized over the IOs
    /// it unblocked.
    MasterLookup = 1,
    /// On the wire: request and response hops through the switched network.
    NetTransit = 2,
    /// Queued at the endpoint's disk behind other IO (excluding spin-up).
    EndpointQueue = 3,
    /// Waiting for a spun-down disk to spin up — the cold-read tax.
    SpinUpWait = 4,
    /// Head positioning (seek + rotational delay), stretched by health.
    Seek = 5,
    /// Media + bus transfer, plus unattributed server-side residue.
    Transfer = 6,
    /// Time burned by failed attempts before the one that succeeded.
    Retry = 7,
}

impl Stage {
    /// All stages, in slab order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::ClientQueue,
        Stage::MasterLookup,
        Stage::NetTransit,
        Stage::EndpointQueue,
        Stage::SpinUpWait,
        Stage::Seek,
        Stage::Transfer,
        Stage::Retry,
    ];

    /// Stable snake_case name, used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientQueue => "client_queue",
            Stage::MasterLookup => "master_lookup",
            Stage::NetTransit => "net_transit",
            Stage::EndpointQueue => "endpoint_queue",
            Stage::SpinUpWait => "spin_up_wait",
            Stage::Seek => "seek",
            Stage::Transfer => "transfer",
            Stage::Retry => "retry",
        }
    }
}

/// Number of request kinds tracked.
pub const KIND_COUNT: usize = 2;

/// What kind of IO a trace covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A volume read; TTFB is first-byte latency.
    Read = 0,
    /// A volume write; "TTFB" is ack latency.
    Write = 1,
}

impl ReqKind {
    /// All kinds, in slab order.
    pub const ALL: [ReqKind; KIND_COUNT] = [ReqKind::Read, ReqKind::Write];

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ReqKind::Read => "read",
            ReqKind::Write => "write",
        }
    }
}

/// Identity of one traced request, allocated by [`RequestTracer::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// A trace stamp carried by in-flight messages: the request id plus the
/// attempt it was issued for. Probes presenting a stale attempt are
/// ignored (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqStamp {
    /// The traced request.
    pub id: TraceId,
    /// Attempt number the stamp was issued for (0 = first try).
    pub attempt: u32,
}

/// One attributed interval of a request's timeline (exemplar rendering).
#[derive(Debug, Clone, Copy)]
pub struct TraceSeg {
    /// Stage the interval was attributed to.
    pub stage: Stage,
    /// Interval start, nanoseconds of sim time.
    pub start_ns: u64,
    /// Interval length, nanoseconds.
    pub dur_ns: u64,
}

/// Full record of one completed request (sampled traces and exemplars).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id (allocation order = begin order).
    pub id: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// When the client issued the IO, nanoseconds of sim time.
    pub start_ns: u64,
    /// End-to-end latency (time to first byte), nanoseconds.
    pub ttfb_ns: u64,
    /// Sum of per-stage attributions, nanoseconds (≈ `ttfb_ns`).
    pub attributed_ns: u64,
    /// Dispatch attempts used (1 = no retries).
    pub attempts: u32,
    /// Whether the request hit a spun-down disk.
    pub cold: bool,
    /// Nanoseconds attributed to each stage (indexed by `Stage as usize`).
    pub stages: [u64; STAGE_COUNT],
    /// Attributed intervals in recording order.
    pub segments: Vec<TraceSeg>,
}

impl TraceRecord {
    /// The stage holding the largest share of this request's latency.
    pub fn dominant(&self) -> Stage {
        let mut best = Stage::ClientQueue;
        let mut best_ns = 0u64;
        for s in Stage::ALL {
            let ns = self.stages[s as usize];
            if ns > best_ns {
                best_ns = ns;
                best = s;
            }
        }
        best
    }
}

/// Per-request live accounting state.
struct LiveReq {
    kind: ReqKind,
    start_ns: u64,
    last_mark_ns: u64,
    absorbed_since_mark: u64,
    attempt: u32,
    attempts_used: u32,
    cold: bool,
    stages: [u64; STAGE_COUNT],
    segments: Vec<TraceSeg>,
}

/// Per-kind aggregation slab.
struct KindSlab {
    completed: u64,
    cold_completed: u64,
    e2e: Histogram,
    attributed: Histogram,
    stages: [Histogram; STAGE_COUNT],
    dominant: [u64; STAGE_COUNT],
}

impl KindSlab {
    #[cfg_attr(not(feature = "reqtrace"), allow(dead_code))]
    fn new() -> Self {
        KindSlab {
            completed: 0,
            cold_completed: 0,
            e2e: Histogram::new(),
            attributed: Histogram::new(),
            stages: std::array::from_fn(|_| Histogram::new()),
            dominant: [0; STAGE_COUNT],
        }
    }
}

struct TraceInner {
    next_id: u64,
    sample_every: u64,
    sample_cap: usize,
    exemplar_k: usize,
    live: HashMap<u64, LiveReq>,
    kinds: [KindSlab; KIND_COUNT],
    master_lookup: Histogram,
    lookups_served: u64,
    lookups_unresolved: u64,
    lease_hits: u64,
    lease_misses: u64,
    annotations: Vec<(u64, String)>,
    retries: u64,
    abandoned: u64,
    cold_hits: u64,
    seen: u64,
    sample_dropped: u64,
    sampled: Vec<TraceRecord>,
    exemplars: Vec<TraceRecord>,
}

#[cfg(feature = "reqtrace")]
impl TraceInner {
    fn new(sample_every: u64, exemplar_k: usize, sample_cap: usize) -> Self {
        TraceInner {
            next_id: 0,
            sample_every: sample_every.max(1),
            sample_cap,
            exemplar_k,
            live: HashMap::new(),
            kinds: std::array::from_fn(|_| KindSlab::new()),
            master_lookup: Histogram::new(),
            lookups_served: 0,
            lookups_unresolved: 0,
            lease_hits: 0,
            lease_misses: 0,
            annotations: Vec::new(),
            retries: 0,
            abandoned: 0,
            cold_hits: 0,
            seen: 0,
            sample_dropped: 0,
            sampled: Vec::new(),
            exemplars: Vec::new(),
        }
    }
}

impl TraceInner {
    /// Closes the residual interval since the last mark as `stage`.
    fn mark(&mut self, id: TraceId, stage: Stage, now_ns: u64) {
        if let Some(req) = self.live.get_mut(&id.0) {
            let elapsed = now_ns.saturating_sub(req.last_mark_ns);
            let residual = elapsed.saturating_sub(req.absorbed_since_mark);
            if residual > 0 {
                req.stages[stage as usize] += residual;
                req.segments.push(TraceSeg {
                    stage,
                    start_ns: now_ns - residual,
                    dur_ns: residual,
                });
            }
            req.last_mark_ns = now_ns;
            req.absorbed_since_mark = 0;
        }
    }

    /// Attributes an explicit sub-duration within the current interval.
    fn absorb(&mut self, id: TraceId, stage: Stage, dur_ns: u64, at_ns: u64) {
        if dur_ns == 0 {
            return;
        }
        if let Some(req) = self.live.get_mut(&id.0) {
            req.stages[stage as usize] += dur_ns;
            req.absorbed_since_mark += dur_ns;
            req.segments.push(TraceSeg {
                stage,
                start_ns: at_ns,
                dur_ns,
            });
        }
    }

    fn stamp_ok(&self, stamp: ReqStamp) -> bool {
        self.live
            .get(&stamp.id.0)
            .is_some_and(|req| req.attempt == stamp.attempt)
    }
}

/// Default sampling stride: keep one full trace per this many completions.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;
/// Default number of slowest-request exemplars retained per run.
pub const DEFAULT_EXEMPLARS: usize = 8;
/// Sampled full traces stop accumulating past this many; the overflow is
/// counted in [`TraceSnapshot::sample_dropped`] so reports can say so.
pub const SAMPLE_CAP: usize = 4_096;

/// Cluster-level annotations (watchdog escalations, failovers) stop
/// accumulating past this many.
pub const ANNOTATION_CAP: usize = 1_024;

/// Cheap cloneable handle to the request tracer; `off()` handles are
/// inert and make every probe a branch on `None`.
///
/// The handle is `Send + Sync`: in a sharded run the control world
/// (clients, masters) and every unit world share clones of one tracer.
#[derive(Clone)]
pub struct RequestTracer(Option<Arc<Mutex<TraceInner>>>);

impl RequestTracer {
    /// An inert tracer: every probe is a no-op, [`snapshot`](Self::snapshot)
    /// returns `None`.
    pub fn off() -> Self {
        RequestTracer(None)
    }

    /// An active tracer keeping one full trace per `sample_every`
    /// completions and the `exemplar_k` slowest exemplars.
    ///
    /// When the crate is built without the `reqtrace` feature this
    /// returns an inert handle, compiling the probes out entirely.
    pub fn on(sample_every: u64, exemplar_k: usize) -> Self {
        #[cfg(feature = "reqtrace")]
        {
            RequestTracer(Some(Arc::new(Mutex::new(TraceInner::new(
                sample_every,
                exemplar_k,
                SAMPLE_CAP,
            )))))
        }
        #[cfg(not(feature = "reqtrace"))]
        {
            let _ = (sample_every, exemplar_k);
            RequestTracer(None)
        }
    }

    /// An active tracer with default sampling parameters.
    pub fn on_default() -> Self {
        RequestTracer::on(DEFAULT_SAMPLE_EVERY, DEFAULT_EXEMPLARS)
    }

    /// Whether probes are live (feature compiled in *and* handle active).
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the crate was compiled with request tracing support.
    pub fn compiled_in() -> bool {
        cfg!(feature = "reqtrace")
    }

    /// Starts a trace for one client IO. Returns `None` when inert.
    ///
    /// Must be called from the control world: id allocation order is the
    /// digest-determinism anchor (see module docs).
    pub fn begin(&self, kind: ReqKind, now: SimTime) -> Option<TraceId> {
        let inner = self.0.as_ref()?;
        let mut t = inner.lock().unwrap();
        let id = TraceId(t.next_id);
        t.next_id += 1;
        let now_ns = now.as_nanos();
        t.live.insert(
            id.0,
            LiveReq {
                kind,
                start_ns: now_ns,
                last_mark_ns: now_ns,
                absorbed_since_mark: 0,
                attempt: 0,
                attempts_used: 0,
                cold: false,
                stages: [0; STAGE_COUNT],
                segments: Vec::new(),
            },
        );
        Some(id)
    }

    /// Marks a dispatch from the client queue: closes the queued interval
    /// (as [`Stage::ClientQueue`] on the first attempt, [`Stage::Retry`]
    /// afterwards) and returns the stamp to ride the outgoing request.
    pub fn dispatch(&self, id: TraceId, now: SimTime) -> Option<ReqStamp> {
        let inner = self.0.as_ref()?;
        let mut t = inner.lock().unwrap();
        let attempt = {
            let req = t.live.get_mut(&id.0)?;
            req.attempts_used += 1;
            req.attempt
        };
        let stage = if attempt == 0 {
            Stage::ClientQueue
        } else {
            Stage::Retry
        };
        t.mark(id, stage, now.as_nanos());
        Some(ReqStamp { id, attempt })
    }

    /// Closes the residual interval since the last mark as `stage`.
    /// Ignored when the stamp's attempt is stale.
    pub fn mark(&self, stamp: Option<ReqStamp>, stage: Stage, now: SimTime) {
        if let (Some(inner), Some(stamp)) = (&self.0, stamp) {
            let mut t = inner.lock().unwrap();
            if t.stamp_ok(stamp) {
                t.mark(stamp.id, stage, now.as_nanos());
            }
        }
    }

    /// Attributes an explicitly measured sub-duration (starting at `at`)
    /// to `stage` within the current interval. Ignored when stale.
    pub fn absorb(&self, stamp: Option<ReqStamp>, stage: Stage, dur: Duration, at: SimTime) {
        if let (Some(inner), Some(stamp)) = (&self.0, stamp) {
            let mut t = inner.lock().unwrap();
            if t.stamp_ok(stamp) {
                t.absorb(stamp.id, stage, saturating_ns(dur), at.as_nanos());
            }
        }
    }

    /// Attributes a Master metadata lookup to a request that is queued
    /// behind a (re)mount, and feeds the lookup-latency histogram.
    pub fn absorb_lookup(&self, id: TraceId, dur: Duration, at: SimTime) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            t.absorb(id, Stage::MasterLookup, saturating_ns(dur), at.as_nanos());
        }
    }

    /// Records one Master-side lookup service time (aux histogram; not
    /// tied to a single request).
    pub fn note_master_lookup(&self, dur: Duration) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            let ns = saturating_ns(dur);
            t.master_lookup.record(ns);
        }
    }

    /// Counts one Master lookup reply: `resolved` means the Master
    /// returned a live placement, `false` covers failover windows where
    /// clients spin on NotActive / NoSuchSpace and re-poll.
    pub fn note_lookup_served(&self, resolved: bool) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            if resolved {
                t.lookups_served += 1;
            } else {
                t.lookups_unresolved += 1;
            }
        }
    }

    /// Counts one client-side location-lease consultation: `hit` means a
    /// cached `SpaceInfo` under a live lease answered the lookup (or
    /// validated an IO dispatch) without a Master round trip.
    pub fn note_lease(&self, hit: bool) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            if hit {
                t.lease_hits += 1;
            } else {
                t.lease_misses += 1;
            }
        }
    }

    /// Records a cluster-level annotation (watchdog escalation, failover
    /// start, ...) that the SLO report prints alongside slow exemplars.
    /// Capped so runaway scenarios cannot grow the trace unbounded.
    pub fn annotate(&self, label: &str, now: SimTime) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            if t.annotations.len() < ANNOTATION_CAP {
                t.annotations.push((now.as_nanos(), label.to_string()));
            }
        }
    }

    /// Flags the request as a cold hit: its target disk was in standby
    /// when the IO arrived. Ignored when stale.
    pub fn note_cold_hit(&self, stamp: Option<ReqStamp>) {
        if let (Some(inner), Some(stamp)) = (&self.0, stamp) {
            let mut t = inner.lock().unwrap();
            if t.stamp_ok(stamp) {
                t.cold_hits += 1;
                if let Some(req) = t.live.get_mut(&stamp.id.0) {
                    req.cold = true;
                }
            }
        }
    }

    /// Marks a failed attempt: closes the interval since the last mark as
    /// [`Stage::Retry`] and advances the attempt counter so probes from
    /// the orphaned attempt are ignored from here on.
    pub fn io_failed(&self, id: TraceId, now: SimTime) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            t.mark(id, Stage::Retry, now.as_nanos());
            t.retries += 1;
            if let Some(req) = t.live.get_mut(&id.0) {
                req.attempt += 1;
            }
        }
    }

    /// Completes a trace: folds the stage vector into the per-kind
    /// histograms, updates dominant-stage counts, and retains the full
    /// record if it is sampled or among the slowest exemplars.
    ///
    /// Must be called from the control world (completion order drives
    /// sampling).
    pub fn complete(&self, id: TraceId, now: SimTime) {
        let Some(inner) = &self.0 else { return };
        let mut t = inner.lock().unwrap();
        let Some(req) = t.live.remove(&id.0) else {
            return;
        };
        let now_ns = now.as_nanos();
        let ttfb = now_ns.saturating_sub(req.start_ns);
        let attributed: u64 = req.stages.iter().sum();
        let record = TraceRecord {
            id: id.0,
            kind: req.kind,
            start_ns: req.start_ns,
            ttfb_ns: ttfb,
            attributed_ns: attributed,
            attempts: req.attempts_used,
            cold: req.cold,
            stages: req.stages,
            segments: req.segments,
        };
        {
            let slab = &mut t.kinds[req.kind as usize];
            slab.completed += 1;
            if req.cold {
                slab.cold_completed += 1;
            }
            slab.e2e.record(ttfb);
            slab.attributed.record(attributed);
            for s in Stage::ALL {
                slab.stages[s as usize].record(req.stages[s as usize]);
            }
            slab.dominant[record.dominant() as usize] += 1;
        }
        let pick = t.seen % t.sample_every == 0;
        t.seen += 1;
        if pick {
            if t.sampled.len() < t.sample_cap {
                t.sampled.push(record.clone());
            } else {
                t.sample_dropped += 1;
            }
        }
        let k = t.exemplar_k;
        if k > 0 {
            t.exemplars.push(record);
            if t.exemplars.len() > k {
                t.exemplars
                    .sort_by_key(|r| (std::cmp::Reverse(r.ttfb_ns), r.id));
                t.exemplars.truncate(k);
            }
        }
    }

    /// Drops a trace that will never complete (queue drained on a failed
    /// remount deadline). Counted, not folded into latency stats.
    pub fn abandon(&self, id: TraceId) {
        if let Some(inner) = &self.0 {
            let mut t = inner.lock().unwrap();
            if t.live.remove(&id.0).is_some() {
                t.abandoned += 1;
            }
        }
    }

    /// Snapshots all slabs into plain data, or `None` when inert.
    /// Call after the run quiesces.
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        let inner = self.0.as_ref()?;
        let mut t = inner.lock().unwrap();
        t.exemplars
            .sort_by_key(|r| (std::cmp::Reverse(r.ttfb_ns), r.id));
        let kinds = ReqKind::ALL
            .iter()
            .map(|&kind| {
                let slab = &t.kinds[kind as usize];
                KindStats {
                    kind,
                    completed: slab.completed,
                    cold_completed: slab.cold_completed,
                    e2e: slab.e2e.clone(),
                    attributed: slab.attributed.clone(),
                    stages: slab.stages.clone(),
                    dominant: slab.dominant,
                }
            })
            .collect();
        Some(TraceSnapshot {
            kinds,
            retries: t.retries,
            abandoned: t.abandoned,
            cold_hits: t.cold_hits,
            live_at_end: t.live.len() as u64,
            seen: t.seen,
            sample_every: t.sample_every,
            sample_dropped: t.sample_dropped,
            sampled: t.sampled.clone(),
            exemplars: t.exemplars.clone(),
            master_lookup: t.master_lookup.clone(),
            lookups_served: t.lookups_served,
            lookups_unresolved: t.lookups_unresolved,
            lease_hits: t.lease_hits,
            lease_misses: t.lease_misses,
            annotations: t.annotations.clone(),
        })
    }
}

impl std::fmt::Debug for RequestTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestTracer")
            .field("on", &self.is_on())
            .finish()
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Aggregated statistics for one request kind.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// Read or write.
    pub kind: ReqKind,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that hit a spun-down disk.
    pub cold_completed: u64,
    /// End-to-end latency distribution (TTFB), nanoseconds.
    pub e2e: Histogram,
    /// Per-request sum of stage attributions, nanoseconds. The coverage
    /// invariant compares this against `e2e` quantile by quantile.
    pub attributed: Histogram,
    /// Per-stage attribution distributions (indexed by `Stage as usize`,
    /// zeros included so quantiles are over all requests).
    pub stages: [Histogram; STAGE_COUNT],
    /// How many requests each stage dominated.
    pub dominant: [u64; STAGE_COUNT],
}

impl KindStats {
    /// Fraction of end-to-end latency the stage attribution explains at
    /// quantile `q` — the PR 6-style coverage invariant (≥0.95 expected
    /// for p50/p99/p99.9). `None` when no requests completed.
    pub fn coverage(&self, q: f64) -> Option<f64> {
        let e2e = self.e2e.quantile(q)?;
        let attr = self.attributed.quantile(q)?;
        if e2e == 0 {
            // Zero-latency quantile: attribution trivially covers it.
            return Some(1.0);
        }
        Some(attr as f64 / e2e as f64)
    }

    /// Mean share of total latency attributed to `stage` (0..1).
    pub fn stage_share(&self, stage: Stage) -> f64 {
        let total = self.e2e.sum();
        if total == 0 {
            return 0.0;
        }
        self.stages[stage as usize].sum() as f64 / total as f64
    }
}

/// Full tracer snapshot: per-kind stats, sampled traces, and exemplars.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Per-kind aggregates in [`ReqKind::ALL`] order.
    pub kinds: Vec<KindStats>,
    /// Failed attempts observed (each burned [`Stage::Retry`] time).
    pub retries: u64,
    /// Requests abandoned without completing (drained queues).
    pub abandoned: u64,
    /// Requests that arrived at a spun-down disk.
    pub cold_hits: u64,
    /// Requests still live when the snapshot was taken.
    pub live_at_end: u64,
    /// Completions observed (sampling denominator).
    pub seen: u64,
    /// Sampling stride: one full trace kept per this many completions.
    pub sample_every: u64,
    /// Sampled traces dropped after the cap was hit.
    pub sample_dropped: u64,
    /// Sampled full traces, in completion order.
    pub sampled: Vec<TraceRecord>,
    /// Slowest requests by TTFB, slowest first.
    pub exemplars: Vec<TraceRecord>,
    /// Master-side metadata lookup service times, nanoseconds.
    pub master_lookup: Histogram,
    /// Master lookups answered with a live placement.
    pub lookups_served: u64,
    /// Master lookups answered NotActive / NoSuchSpace (failover spin).
    pub lookups_unresolved: u64,
    /// Client-side location-lease consultations answered from cache.
    pub lease_hits: u64,
    /// Consultations that required (or triggered) a Master round trip.
    pub lease_misses: u64,
    /// Cluster-level annotations `(sim_ns, label)` in emission order,
    /// capped at [`ANNOTATION_CAP`].
    pub annotations: Vec<(u64, String)>,
}

impl TraceSnapshot {
    /// Stats for one kind.
    pub fn kind(&self, kind: ReqKind) -> &KindStats {
        &self.kinds[kind as usize]
    }

    /// The slowest completed request, if any.
    pub fn worst(&self) -> Option<&TraceRecord> {
        self.exemplars.first()
    }

    /// Fraction of lease consultations served from cache, or `None` when
    /// no leases were consulted (lease caching disabled).
    pub fn lease_hit_rate(&self) -> Option<f64> {
        let total = self.lease_hits + self.lease_misses;
        (total > 0).then(|| self.lease_hits as f64 / total as f64)
    }

    /// Minimum coverage across kinds with traffic for quantile `q`.
    pub fn min_coverage(&self, q: f64) -> Option<f64> {
        self.kinds
            .iter()
            .filter(|k| k.completed > 0)
            .filter_map(|k| k.coverage(q))
            .min_by(|a, b| a.partial_cmp(b).expect("coverage is finite"))
    }

    /// Stable JSON form (BENCH `slo` section, `repro slo --json`).
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj([
            ("completed", Json::u64(self.seen)),
            ("retries", Json::u64(self.retries)),
            ("abandoned", Json::u64(self.abandoned)),
            ("cold_hits", Json::u64(self.cold_hits)),
            ("live_at_end", Json::u64(self.live_at_end)),
            ("sample_every", Json::u64(self.sample_every)),
            ("sampled", Json::u64(self.sampled.len() as u64)),
            ("sample_dropped", Json::u64(self.sample_dropped)),
            (
                "master_lookup_p99_ns",
                Json::u64(self.master_lookup.quantile(0.99).unwrap_or(0)),
            ),
            ("lookups_served", Json::u64(self.lookups_served)),
            ("lookups_unresolved", Json::u64(self.lookups_unresolved)),
            ("lease_hits", Json::u64(self.lease_hits)),
            ("lease_misses", Json::u64(self.lease_misses)),
            ("annotations", Json::u64(self.annotations.len() as u64)),
        ]);
        for stats in &self.kinds {
            let quantiles = |h: &Histogram| {
                Json::obj([
                    ("mean_ns", Json::f64(h.mean().unwrap_or(0.0))),
                    ("p50_ns", Json::u64(h.quantile(0.5).unwrap_or(0))),
                    ("p99_ns", Json::u64(h.quantile(0.99).unwrap_or(0))),
                    ("p999_ns", Json::u64(h.quantile(0.999).unwrap_or(0))),
                    ("max_ns", Json::u64(h.max().unwrap_or(0))),
                ])
            };
            let stages = Json::arr(Stage::ALL.map(|s| {
                let h = &stats.stages[s as usize];
                let mut o = Json::obj([("stage", Json::str(s.name()))]);
                o.insert("mean_ns", Json::f64(h.mean().unwrap_or(0.0)));
                o.insert("p50_ns", Json::u64(h.quantile(0.5).unwrap_or(0)));
                o.insert("p99_ns", Json::u64(h.quantile(0.99).unwrap_or(0)));
                o.insert("p999_ns", Json::u64(h.quantile(0.999).unwrap_or(0)));
                o.insert("share", Json::f64(stats.stage_share(s)));
                o.insert("dominant", Json::u64(stats.dominant[s as usize]));
                o
            }));
            let mut k = Json::obj([
                ("completed", Json::u64(stats.completed)),
                ("cold_completed", Json::u64(stats.cold_completed)),
                ("ttfb", quantiles(&stats.e2e)),
                ("attributed", quantiles(&stats.attributed)),
                ("stages", stages),
            ]);
            let mut cov = Json::obj([] as [(&str, Json); 0]);
            for (label, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
                if let Some(c) = stats.coverage(q) {
                    cov.insert(label, Json::f64(c));
                }
            }
            k.insert("coverage", cov);
            out.insert(stats.kind.name(), k);
        }
        if let Some(w) = self.worst() {
            let mut stages = Json::obj([] as [(&str, Json); 0]);
            for s in Stage::ALL {
                if w.stages[s as usize] > 0 {
                    stages.insert(s.name(), Json::u64(w.stages[s as usize]));
                }
            }
            out.insert(
                "worst",
                Json::obj([
                    ("id", Json::u64(w.id)),
                    ("kind", Json::str(w.kind.name())),
                    ("start_ns", Json::u64(w.start_ns)),
                    ("ttfb_ns", Json::u64(w.ttfb_ns)),
                    ("attributed_ns", Json::u64(w.attributed_ns)),
                    ("attempts", Json::u64(u64::from(w.attempts))),
                    ("cold", Json::str(if w.cold { "true" } else { "false" })),
                    ("dominant", Json::str(w.dominant().name())),
                    ("stages_ns", stages),
                ]),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    #[test]
    fn off_tracer_is_inert() {
        let t = RequestTracer::off();
        assert!(!t.is_on());
        assert!(t.begin(ReqKind::Read, ns(0)).is_none());
        t.mark(None, Stage::NetTransit, ns(10));
        t.complete(TraceId(0), ns(10));
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn mark_and_absorb_attribute_without_double_counting() {
        let t = RequestTracer::on(1, 4);
        if !RequestTracer::compiled_in() {
            assert!(t.snapshot().is_none());
            return;
        }
        let id = t.begin(ReqKind::Read, ns(0)).unwrap();
        let stamp = t.dispatch(id, ns(100)).unwrap(); // 100ns ClientQueue
        t.mark(Some(stamp), Stage::NetTransit, ns(300)); // 200ns wire
                                                         // Server side: disk absorbs queue/seek/transfer, then reply marks
                                                         // the residual as Transfer.
        t.absorb(
            Some(stamp),
            Stage::EndpointQueue,
            Duration::from_nanos(50),
            ns(300),
        );
        t.absorb(Some(stamp), Stage::Seek, Duration::from_nanos(400), ns(350));
        t.absorb(
            Some(stamp),
            Stage::Transfer,
            Duration::from_nanos(250),
            ns(750),
        );
        t.mark(Some(stamp), Stage::Transfer, ns(1000)); // residual 0
        t.mark(Some(stamp), Stage::NetTransit, ns(1200)); // return hop
        t.complete(id, ns(1200));
        let s = t.snapshot().unwrap();
        let reads = s.kind(ReqKind::Read);
        assert_eq!(reads.completed, 1);
        let w = s.worst().unwrap();
        assert_eq!(w.ttfb_ns, 1200);
        assert_eq!(w.attributed_ns, 1200);
        assert_eq!(w.stages[Stage::ClientQueue as usize], 100);
        assert_eq!(w.stages[Stage::NetTransit as usize], 400);
        assert_eq!(w.stages[Stage::EndpointQueue as usize], 50);
        assert_eq!(w.stages[Stage::Seek as usize], 400);
        assert_eq!(w.stages[Stage::Transfer as usize], 250);
        assert_eq!(w.dominant(), Stage::NetTransit);
        assert_eq!(s.min_coverage(0.99), Some(1.0));
    }

    #[test]
    fn stale_attempt_probes_are_ignored() {
        let t = RequestTracer::on(1, 4);
        if !RequestTracer::compiled_in() {
            return;
        }
        let id = t.begin(ReqKind::Write, ns(0)).unwrap();
        let stale = t.dispatch(id, ns(10)).unwrap();
        t.io_failed(id, ns(500)); // 490ns retry, attempt now 1
        let fresh = t.dispatch(id, ns(500)).unwrap();
        assert_eq!(fresh.attempt, 1);
        // Orphaned first-attempt work reports late: must not count.
        t.mark(Some(stale), Stage::Transfer, ns(900));
        t.absorb(Some(stale), Stage::Seek, Duration::from_nanos(100), ns(600));
        t.mark(Some(fresh), Stage::NetTransit, ns(700));
        t.complete(id, ns(700));
        let s = t.snapshot().unwrap();
        let w = s.worst().unwrap();
        assert_eq!(w.stages[Stage::Retry as usize], 490);
        assert_eq!(w.stages[Stage::NetTransit as usize], 200);
        assert_eq!(w.stages[Stage::Transfer as usize], 0);
        assert_eq!(w.stages[Stage::Seek as usize], 0);
        assert_eq!(w.attempts, 2);
        assert_eq!(s.retries, 1);
    }

    #[test]
    fn sampling_and_exemplars_bound_memory() {
        let t = RequestTracer::on(10, 3);
        if !RequestTracer::compiled_in() {
            return;
        }
        for i in 0..100u64 {
            let id = t.begin(ReqKind::Read, ns(i * 1_000)).unwrap();
            let stamp = t.dispatch(id, ns(i * 1_000)).unwrap();
            t.mark(Some(stamp), Stage::Transfer, ns(i * 1_000 + i + 1));
            t.complete(id, ns(i * 1_000 + i + 1));
        }
        let s = t.snapshot().unwrap();
        assert_eq!(s.seen, 100);
        assert_eq!(s.sampled.len(), 10);
        assert_eq!(s.exemplars.len(), 3);
        // Slowest first: ttfb grows with i.
        assert_eq!(s.exemplars[0].ttfb_ns, 100);
        assert_eq!(s.exemplars[1].ttfb_ns, 99);
        assert_eq!(s.kind(ReqKind::Read).completed, 100);
        let j = s.to_json();
        assert!(j.get("read").is_some());
        assert!(j.get("worst").is_some());
    }

    #[test]
    fn abandoned_requests_never_pollute_latency() {
        let t = RequestTracer::on(1, 2);
        if !RequestTracer::compiled_in() {
            return;
        }
        let id = t.begin(ReqKind::Read, ns(0)).unwrap();
        t.dispatch(id, ns(5));
        t.abandon(id);
        t.complete(id, ns(50)); // double-complete after abandon: no-op
        let s = t.snapshot().unwrap();
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.seen, 0);
        assert_eq!(s.kind(ReqKind::Read).completed, 0);
    }
}
