//! A fast, deterministic hasher for simulation-internal maps.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs tens of
//! nanoseconds per short key, and its per-instance random seed makes
//! iteration order differ between processes. Simulation state is never
//! exposed to adversarial keys, and cross-process determinism is a
//! feature here, so hot maps (network node tables, RPC correlation ids,
//! Master host/disk state) use this fixed-seed multiply-rotate hash
//! instead — the same construction rustc uses for its own interner
//! tables.
//!
//! # Examples
//!
//! ```
//! use ustore_sim::FastMap;
//!
//! let mut m: FastMap<u64, &str> = FastMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed-seed multiply-rotate hasher (an `FxHash`-style construction).
#[derive(Default, Clone)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write(b"disk-17/latency_ns");
        b.write(b"disk-17/latency_ns");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_lengths_and_contents() {
        let hash = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefgi"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FastSet<String> = FastSet::default();
        s.insert("x".to_owned());
        assert!(s.contains("x"));
    }
}
